//! Embedding lookup store with averaging, OOV handling, and text I/O.
//!
//! Mirrors how LEAPME consumes GloVe vectors (paper §IV-D): per-word
//! lookup, unknown words mapped to the all-zeros vector, and the average
//! embedding of a token sequence as the representation of a property name
//! or instance value.

use crate::tokenize::tokenize;
use crate::EmbeddingError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// A word → vector lookup table of fixed dimensionality.
#[derive(Debug, Serialize, Deserialize)]
pub struct EmbeddingStore {
    dim: usize,
    vectors: HashMap<String, Vec<f32>>,
    /// When set, unknown words fall back to the vector of the closest
    /// in-vocabulary word within a small edit distance (see
    /// [`EmbeddingStore::set_fuzzy_oov`]).
    #[serde(default)]
    fuzzy_oov: bool,
    /// Memoized fuzzy lookups (OOV word → matched vocab word, if any).
    #[serde(skip)]
    fuzzy_cache: Mutex<HashMap<String, Option<String>>>,
}

impl Clone for EmbeddingStore {
    fn clone(&self) -> Self {
        EmbeddingStore {
            dim: self.dim,
            vectors: self.vectors.clone(),
            fuzzy_oov: self.fuzzy_oov,
            fuzzy_cache: Mutex::new(HashMap::new()),
        }
    }
}

impl EmbeddingStore {
    /// An empty store of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        EmbeddingStore {
            dim,
            vectors: HashMap::new(),
            fuzzy_oov: false,
            fuzzy_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Enable/disable fuzzy out-of-vocabulary fallback.
    ///
    /// The paper maps unknown words to the zero vector, which works
    /// because its pre-trained vocabulary (1.9 M Common Crawl words)
    /// already contains most typos and truncations. A vocabulary trained
    /// on a small domain corpus does not, so noisy tokens would lose all
    /// semantics. With fuzzy fallback on, an unknown word of ≥ 4
    /// characters borrows the vector of the closest known word within
    /// edit distance 1 (length 4–6) or 2 (length ≥ 7); anything farther
    /// stays zero. This restores the *effective* OOV behaviour of the
    /// paper's setup (DESIGN.md §2).
    pub fn set_fuzzy_oov(&mut self, enabled: bool) {
        self.fuzzy_oov = enabled;
        self.fuzzy_cache.lock().expect("no poisoning").clear();
    }

    /// Whether fuzzy OOV fallback is enabled.
    pub fn fuzzy_oov(&self) -> bool {
        self.fuzzy_oov
    }

    /// Resolve a token to a vector, applying the fuzzy OOV policy.
    fn resolve(&self, word: &str) -> Option<&[f32]> {
        // Fault hook: treat this token as out-of-vocabulary, exercising
        // the zero-vector OOV degradation path.
        #[cfg(feature = "faults")]
        if leapme_faults::fires(leapme_faults::sites::EMBEDDING_LOOKUP)
            == Some(leapme_faults::FaultKind::MissingEmbedding)
        {
            return None;
        }
        if let Some(v) = self.vectors.get(word) {
            return Some(v.as_slice());
        }
        if !self.fuzzy_oov {
            return None;
        }
        let len = word.chars().count();
        if len < 4 || !word.chars().all(char::is_alphabetic) {
            return None;
        }
        let mut cache = self.fuzzy_cache.lock().expect("no poisoning");
        // Check with a borrowed key first: `entry` would allocate an
        // owned `String` on every call, including steady-state cache
        // hits, which is exactly the path the zero-allocation featurize
        // loop runs hot.
        if let Some(matched) = cache.get(word) {
            return matched
                .as_deref()
                .and_then(|w| self.vectors.get(w).map(Vec::as_slice));
        }
        let max_dist = if len <= 6 { 1 } else { 2 };
        let mut best: Option<(usize, &String)> = None;
        for candidate in self.vectors.keys() {
            let clen = candidate.chars().count();
            if clen.abs_diff(len) > max_dist || clen < 4 {
                continue;
            }
            let d = leapme_textsim::levenshtein::distance(word, candidate);
            if d <= max_dist && best.map(|(bd, bw)| (d, candidate) < (bd, bw)).unwrap_or(true) {
                best = Some((d, candidate));
            }
        }
        let matched = best.map(|(_, w)| w.clone());
        let resolved = matched
            .as_deref()
            .and_then(|w| self.vectors.get(w).map(Vec::as_slice));
        cache.insert(word.to_string(), matched);
        resolved
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored words.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the store holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Insert (or replace) a word vector.
    ///
    /// Errors if the vector length does not match the store dimension.
    pub fn insert(&mut self, word: &str, vector: Vec<f32>) -> Result<(), EmbeddingError> {
        if vector.len() != self.dim {
            return Err(EmbeddingError::InvalidConfig(format!(
                "vector for {word:?} has length {}, store dimension is {}",
                vector.len(),
                self.dim
            )));
        }
        self.vectors.insert(word.to_string(), vector);
        Ok(())
    }

    /// The vector for `word`, if known.
    pub fn get(&self, word: &str) -> Option<&[f32]> {
        self.vectors.get(word).map(Vec::as_slice)
    }

    /// The vector for `word`, or the zero vector for unknown words —
    /// the paper's OOV policy.
    pub fn get_or_zero(&self, word: &str) -> Vec<f32> {
        self.get(word)
            .map(<[f32]>::to_vec)
            .unwrap_or_else(|| vec![0.0; self.dim])
    }

    /// Average of the embeddings of `tokens` (unknown tokens contribute
    /// zero vectors but still count in the denominator, matching the
    /// paper's "average embeddings of the individual words").
    ///
    /// An empty token list yields the zero vector.
    pub fn average(&self, tokens: &[String]) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        if tokens.is_empty() {
            return acc;
        }
        for t in tokens {
            if let Some(v) = self.resolve(t) {
                crate::kernels::add_assign(&mut acc, v);
            }
        }
        crate::kernels::div_assign(&mut acc, tokens.len() as f32);
        acc
    }

    /// Tokenize `text` with the crate tokenizer and average the embeddings.
    ///
    /// This is the allocating reference path; the hot loops use
    /// [`EmbeddingStore::average_text_into`], which is bitwise identical.
    pub fn average_text(&self, text: &str) -> Vec<f32> {
        self.average(&tokenize(text))
    }

    /// Zero-allocation counterpart of [`EmbeddingStore::average_text`]:
    /// stream tokens through [`crate::tokenize::for_each_token`] and
    /// accumulate directly into `out` (length must equal the store
    /// dimension). Same token order, same sum-then-divide arithmetic —
    /// bitwise identical to the reference path.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.dim()`.
    pub fn average_text_into(&self, text: &str, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "output length != embedding dim");
        out.fill(0.0);
        let mut n = 0usize;
        crate::tokenize::for_each_token(text, |t| {
            n += 1;
            if let Some(v) = self.resolve(t) {
                crate::kernels::add_assign(out, v);
            }
        });
        if n > 0 {
            crate::kernels::div_assign(out, n as f32);
        }
    }

    /// Iterate over every stored `(word, vector)` entry in the map's
    /// (arbitrary) iteration order. Used by the feature-cache
    /// fingerprint, which combines per-entry hashes order-independently.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[f32])> {
        self.vectors
            .iter()
            .map(|(w, v)| (w.as_str(), v.as_slice()))
    }

    /// Cosine similarity between the vectors of two words, if both known.
    pub fn cosine_similarity(&self, a: &str, b: &str) -> Option<f64> {
        let va = self.get(a)?;
        let vb = self.get(b)?;
        Some(cosine(va, vb))
    }

    /// The `k` nearest words to `word` by cosine similarity (excluding the
    /// word itself), sorted descending. Returns an empty vec for unknown
    /// words.
    pub fn nearest(&self, word: &str, k: usize) -> Vec<(String, f64)> {
        let Some(target) = self.get(word) else {
            return Vec::new();
        };
        let mut sims: Vec<(String, f64)> = self
            .vectors
            .iter()
            .filter(|(w, _)| w.as_str() != word)
            .map(|(w, v)| (w.clone(), cosine(target, v)))
            .collect();
        sims.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        sims.truncate(k);
        sims
    }

    /// Write in the standard GloVe text format: `word v1 v2 … vD` per line.
    pub fn save_text(&self, path: &Path) -> Result<(), EmbeddingError> {
        // Write-to-temp + fsync + atomic rename, so an interrupted save
        // leaves either the previous file or the new one — never a torn
        // vector table (DESIGN.md §9).
        let tmp = path.with_extension("txt.tmp");
        let file = std::fs::File::create(&tmp)?;
        let mut w = BufWriter::new(file);
        let mut words: Vec<&String> = self.vectors.keys().collect();
        words.sort();
        for word in words {
            write!(w, "{word}")?;
            for v in &self.vectors[word] {
                write!(w, " {v}")?;
            }
            writeln!(w)?;
        }
        w.flush()?;
        w.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load from the standard GloVe text format. The dimension is inferred
    /// from the first line; inconsistent lines are an error.
    pub fn load_text(path: &Path) -> Result<Self, EmbeddingError> {
        let file = std::fs::File::open(path)?;
        let reader = BufReader::new(file);
        let mut store: Option<EmbeddingStore> = None;
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let word = parts.next().ok_or_else(|| EmbeddingError::ParseError {
                line: lineno + 1,
                message: "empty line with whitespace".into(),
            })?;
            let vec: Result<Vec<f32>, _> = parts.map(str::parse::<f32>).collect();
            let vec = vec.map_err(|e| EmbeddingError::ParseError {
                line: lineno + 1,
                message: format!("bad float: {e}"),
            })?;
            if vec.is_empty() {
                return Err(EmbeddingError::ParseError {
                    line: lineno + 1,
                    message: format!("no vector components for word {word:?}"),
                });
            }
            let s = store.get_or_insert_with(|| EmbeddingStore::new(vec.len()));
            if vec.len() != s.dim {
                return Err(EmbeddingError::ParseError {
                    line: lineno + 1,
                    message: format!("dimension {} != expected {}", vec.len(), s.dim),
                });
            }
            s.vectors.insert(word.to_string(), vec);
        }
        store.ok_or(EmbeddingError::EmptyVocabulary)
    }
}

/// Cosine similarity of two equal-length vectors, `0.0` if either is zero.
///
/// Delegates to the shared kernel module so blocking, the semantic
/// baselines and the store all use the same deterministic reduction.
pub fn cosine(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    crate::kernels::cosine(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EmbeddingStore {
        let mut s = EmbeddingStore::new(3);
        s.insert("camera", vec![1.0, 0.0, 0.0]).unwrap();
        s.insert("photo", vec![0.9, 0.1, 0.0]).unwrap();
        s.insert("battery", vec![0.0, 0.0, 1.0]).unwrap();
        s
    }

    #[test]
    fn insert_and_get() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.get("camera"), Some([1.0, 0.0, 0.0].as_slice()));
        assert_eq!(s.get("unknown"), None);
        assert_eq!(s.get_or_zero("unknown"), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn insert_rejects_wrong_dim() {
        let mut s = sample();
        assert!(s.insert("bad", vec![1.0]).is_err());
    }

    #[test]
    fn average_includes_oov_in_denominator() {
        let s = sample();
        let tokens = vec!["camera".to_string(), "zzz".to_string()];
        let avg = s.average(&tokens);
        assert_eq!(avg, vec![0.5, 0.0, 0.0]);
    }

    #[test]
    fn average_empty_is_zero() {
        let s = sample();
        assert_eq!(s.average(&[]), vec![0.0; 3]);
        assert_eq!(s.average_text("!!!"), vec![0.0; 3]);
    }

    #[test]
    fn average_text_tokenizes() {
        let s = sample();
        let avg = s.average_text("Camera photo");
        assert!((avg[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn cosine_properties() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_and_nearest() {
        let s = sample();
        let sim = s.cosine_similarity("camera", "photo").unwrap();
        assert!(sim > 0.99 && sim < 1.0);
        assert!(s.cosine_similarity("camera", "zzz").is_none());
        let nn = s.nearest("camera", 1);
        assert_eq!(nn[0].0, "photo");
        assert!(s.nearest("zzz", 3).is_empty());
    }

    #[test]
    fn text_io_round_trip() {
        let s = sample();
        let dir = std::env::temp_dir().join("leapme_embed_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("vectors.txt");
        s.save_text(&path).unwrap();
        let back = EmbeddingStore::load_text(&path).unwrap();
        assert_eq!(back.dim(), 3);
        assert_eq!(back.len(), 3);
        assert_eq!(back.get("camera"), s.get("camera"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_ragged_file() {
        let dir = std::env::temp_dir().join("leapme_embed_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged.txt");
        std::fs::write(&path, "a 1.0 2.0\nb 1.0\n").unwrap();
        let err = EmbeddingStore::load_text(&path).unwrap_err();
        assert!(matches!(err, EmbeddingError::ParseError { line: 2, .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_bad_float() {
        let dir = std::env::temp_dir().join("leapme_embed_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("badfloat.txt");
        std::fs::write(&path, "a 1.0 oops\n").unwrap();
        assert!(EmbeddingStore::load_text(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_empty_file() {
        let dir = std::env::temp_dir().join("leapme_embed_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.txt");
        std::fs::write(&path, "\n\n").unwrap();
        assert!(matches!(
            EmbeddingStore::load_text(&path),
            Err(EmbeddingError::EmptyVocabulary)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_rejected() {
        EmbeddingStore::new(0);
    }

    fn fuzzy_store() -> EmbeddingStore {
        let mut s = EmbeddingStore::new(2);
        s.insert("resolution", vec![1.0, 0.0]).unwrap();
        s.insert("battery", vec![0.0, 1.0]).unwrap();
        s.insert("mp", vec![0.5, 0.5]).unwrap();
        s.set_fuzzy_oov(true);
        s
    }

    #[test]
    fn fuzzy_oov_recovers_typos() {
        let s = fuzzy_store();
        // One transposition in a long word → resolves to "resolution".
        let avg = s.average(&["resoluiton".to_string()]);
        assert_eq!(avg, vec![1.0, 0.0]);
        // One dropped char.
        let avg = s.average(&["batery".to_string()]);
        assert_eq!(avg, vec![0.0, 1.0]);
    }

    #[test]
    fn fuzzy_oov_respects_distance_limits() {
        let s = fuzzy_store();
        // Entirely different word → still zero.
        assert_eq!(s.average(&["telephoto".to_string()]), vec![0.0, 0.0]);
        // Short words never fuzz ("mp" stays exact-only).
        assert_eq!(s.average(&["mq".to_string()]), vec![0.0, 0.0]);
        // Non-alphabetic tokens never fuzz.
        assert_eq!(s.average(&["r3solution".to_string()]), vec![0.0, 0.0]);
    }

    #[test]
    fn fuzzy_oov_off_by_default() {
        let mut s = fuzzy_store();
        s.set_fuzzy_oov(false);
        assert!(!s.fuzzy_oov());
        assert_eq!(s.average(&["resoluiton".to_string()]), vec![0.0, 0.0]);
        // Default construction is off.
        assert!(!EmbeddingStore::new(2).fuzzy_oov());
    }

    #[test]
    fn fuzzy_cache_survives_clone_semantics() {
        let s = fuzzy_store();
        let a = s.average(&["resoluiton".to_string()]);
        let s2 = s.clone();
        let b = s2.average(&["resoluiton".to_string()]);
        assert_eq!(a, b);
    }

    #[test]
    fn exact_get_never_fuzzes() {
        let s = fuzzy_store();
        assert!(s.get("resoluiton").is_none());
    }

    #[test]
    fn average_text_into_matches_reference_bitwise() {
        for store in [sample(), fuzzy_store()] {
            for text in [
                "",
                "Camera photo",
                "camera zzz unknownWord",
                "resoluiton batery",
                "20.1 MP résolution café",
                "!!! ---",
            ] {
                let reference = store.average_text(text);
                let mut fused = vec![7.0f32; store.dim()];
                store.average_text_into(text, &mut fused);
                assert_eq!(
                    fused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "store dim {} text {text:?}",
                    store.dim()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "output length != embedding dim")]
    fn average_text_into_rejects_wrong_length() {
        let mut out = [0.0f32; 2];
        sample().average_text_into("camera", &mut out);
    }

    #[test]
    fn iter_visits_every_entry() {
        let s = sample();
        let mut words: Vec<&str> = s.iter().map(|(w, _)| w).collect();
        words.sort_unstable();
        assert_eq!(words, vec!["battery", "camera", "photo"]);
        for (_, v) in s.iter() {
            assert_eq!(v.len(), s.dim());
        }
    }
}
