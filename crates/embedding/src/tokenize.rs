//! Tokenization of property names and instance values.
//!
//! Property names in multi-source product data arrive in many shapes —
//! `"camera resolution"`, `"cameraResolution"`, `"camera_resolution"`,
//! `"Camera-Resolution"` — and instance values mix words, numbers and
//! units (`"20.1 MP"`, `"1/4000s"`). The tokenizer used before embedding
//! lookup therefore:
//!
//! 1. splits on any non-alphanumeric character,
//! 2. splits camelCase boundaries (`cameraResolution` → `camera`,
//!    `resolution`),
//! 3. splits letter↔digit boundaries (`20mp` → `20`, `mp`),
//! 4. lowercases everything (the paper uses the *uncased* GloVe corpus).

/// Tokenize `text` into lowercase word/number tokens.
///
/// # Examples
///
/// ```
/// use leapme_embedding::tokenize::tokenize;
/// assert_eq!(tokenize("cameraResolution"), vec!["camera", "resolution"]);
/// assert_eq!(tokenize("20.1 MP"), vec!["20", "1", "mp"]);
/// assert_eq!(tokenize("shutter_speed-max"), vec!["shutter", "speed", "max"]);
/// assert!(tokenize("  ").is_empty());
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut prev: Option<char> = None;

    let flush = |buf: &mut String, out: &mut Vec<String>| {
        if !buf.is_empty() {
            out.push(buf.to_lowercase());
            buf.clear();
        }
    };

    for c in text.chars() {
        if !c.is_alphanumeric() {
            flush(&mut current, &mut tokens);
            prev = None;
            continue;
        }
        if let Some(p) = prev {
            let camel = p.is_lowercase() && c.is_uppercase();
            let letter_digit = p.is_alphabetic() != c.is_alphabetic();
            if camel || letter_digit {
                flush(&mut current, &mut tokens);
            }
        }
        current.push(c);
        prev = Some(c);
    }
    flush(&mut current, &mut tokens);
    tokens
}

/// Tokenize and keep only alphabetic tokens (drops pure numbers).
///
/// Useful for embedding lookups where numerals carry no distributional
/// semantics in a small trained vocabulary.
///
/// ```
/// use leapme_embedding::tokenize::tokenize_words;
/// assert_eq!(tokenize_words("20.1 MP sensor"), vec!["mp", "sensor"]);
/// ```
pub fn tokenize_words(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| t.chars().any(|c| c.is_alphabetic()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splits_camel_case() {
        assert_eq!(tokenize("maxShutterSpeed"), vec!["max", "shutter", "speed"]);
        // Consecutive uppercase stays together (acronyms).
        assert_eq!(tokenize("ISORange"), vec!["isorange"]);
        assert_eq!(tokenize("isoRange"), vec!["iso", "range"]);
    }

    #[test]
    fn splits_letter_digit_boundaries() {
        assert_eq!(tokenize("f2.8"), vec!["f", "2", "8"]);
        assert_eq!(tokenize("1080p"), vec!["1080", "p"]);
        assert_eq!(tokenize("mp3player"), vec!["mp", "3", "player"]);
    }

    #[test]
    fn separators_and_punctuation() {
        assert_eq!(tokenize("white-balance"), vec!["white", "balance"]);
        assert_eq!(tokenize("width_x_height"), vec!["width", "x", "height"]);
        assert_eq!(tokenize("a,b;c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_and_symbol_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! --- ///").is_empty());
    }

    #[test]
    fn unicode_words() {
        assert_eq!(tokenize("résolution café"), vec!["résolution", "café"]);
    }

    #[test]
    fn words_filter_drops_numbers() {
        assert_eq!(tokenize_words("100 4k tv"), vec!["k", "tv"]);
        assert!(tokenize_words("12345 678").is_empty());
    }

    proptest! {
        #[test]
        fn tokens_are_lowercase_alphanumeric(s in ".{0,40}") {
            for t in tokenize(&s) {
                prop_assert!(!t.is_empty());
                prop_assert!(t.chars().all(char::is_alphanumeric), "token {t:?}");
                prop_assert_eq!(t.clone(), t.to_lowercase());
            }
        }

        #[test]
        fn idempotent_on_own_output(s in "[a-zA-Z0-9 _-]{0,40}") {
            let once = tokenize(&s);
            let joined = once.join(" ");
            let twice = tokenize(&joined);
            prop_assert_eq!(once, twice);
        }
    }
}
