//! Tokenization of property names and instance values.
//!
//! Property names in multi-source product data arrive in many shapes —
//! `"camera resolution"`, `"cameraResolution"`, `"camera_resolution"`,
//! `"Camera-Resolution"` — and instance values mix words, numbers and
//! units (`"20.1 MP"`, `"1/4000s"`). The tokenizer used before embedding
//! lookup therefore:
//!
//! 1. splits on any non-alphanumeric character,
//! 2. splits camelCase boundaries (`cameraResolution` → `camera`,
//!    `resolution`),
//! 3. splits letter↔digit boundaries (`20mp` → `20`, `mp`),
//! 4. lowercases everything (the paper uses the *uncased* GloVe corpus).

use std::cell::Cell;

thread_local! {
    /// Reused token-assembly buffer for [`for_each_token`]. Take/put via
    /// `Cell` (not `RefCell`) so a re-entrant call simply falls back to a
    /// fresh `String` instead of panicking.
    static TOKEN_BUF: Cell<String> = const { Cell::new(String::new()) };
}

/// Flush the accumulated token through `f`, lowercased, then clear `buf`.
///
/// ASCII tokens (the overwhelming majority in product data) are
/// lowercased in place; only non-ASCII tokens take the allocating
/// `str::to_lowercase` path, which must stay because per-char
/// lowercasing is *not* equivalent (e.g. Greek final sigma depends on
/// word position, and some characters lowercase to multiple chars).
fn flush(buf: &mut String, f: &mut dyn FnMut(&str)) {
    if buf.is_empty() {
        return;
    }
    if buf.is_ascii() {
        buf.make_ascii_lowercase();
        f(buf);
    } else {
        let lowered = buf.to_lowercase();
        f(&lowered);
    }
    buf.clear();
}

/// Call `f` once per lowercase token of `text`, in order, without
/// allocating per token — the streaming core under [`tokenize`],
/// [`tokenize_words`] and `EmbeddingStore::average_text_into`.
///
/// The `&str` passed to `f` borrows a thread-local scratch buffer and is
/// only valid for the duration of the call.
///
/// ```
/// use leapme_embedding::tokenize::for_each_token;
/// let mut out = Vec::new();
/// for_each_token("cameraResolution 20.1MP", |t| out.push(t.to_string()));
/// assert_eq!(out, vec!["camera", "resolution", "20", "1", "mp"]);
/// ```
pub fn for_each_token(text: &str, mut f: impl FnMut(&str)) {
    let mut current = TOKEN_BUF.take();
    current.clear();
    let mut prev: Option<char> = None;

    for c in text.chars() {
        if !c.is_alphanumeric() {
            flush(&mut current, &mut f);
            prev = None;
            continue;
        }
        if let Some(p) = prev {
            let camel = p.is_lowercase() && c.is_uppercase();
            let letter_digit = p.is_alphabetic() != c.is_alphabetic();
            if camel || letter_digit {
                flush(&mut current, &mut f);
            }
        }
        current.push(c);
        prev = Some(c);
    }
    flush(&mut current, &mut f);
    TOKEN_BUF.set(current);
}

/// Tokenize `text` into lowercase word/number tokens.
///
/// # Examples
///
/// ```
/// use leapme_embedding::tokenize::tokenize;
/// assert_eq!(tokenize("cameraResolution"), vec!["camera", "resolution"]);
/// assert_eq!(tokenize("20.1 MP"), vec!["20", "1", "mp"]);
/// assert_eq!(tokenize("shutter_speed-max"), vec!["shutter", "speed", "max"]);
/// assert!(tokenize("  ").is_empty());
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    for_each_token(text, |t| tokens.push(t.to_string()));
    tokens
}

/// Tokenize and keep only alphabetic tokens (drops pure numbers).
///
/// Useful for embedding lookups where numerals carry no distributional
/// semantics in a small trained vocabulary. Filters during the streaming
/// pass — no intermediate full token `Vec`.
///
/// ```
/// use leapme_embedding::tokenize::tokenize_words;
/// assert_eq!(tokenize_words("20.1 MP sensor"), vec!["mp", "sensor"]);
/// ```
pub fn tokenize_words(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    for_each_token(text, |t| {
        if t.chars().any(|c| c.is_alphabetic()) {
            tokens.push(t.to_string());
        }
    });
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The pre-fast-path implementation, kept verbatim as the oracle for
    /// the streaming tokenizer.
    fn tokenize_reference(text: &str) -> Vec<String> {
        let mut tokens = Vec::new();
        let mut current = String::new();
        let mut prev: Option<char> = None;

        let flush = |buf: &mut String, out: &mut Vec<String>| {
            if !buf.is_empty() {
                out.push(buf.to_lowercase());
                buf.clear();
            }
        };

        for c in text.chars() {
            if !c.is_alphanumeric() {
                flush(&mut current, &mut tokens);
                prev = None;
                continue;
            }
            if let Some(p) = prev {
                let camel = p.is_lowercase() && c.is_uppercase();
                let letter_digit = p.is_alphabetic() != c.is_alphabetic();
                if camel || letter_digit {
                    flush(&mut current, &mut tokens);
                }
            }
            current.push(c);
            prev = Some(c);
        }
        flush(&mut current, &mut tokens);
        tokens
    }

    #[test]
    fn streaming_matches_reference_on_tricky_cases() {
        for s in [
            "",
            "cameraResolution",
            "20.1 MP",
            "ΣΊΣΥΦΟΣ net",      // uppercase final sigma: to_lowercase is positional
            "İstanbul",          // dotted capital I lowercases to two chars
            "résolution café 4k",
            "ẞ groß",
        ] {
            assert_eq!(tokenize(s), tokenize_reference(s), "input {s:?}");
        }
    }

    #[test]
    fn splits_camel_case() {
        assert_eq!(tokenize("maxShutterSpeed"), vec!["max", "shutter", "speed"]);
        // Consecutive uppercase stays together (acronyms).
        assert_eq!(tokenize("ISORange"), vec!["isorange"]);
        assert_eq!(tokenize("isoRange"), vec!["iso", "range"]);
    }

    #[test]
    fn splits_letter_digit_boundaries() {
        assert_eq!(tokenize("f2.8"), vec!["f", "2", "8"]);
        assert_eq!(tokenize("1080p"), vec!["1080", "p"]);
        assert_eq!(tokenize("mp3player"), vec!["mp", "3", "player"]);
    }

    #[test]
    fn separators_and_punctuation() {
        assert_eq!(tokenize("white-balance"), vec!["white", "balance"]);
        assert_eq!(tokenize("width_x_height"), vec!["width", "x", "height"]);
        assert_eq!(tokenize("a,b;c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_and_symbol_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! --- ///").is_empty());
    }

    #[test]
    fn unicode_words() {
        assert_eq!(tokenize("résolution café"), vec!["résolution", "café"]);
    }

    #[test]
    fn words_filter_drops_numbers() {
        assert_eq!(tokenize_words("100 4k tv"), vec!["k", "tv"]);
        assert!(tokenize_words("12345 678").is_empty());
    }

    proptest! {
        #[test]
        fn streaming_matches_reference(s in ".{0,60}") {
            prop_assert_eq!(tokenize(&s), tokenize_reference(&s));
        }

        #[test]
        fn words_filter_matches_two_pass(s in ".{0,60}") {
            let two_pass: Vec<String> = tokenize(&s)
                .into_iter()
                .filter(|t| t.chars().any(|c| c.is_alphabetic()))
                .collect();
            prop_assert_eq!(tokenize_words(&s), two_pass);
        }

        #[test]
        fn tokens_are_lowercase_alphanumeric(s in ".{0,40}") {
            for t in tokenize(&s) {
                prop_assert!(!t.is_empty());
                prop_assert!(t.chars().all(char::is_alphanumeric), "token {t:?}");
                prop_assert_eq!(t.clone(), t.to_lowercase());
            }
        }

        #[test]
        fn idempotent_on_own_output(s in "[a-zA-Z0-9 _-]{0,40}") {
            let once = tokenize(&s);
            let joined = once.join(" ");
            let twice = tokenize(&joined);
            prop_assert_eq!(once, twice);
        }
    }
}
