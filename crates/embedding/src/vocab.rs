//! Vocabulary: word ↔ id interning with frequency-based pruning.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An immutable vocabulary mapping words to dense ids `0..len`.
///
/// Ids are assigned in descending frequency order (ties broken
/// lexicographically) so id 0 is the most frequent word — the layout GloVe
/// implementations conventionally use.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Vocab {
    word_to_id: HashMap<String, u32>,
    id_to_word: Vec<String>,
    counts: Vec<u64>,
}

impl Vocab {
    /// Build a vocabulary from a token stream, keeping words that occur at
    /// least `min_count` times.
    pub fn build<'a>(tokens: impl IntoIterator<Item = &'a str>, min_count: u64) -> Self {
        let mut freq: HashMap<String, u64> = HashMap::new();
        for t in tokens {
            *freq.entry(t.to_string()).or_insert(0) += 1;
        }
        let mut entries: Vec<(String, u64)> = freq
            .into_iter()
            .filter(|&(_, c)| c >= min_count.max(1))
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        let mut word_to_id = HashMap::with_capacity(entries.len());
        let mut id_to_word = Vec::with_capacity(entries.len());
        let mut counts = Vec::with_capacity(entries.len());
        for (i, (w, c)) in entries.into_iter().enumerate() {
            word_to_id.insert(w.clone(), i as u32);
            id_to_word.push(w);
            counts.push(c);
        }
        Vocab {
            word_to_id,
            id_to_word,
            counts,
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.id_to_word.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.id_to_word.is_empty()
    }

    /// Id of `word`, if present.
    pub fn id(&self, word: &str) -> Option<u32> {
        self.word_to_id.get(word).copied()
    }

    /// Word for `id`, if in range.
    pub fn word(&self, id: u32) -> Option<&str> {
        self.id_to_word.get(id as usize).map(String::as_str)
    }

    /// Corpus frequency of the word with `id`.
    pub fn count(&self, id: u32) -> Option<u64> {
        self.counts.get(id as usize).copied()
    }

    /// Iterate `(id, word, count)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str, u64)> + '_ {
        self.id_to_word
            .iter()
            .zip(&self.counts)
            .enumerate()
            .map(|(i, (w, &c))| (i as u32, w.as_str(), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Vocab {
        let tokens = ["b", "a", "b", "c", "b", "a"];
        Vocab::build(tokens, 1)
    }

    #[test]
    fn frequency_ordering() {
        let v = sample();
        assert_eq!(v.len(), 3);
        assert_eq!(v.word(0), Some("b")); // freq 3
        assert_eq!(v.word(1), Some("a")); // freq 2
        assert_eq!(v.word(2), Some("c")); // freq 1
        assert_eq!(v.count(0), Some(3));
    }

    #[test]
    fn min_count_prunes() {
        let tokens = ["x", "x", "y"];
        let v = Vocab::build(tokens, 2);
        assert_eq!(v.len(), 1);
        assert_eq!(v.id("x"), Some(0));
        assert_eq!(v.id("y"), None);
    }

    #[test]
    fn ties_broken_lexicographically() {
        let tokens = ["beta", "alpha"];
        let v = Vocab::build(tokens, 1);
        assert_eq!(v.word(0), Some("alpha"));
        assert_eq!(v.word(1), Some("beta"));
    }

    #[test]
    fn lookup_round_trips() {
        let v = sample();
        for (id, word, _) in v.iter() {
            assert_eq!(v.id(word), Some(id));
        }
        assert_eq!(v.id("missing"), None);
        assert_eq!(v.word(99), None);
    }

    #[test]
    fn empty_vocab() {
        let v = Vocab::build(std::iter::empty(), 1);
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let v = sample();
        let s = serde_json::to_string(&v).unwrap();
        let back: Vocab = serde_json::from_str(&s).unwrap();
        assert_eq!(back.len(), v.len());
        assert_eq!(back.id("b"), v.id("b"));
        assert_eq!(back.count(0), v.count(0));
    }

    proptest! {
        #[test]
        fn ids_are_dense_and_counts_sorted(words in proptest::collection::vec("[a-d]{1,3}", 0..50)) {
            let v = Vocab::build(words.iter().map(String::as_str), 1);
            // Dense ids.
            for i in 0..v.len() {
                prop_assert!(v.word(i as u32).is_some());
            }
            // Non-increasing counts.
            for i in 1..v.len() {
                prop_assert!(v.count(i as u32 - 1).unwrap() >= v.count(i as u32).unwrap());
            }
            // Total count preserved.
            let total: u64 = (0..v.len()).map(|i| v.count(i as u32).unwrap()).sum();
            prop_assert_eq!(total as usize, words.len());
        }
    }
}
