//! Deterministic, spec-driven fault injection for chaos testing.
//!
//! The pipeline crates expose named *fault sites* (see [`sites`]) at
//! which this module can inject failures: I/O errors, malformed rows,
//! non-finite numerics, oversized values, missing-embedding lookups,
//! and worker panics. Whether a given visit to a site fires is decided
//! deterministically from `(seed, site, visit-counter)` via a
//! splitmix64 hash, so a chaos run is exactly reproducible from its
//! spec string.
//!
//! # Spec grammar
//!
//! A plan is a `;`-separated list of directives:
//!
//! ```text
//! seed=42;data.csv.row:malformed@0.1;nn.loss:nan@1.0#2
//! ```
//!
//! * `seed=N` — base seed for the deterministic decisions (default 0).
//! * `site:kind@prob` — at `site`, inject `kind` with probability
//!   `prob` per visit.
//! * `site:kind@prob#max` — same, but fire at most `max` times.
//!
//! Kinds: `io`, `malformed`, `nan`, `inf`, `oversize`,
//! `missing-embedding`, `panic`, `torn`, `short-read`, `bit-flip`.
//!
//! The plan is installed either programmatically ([`install`] /
//! [`with_plan`]) or lazily from the `LEAPME_FAULTS` environment
//! variable on first use. Production binaries compile the hooks out
//! entirely: the dependent crates only call into this crate under
//! their `faults` cargo feature.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};

/// Canonical fault-site names used across the workspace.
///
/// Keeping them in one place documents the full fault surface and
/// prevents typo'd site strings from silently never firing.
pub mod sites {
    /// Reading a line from a CSV source (`kind: io`).
    pub const CSV_LINE: &str = "data.csv.line";
    /// Structural validation of a parsed CSV row (`kind: malformed`).
    pub const CSV_ROW: &str = "data.csv.row";
    /// Embedding vocabulary lookup (`kind: missing-embedding`).
    pub const EMBEDDING_LOOKUP: &str = "embedding.lookup";
    /// Numeric feature extraction from an instance value
    /// (`kind: nan | inf | oversize`).
    pub const INSTANCE_VALUE: &str = "features.instance.value";
    /// Parallel feature-build worker (`kind: panic`).
    pub const FEATURE_WORKER: &str = "features.worker";
    /// Parallel pair-matrix worker (`kind: panic`).
    pub const PAIR_WORKER: &str = "features.pair.worker";
    /// Mini-batch loss computation in training (`kind: nan`).
    pub const NN_LOSS: &str = "nn.loss";
    /// Parallel scoring worker (`kind: panic`).
    pub const SCORE_WORKER: &str = "core.score.worker";
    /// Repeated-evaluation worker (`kind: panic`).
    pub const RUNNER_WORKER: &str = "core.runner.worker";
    /// Writing a checkpoint/model container to disk (`kind: torn | io`).
    pub const CHECKPOINT_WRITE: &str = "nn.checkpoint.write";
    /// Reading a checkpoint/model container back
    /// (`kind: short-read | bit-flip | io`).
    pub const CHECKPOINT_READ: &str = "nn.checkpoint.read";
    /// Appending a record to the run journal (`kind: torn | io`).
    pub const JOURNAL_APPEND: &str = "core.journal.append";
    /// Accepting a connection in `leapme serve` (`kind: io`).
    pub const SERVE_ACCEPT: &str = "serve.accept";
    /// Reading a request from a client socket (`kind: io | torn`).
    pub const SERVE_READ: &str = "serve.read";
    /// Writing a response to a client socket (`kind: io`).
    pub const SERVE_WRITE: &str = "serve.write";
    /// Request handler body in the serve worker pool (`kind: panic`).
    pub const SERVE_HANDLER: &str = "serve.handler";
    /// Validation gate over an incoming source in the continual-ingestion
    /// driver (`kind: malformed | io`).
    pub const CONTINUAL_VALIDATE: &str = "continual.validate";
    /// Champion/challenger refit after a drift trigger
    /// (`kind: nan | io`): `nan` sabotages the challenger so the
    /// promotion gate must catch the regression and roll back.
    pub const CONTINUAL_REFIT: &str = "continual.refit";
    /// Persisting the generation-pinned resident snapshot before an
    /// integration swap (`kind: torn | io`).
    pub const CONTINUAL_SNAPSHOT: &str = "continual.snapshot";
}

/// What kind of failure to inject at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// An I/O error (e.g. a failed read).
    Io,
    /// A structurally malformed record.
    Malformed,
    /// A `NaN` value.
    Nan,
    /// An infinite value.
    Inf,
    /// A finite but absurdly large value (e.g. `1e30`).
    Oversize,
    /// A vocabulary token with no embedding vector.
    MissingEmbedding,
    /// A worker-thread panic.
    Panic,
    /// A torn write: only a prefix of the bytes reaches the disk, as if
    /// the process died mid-write.
    Torn,
    /// A short read: the file's tail is missing from the read buffer.
    ShortRead,
    /// A single bit flipped in a read buffer (silent media corruption).
    BitFlip,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        Some(match s {
            "io" => FaultKind::Io,
            "malformed" => FaultKind::Malformed,
            "nan" => FaultKind::Nan,
            "inf" => FaultKind::Inf,
            "oversize" => FaultKind::Oversize,
            "missing-embedding" => FaultKind::MissingEmbedding,
            "panic" => FaultKind::Panic,
            "torn" => FaultKind::Torn,
            "short-read" => FaultKind::ShortRead,
            "bit-flip" => FaultKind::BitFlip,
            _ => return None,
        })
    }

    /// The spec-string name of this kind.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Io => "io",
            FaultKind::Malformed => "malformed",
            FaultKind::Nan => "nan",
            FaultKind::Inf => "inf",
            FaultKind::Oversize => "oversize",
            FaultKind::MissingEmbedding => "missing-embedding",
            FaultKind::Panic => "panic",
            FaultKind::Torn => "torn",
            FaultKind::ShortRead => "short-read",
            FaultKind::BitFlip => "bit-flip",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One `site:kind@prob[#max]` directive.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSpec {
    /// The fault-site name (see [`sites`]).
    pub site: String,
    /// What to inject there.
    pub kind: FaultKind,
    /// Per-visit firing probability in `[0, 1]`.
    pub prob: f64,
    /// Optional cap on the total number of firings.
    pub max: Option<u64>,
}

/// A parsed `LEAPME_FAULTS` spec.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Base seed for the deterministic decisions.
    pub seed: u64,
    /// The per-site directives, in spec order.
    pub sites: Vec<SiteSpec>,
}

/// A malformed fault-spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

impl FaultPlan {
    /// Parse a spec string (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::default();
        for directive in spec.split(';') {
            let directive = directive.trim();
            if directive.is_empty() {
                continue;
            }
            if let Some(seed) = directive.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse()
                    .map_err(|_| FaultSpecError(format!("bad seed {seed:?}")))?;
                continue;
            }
            let (site, rest) = directive.split_once(':').ok_or_else(|| {
                FaultSpecError(format!("directive {directive:?} is not site:kind@prob"))
            })?;
            let (kind, rest) = rest.split_once('@').ok_or_else(|| {
                FaultSpecError(format!("directive {directive:?} is missing @prob"))
            })?;
            let kind = FaultKind::parse(kind.trim())
                .ok_or_else(|| FaultSpecError(format!("unknown fault kind {kind:?}")))?;
            let (prob, max) = match rest.split_once('#') {
                Some((p, m)) => {
                    let max: u64 = m
                        .trim()
                        .parse()
                        .map_err(|_| FaultSpecError(format!("bad max count {m:?}")))?;
                    (p, Some(max))
                }
                None => (rest, None),
            };
            let prob: f64 = prob
                .trim()
                .parse()
                .map_err(|_| FaultSpecError(format!("bad probability {prob:?}")))?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(FaultSpecError(format!("probability {prob} not in [0, 1]")));
            }
            let site = site.trim();
            if site.is_empty() {
                return Err(FaultSpecError(format!("empty site in {directive:?}")));
            }
            plan.sites.push(SiteSpec {
                site: site.to_string(),
                kind,
                prob,
                max,
            });
        }
        Ok(plan)
    }
}

struct ActiveSite {
    spec: SiteSpec,
    visits: AtomicU64,
    fired: AtomicU64,
}

struct ActivePlan {
    seed: u64,
    sites: Vec<ActiveSite>,
}

fn activate(plan: FaultPlan) -> Arc<ActivePlan> {
    Arc::new(ActivePlan {
        seed: plan.seed,
        sites: plan
            .sites
            .into_iter()
            .map(|spec| ActiveSite {
                spec,
                visits: AtomicU64::new(0),
                fired: AtomicU64::new(0),
            })
            .collect(),
    })
}

fn plan_from_env() -> Option<FaultPlan> {
    let spec = std::env::var("LEAPME_FAULTS").ok()?;
    if spec.trim().is_empty() {
        return None;
    }
    match FaultPlan::parse(&spec) {
        Ok(plan) => Some(plan),
        Err(e) => {
            eprintln!("warning: ignoring LEAPME_FAULTS: {e}");
            None
        }
    }
}

fn state() -> &'static RwLock<Option<Arc<ActivePlan>>> {
    static STATE: OnceLock<RwLock<Option<Arc<ActivePlan>>>> = OnceLock::new();
    STATE.get_or_init(|| RwLock::new(plan_from_env().map(activate)))
}

fn read_plan() -> Option<Arc<ActivePlan>> {
    state()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(Arc::clone)
}

/// Install `plan` as the process-wide fault plan (`None` disarms all
/// sites). Replaces any plan previously loaded from `LEAPME_FAULTS`.
pub fn install(plan: Option<FaultPlan>) {
    *state().write().unwrap_or_else(|e| e.into_inner()) = plan.map(activate);
}

/// splitmix64 — a small, high-quality bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn site_hash(site: &str) -> u64 {
    // FNV-1a over the site name; stable across runs and platforms.
    let mut h: u64 = 0xCBF29CE484222325;
    for b in site.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// Deterministic uniform draw in `[0, 1)` for visit `n` of `site`.
fn unit_draw(seed: u64, site: &str, n: u64) -> f64 {
    let mixed = splitmix64(seed ^ site_hash(site).wrapping_add(splitmix64(n)));
    // Top 53 bits → f64 mantissa.
    (mixed >> 11) as f64 / (1u64 << 53) as f64
}

/// Decide whether the current visit to `site` injects a fault.
///
/// Returns the configured [`FaultKind`] when the site fires, `None`
/// when no plan is installed, the site is not configured, the per-site
/// `#max` cap is exhausted, or the probability draw misses. Each call
/// counts as one visit.
pub fn fires(site: &str) -> Option<FaultKind> {
    let plan = read_plan()?;
    let active = plan.sites.iter().find(|s| s.spec.site == site)?;
    let n = active.visits.fetch_add(1, Ordering::Relaxed);
    if unit_draw(plan.seed, site, n) >= active.spec.prob {
        return None;
    }
    if let Some(max) = active.spec.max {
        // Atomically claim one of the remaining firings so concurrent
        // workers cannot overshoot the cap.
        if active
            .fired
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| {
                (f < max).then_some(f + 1)
            })
            .is_err()
        {
            return None;
        }
    } else {
        active.fired.fetch_add(1, Ordering::Relaxed);
    }
    Some(active.spec.kind)
}

/// Panic with a recognizable payload if `site` fires with
/// [`FaultKind::Panic`]. Other configured kinds at the site are
/// ignored by this helper.
pub fn maybe_panic(site: &str) {
    if fires(site) == Some(FaultKind::Panic) {
        panic!("injected fault: worker panic at {site}");
    }
}

/// Total number of times `site` has fired under the current plan.
pub fn fired_count(site: &str) -> u64 {
    read_plan()
        .and_then(|p| {
            p.sites
                .iter()
                .find(|s| s.spec.site == site)
                .map(|s| s.fired.load(Ordering::Relaxed))
        })
        .unwrap_or(0)
}

/// Per-site `(site, kind, fired)` telemetry for the current plan.
pub fn fired_counts() -> Vec<(String, FaultKind, u64)> {
    read_plan()
        .map(|p| {
            p.sites
                .iter()
                .map(|s| {
                    (
                        s.spec.site.clone(),
                        s.spec.kind,
                        s.fired.load(Ordering::Relaxed),
                    )
                })
                .collect()
        })
        .unwrap_or_default()
}

fn test_lock() -> MutexGuard<'static, ()> {
    static TEST_MUTEX: Mutex<()> = Mutex::new(());
    TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner())
}

struct PlanGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for PlanGuard {
    fn drop(&mut self) {
        // Restore the environment-derived plan (usually: no plan) even
        // if the closure panicked, so later tests start clean.
        install(plan_from_env());
    }
}

/// Run `f` with the given spec installed, serialized against other
/// [`with_plan`] callers, restoring the previous (environment-derived)
/// state afterwards — even on panic. Panics if the spec is invalid;
/// intended for tests.
pub fn with_plan<R>(spec: &str, f: impl FnOnce() -> R) -> R {
    let _guard = PlanGuard(test_lock());
    install(Some(FaultPlan::parse(spec).expect("valid fault spec")));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let plan =
            FaultPlan::parse("seed=42; data.csv.row:malformed@0.25 ; nn.loss:nan@1.0#2").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.sites.len(), 2);
        assert_eq!(plan.sites[0].site, "data.csv.row");
        assert_eq!(plan.sites[0].kind, FaultKind::Malformed);
        assert!((plan.sites[0].prob - 0.25).abs() < 1e-12);
        assert_eq!(plan.sites[0].max, None);
        assert_eq!(plan.sites[1].kind, FaultKind::Nan);
        assert_eq!(plan.sites[1].max, Some(2));
    }

    #[test]
    fn parses_every_kind() {
        for kind in [
            "io",
            "malformed",
            "nan",
            "inf",
            "oversize",
            "missing-embedding",
            "panic",
            "torn",
            "short-read",
            "bit-flip",
        ] {
            let plan = FaultPlan::parse(&format!("s:{kind}@0.5")).unwrap();
            assert_eq!(plan.sites[0].kind.name(), kind);
        }
    }

    #[test]
    fn rejects_bad_specs() {
        for bad in [
            "nonsense",
            "site:nope@0.5",
            "site:nan@1.5",
            "site:nan@x",
            "site:nan",
            "seed=abc",
            ":nan@0.5",
            "site:nan@0.5#x",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_spec_is_empty_plan() {
        let plan = FaultPlan::parse("  ;; ").unwrap();
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn disarmed_sites_never_fire() {
        with_plan("seed=1;a:nan@1.0", || {
            assert_eq!(fires("other-site"), None);
        });
        // No plan installed → nothing fires.
        assert_eq!(fires("a"), None);
    }

    #[test]
    fn probability_one_always_fires() {
        with_plan("seed=7;a:inf@1.0", || {
            for _ in 0..100 {
                assert_eq!(fires("a"), Some(FaultKind::Inf));
            }
            assert_eq!(fired_count("a"), 100);
        });
    }

    #[test]
    fn probability_zero_never_fires() {
        with_plan("seed=7;a:inf@0.0", || {
            for _ in 0..100 {
                assert_eq!(fires("a"), None);
            }
            assert_eq!(fired_count("a"), 0);
        });
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let run = |spec: &str| {
            with_plan(spec, || (0..200).map(|_| fires("a").is_some()).collect::<Vec<_>>())
        };
        let a = run("seed=3;a:nan@0.3");
        let b = run("seed=3;a:nan@0.3");
        let c = run("seed=4;a:nan@0.3");
        assert_eq!(a, b);
        assert_ne!(a, c);
        let hits = a.iter().filter(|&&h| h).count();
        assert!((30..=90).contains(&hits), "hit rate off: {hits}/200");
    }

    #[test]
    fn max_cap_is_respected_across_threads() {
        with_plan("seed=1;a:panic@1.0#3", || {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|_| s.spawn(|| (0..50).filter(|_| fires("a").is_some()).count()))
                    .collect();
                let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
                assert_eq!(total, 3);
            });
            assert_eq!(fired_count("a"), 3);
        });
    }

    #[test]
    fn maybe_panic_panics_with_payload() {
        with_plan("seed=1;w:panic@1.0", || {
            let err = std::panic::catch_unwind(|| maybe_panic("w")).unwrap_err();
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("injected fault"), "{msg}");
        });
    }

    #[test]
    fn telemetry_reports_all_sites() {
        with_plan("seed=1;a:nan@1.0;b:io@0.0", || {
            fires("a");
            fires("b");
            let counts = fired_counts();
            assert_eq!(counts.len(), 2);
            assert_eq!(counts[0], ("a".into(), FaultKind::Nan, 1));
            assert_eq!(counts[1], ("b".into(), FaultKind::Io, 0));
        });
    }
}
