//! Character-type features (paper Table I row 1).
//!
//! For each of nine character categories — uppercase letters, lowercase
//! letters, letters of any case ("both"), mark characters, numbers,
//! punctuation, symbols, separators, other — the extractor produces the
//! *count* and the *fraction* of the value's characters: 18 features.
//!
//! The category split follows the Unicode general categories the TAPON
//! feature set uses, approximated with `std` character predicates plus
//! explicit ASCII punctuation/symbol sets (the standard library exposes no
//! full general-category lookup; the approximation only affects rare
//! non-ASCII punctuation, which product data essentially never contains).

/// Number of character categories.
pub const CATEGORIES: usize = 9;

/// Number of features produced ([`CATEGORIES`] × {count, fraction}).
pub const LEN: usize = CATEGORIES * 2;

/// Category names, index-aligned with the output layout.
pub const NAMES: [&str; CATEGORIES] = [
    "upper_letters",
    "lower_letters",
    "letters",
    "marks",
    "numbers",
    "punctuation",
    "symbols",
    "separators",
    "other",
];

const ASCII_PUNCT: &str = "!\"#%&'()*,-./:;?@[\\]_{}";
const ASCII_SYM: &str = "$+<=>^`|~";

/// The full Unicode classifier — the cold path for non-ASCII characters
/// and the oracle the LUT below is tested against.
fn classify_unicode(c: char) -> usize {
    if c.is_alphabetic() {
        if c.is_uppercase() {
            0
        } else if c.is_lowercase() {
            1
        } else {
            2 // caseless letters (e.g. CJK) count toward "letters" only
        }
    } else if ('\u{0300}'..='\u{036F}').contains(&c) {
        3 // combining diacritical marks
    } else if c.is_numeric() {
        4
    } else if ASCII_PUNCT.contains(c) {
        5
    } else if ASCII_SYM.contains(c) {
        6
    } else if c.is_whitespace() {
        7
    } else {
        8
    }
}

const fn str_contains_byte(s: &str, b: u8) -> bool {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b {
            return true;
        }
        i += 1;
    }
    false
}

/// Compile-time category of one ASCII byte, mirroring the predicate
/// chain of `classify_unicode` restricted to `0..128`: no ASCII char is
/// a caseless letter (2) or a combining mark (3), and the ASCII
/// whitespace set is exactly `' '`, `\t`, `\n`, `\x0B`, `\x0C`, `\r`.
const fn ascii_category(b: u8) -> u8 {
    if b.is_ascii_uppercase() {
        0
    } else if b.is_ascii_lowercase() {
        1
    } else if b.is_ascii_digit() {
        4
    } else if str_contains_byte(ASCII_PUNCT, b) {
        5
    } else if str_contains_byte(ASCII_SYM, b) {
        6
    } else if matches!(b, b' ' | b'\t' | b'\n' | 0x0B | 0x0C | b'\r') {
        7
    } else {
        8
    }
}

/// Table-driven classification for the ASCII range: one load instead of
/// a chain of Unicode predicate calls and two substring scans.
/// Equivalence with `classify_unicode` over all 256 byte values is
/// proven exhaustively in the tests.
const ASCII_TABLE: [u8; 128] = {
    let mut table = [0u8; 128];
    let mut i = 0;
    while i < 128 {
        table[i] = ascii_category(i as u8);
        i += 1;
    }
    table
};

fn classify(c: char) -> usize {
    let u = c as u32;
    if u < 128 {
        ASCII_TABLE[u as usize] as usize
    } else {
        classify_unicode(c)
    }
}

/// Extract the 18 character-type features of `text`.
///
/// Layout: `[count_0, …, count_8, fraction_0, …, fraction_8]` in
/// [`NAMES`] order. The "letters" category counts *all* alphabetic
/// characters (so `count_letters >= count_upper + count_lower`). Fractions
/// are relative to the total character count; an empty string yields all
/// zeros.
pub fn extract(text: &str) -> [f32; LEN] {
    let mut counts = [0f32; CATEGORIES];
    let mut total = 0usize;
    if text.is_ascii() {
        // Byte loop + table lookup; one char per byte by definition.
        // Counts stay f32 increments in the same order as the generic
        // path, so the result is bitwise identical.
        for &b in text.as_bytes() {
            total += 1;
            let cat = ASCII_TABLE[b as usize] as usize;
            counts[cat] += 1.0;
            if cat == 0 || cat == 1 {
                counts[2] += 1.0;
            }
        }
    } else {
        for c in text.chars() {
            total += 1;
            let cat = classify(c);
            counts[cat] += 1.0;
            // Upper/lower also count as "letters".
            if cat == 0 || cat == 1 {
                counts[2] += 1.0;
            }
        }
    }
    let mut out = [0f32; LEN];
    out[..CATEGORIES].copy_from_slice(&counts);
    if total > 0 {
        let t = total as f32;
        for i in 0..CATEGORIES {
            out[CATEGORIES + i] = counts[i] / t;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn count(text: &str, name: &str) -> f32 {
        let idx = NAMES.iter().position(|n| *n == name).unwrap();
        extract(text)[idx]
    }

    fn fraction(text: &str, name: &str) -> f32 {
        let idx = NAMES.iter().position(|n| *n == name).unwrap();
        extract(text)[CATEGORIES + idx]
    }

    #[test]
    fn empty_string_all_zero() {
        assert_eq!(extract(""), [0.0; LEN]);
    }

    #[test]
    fn counts_typical_value() {
        let v = "20.1 MP";
        assert_eq!(count(v, "numbers"), 3.0);
        assert_eq!(count(v, "upper_letters"), 2.0);
        assert_eq!(count(v, "lower_letters"), 0.0);
        assert_eq!(count(v, "letters"), 2.0);
        assert_eq!(count(v, "punctuation"), 1.0); // the dot
        assert_eq!(count(v, "separators"), 1.0);
        // Fractions are the counts over the 7-char length.
        assert_eq!(fraction(v, "numbers"), 3.0 / 7.0);
        assert_eq!(fraction(v, "upper_letters"), 2.0 / 7.0);
    }

    #[test]
    fn fractions_sum_to_one_for_disjoint_categories() {
        // All categories except "letters" are disjoint; letters double-counts.
        let v = "Nikon D750, 24MP!";
        let f = extract(v);
        let disjoint: f32 = (0..CATEGORIES)
            .filter(|&i| i != 2)
            .map(|i| f[CATEGORIES + i])
            .sum();
        assert!((disjoint - 1.0).abs() < 1e-6, "sum {disjoint}");
    }

    #[test]
    fn symbols_vs_punctuation() {
        assert_eq!(count("$99+", "symbols"), 2.0);
        assert_eq!(count("$99+", "punctuation"), 0.0);
        assert_eq!(count("a,b.c", "punctuation"), 2.0);
    }

    #[test]
    fn marks_detected() {
        // e + combining acute accent.
        let s = "e\u{0301}";
        assert_eq!(count(s, "marks"), 1.0);
        assert_eq!(count(s, "lower_letters"), 1.0);
    }

    #[test]
    fn letters_superset_of_cased() {
        let f = extract("Ab日");
        let (u, l, all) = (f[0], f[1], f[2]);
        assert_eq!(u, 1.0);
        assert_eq!(l, 1.0);
        assert_eq!(all, 3.0); // 日 is a caseless letter
    }

    /// The pre-LUT extractor, kept as the oracle: always takes the
    /// per-char Unicode classifier path.
    fn extract_reference(text: &str) -> [f32; LEN] {
        let mut counts = [0f32; CATEGORIES];
        let mut total = 0usize;
        for c in text.chars() {
            total += 1;
            let cat = classify_unicode(c);
            counts[cat] += 1.0;
            if cat == 0 || cat == 1 {
                counts[2] += 1.0;
            }
        }
        let mut out = [0f32; LEN];
        out[..CATEGORIES].copy_from_slice(&counts);
        if total > 0 {
            let t = total as f32;
            for i in 0..CATEGORIES {
                out[CATEGORIES + i] = counts[i] / t;
            }
        }
        out
    }

    #[test]
    fn lut_matches_unicode_classifier_exhaustively() {
        // All of 0..=255: the ASCII half exercises the table itself, the
        // Latin-1 half proves the `< 128` gate routes everything else to
        // the Unicode classifier.
        for u in 0u32..=255 {
            let c = char::from_u32(u).unwrap();
            assert_eq!(
                classify(c),
                classify_unicode(c),
                "codepoint U+{u:04X} ({c:?})"
            );
        }
    }

    #[test]
    fn ascii_byte_loop_matches_reference() {
        for s in ["", "20.1 MP", "Nikon D750, 24MP!", "$99+", "a,b.c", "\t\n\x0B\x0C\r "] {
            assert_eq!(extract(s), extract_reference(s), "input {s:?}");
        }
    }

    proptest! {
        #[test]
        fn lut_matches_unicode_classifier_on_arbitrary_chars(s in ".{0,40}") {
            for c in s.chars() {
                prop_assert_eq!(classify(c), classify_unicode(c), "char {:?}", c);
            }
        }

        #[test]
        fn extract_matches_reference_on_arbitrary_strings(s in ".{0,60}") {
            let fast = extract(&s);
            let slow = extract_reference(&s);
            for i in 0..LEN {
                prop_assert_eq!(fast[i].to_bits(), slow[i].to_bits(),
                                "index {} on {:?}", i, s);
            }
        }

        #[test]
        fn counts_bounded_by_length(s in ".{0,40}") {
            let f = extract(&s);
            let n = s.chars().count() as f32;
            for i in 0..CATEGORIES {
                prop_assert!(f[i] <= n);
                prop_assert!((0.0..=1.0).contains(&f[CATEGORIES + i]));
            }
        }

        #[test]
        fn categories_partition_the_string(s in ".{0,40}") {
            // "letters" (index 2) counts every alphabetic char, cased or
            // not; upper (0) and lower (1) are subsets of it. So the
            // partition is: letters + marks + numbers + punctuation +
            // symbols + separators + other.
            let f = extract(&s);
            let partition: f32 = f[2] + (3..CATEGORIES).map(|i| f[i]).sum::<f32>();
            prop_assert_eq!(partition, s.chars().count() as f32);
            prop_assert!(f[0] + f[1] <= f[2]);
        }
    }
}
