//! Feature configurations (paper §V-A).
//!
//! The evaluation varies features along two dimensions:
//!
//! * **scope** — instance-related features only, name-related features
//!   only, or both;
//! * **kind** — embedding-based features only, non-embedding features
//!   only, or both;
//!
//! giving nine configurations. A configuration is realized as a column
//! mask over the full pair feature vector, whose blocks are:
//!
//! ```text
//! [ 0 .. 29          )  instance non-embedding diff   (scope=instances, kind=non-emb)
//! [ 29 .. 29+D       )  instance embedding diff       (scope=instances, kind=emb)
//! [ 29+D .. 29+2D    )  name embedding diff           (scope=names,     kind=emb)
//! [ 29+2D .. 29+2D+8 )  name string distances         (scope=names,     kind=non-emb)
//! ```

use crate::{instance, pair};
use serde::{Deserialize, Serialize};

/// Which feature *scope* to use (paper Table II row groups
/// "Instances" / "Names" / "Both").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureScope {
    /// Instance-value features only.
    Instances,
    /// Property-name features only.
    Names,
    /// Both instance and name features.
    Both,
}

/// Which feature *kind* to use (paper Table II columns LEAPME /
/// LEAPME(emb) / LEAPME(−emb)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Embedding features only — "LEAPME(emb)".
    Embeddings,
    /// Non-embedding features only — "LEAPME(−emb)".
    NonEmbeddings,
    /// All features — plain "LEAPME".
    Both,
}

/// One of the nine feature configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Feature scope.
    pub scope: FeatureScope,
    /// Feature kind.
    pub kind: FeatureKind,
}

impl FeatureConfig {
    /// The full configuration (all features): plain LEAPME on Both scope.
    pub fn full() -> Self {
        FeatureConfig {
            scope: FeatureScope::Both,
            kind: FeatureKind::Both,
        }
    }

    /// All nine configurations in the paper's Table II order
    /// (Instances, Names, Both × LEAPME, emb, −emb).
    pub fn all() -> [FeatureConfig; 9] {
        let scopes = [
            FeatureScope::Instances,
            FeatureScope::Names,
            FeatureScope::Both,
        ];
        let kinds = [
            FeatureKind::Both,
            FeatureKind::Embeddings,
            FeatureKind::NonEmbeddings,
        ];
        let mut out = [FeatureConfig::full(); 9];
        let mut i = 0;
        for scope in scopes {
            for kind in kinds {
                out[i] = FeatureConfig { scope, kind };
                i += 1;
            }
        }
        out
    }

    /// Short label matching the paper ("LEAPME", "LEAPME(emb)",
    /// "LEAPME(-emb)").
    pub fn kind_label(&self) -> &'static str {
        match self.kind {
            FeatureKind::Both => "LEAPME",
            FeatureKind::Embeddings => "LEAPME(emb)",
            FeatureKind::NonEmbeddings => "LEAPME(-emb)",
        }
    }

    /// Row-group label matching the paper ("Instances"/"Names"/"Both").
    pub fn scope_label(&self) -> &'static str {
        match self.scope {
            FeatureScope::Instances => "Instances",
            FeatureScope::Names => "Names",
            FeatureScope::Both => "Both",
        }
    }

    /// The column indices of the full pair vector (dimension `dim`) this
    /// configuration keeps, in ascending order.
    pub fn mask(&self, dim: usize) -> Vec<usize> {
        let n = instance::NON_EMBEDDING_LEN; // 29
        let blocks: [(usize, usize, FeatureScope, FeatureKind); 4] = [
            (0, n, FeatureScope::Instances, FeatureKind::NonEmbeddings),
            (n, n + dim, FeatureScope::Instances, FeatureKind::Embeddings),
            (n + dim, n + 2 * dim, FeatureScope::Names, FeatureKind::Embeddings),
            (
                n + 2 * dim,
                n + 2 * dim + pair::STRING_FEATURES,
                FeatureScope::Names,
                FeatureKind::NonEmbeddings,
            ),
        ];
        let scope_ok = |s: FeatureScope| self.scope == FeatureScope::Both || self.scope == s;
        let kind_ok = |k: FeatureKind| self.kind == FeatureKind::Both || self.kind == k;
        let mut out = Vec::new();
        for (start, end, s, k) in blocks {
            if scope_ok(s) && kind_ok(k) {
                out.extend(start..end);
            }
        }
        out
    }

    /// Number of features the configuration keeps at dimension `dim`.
    pub fn feature_count(&self, dim: usize) -> usize {
        self.mask(dim).len()
    }

    /// Project a full pair vector down to this configuration's columns.
    ///
    /// # Panics
    ///
    /// Panics if `full.len()` does not match the full pair length for
    /// `dim`.
    pub fn project(&self, full: &[f32], dim: usize) -> Vec<f32> {
        assert_eq!(full.len(), pair::len(dim), "full vector length mismatch");
        self.mask(dim).into_iter().map(|i| full[i]).collect()
    }
}

impl std::fmt::Display for FeatureConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.scope_label(), self.kind_label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_distinct_configs() {
        let all = FeatureConfig::all();
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn paper_feature_counts_at_d300() {
        let d = 300;
        let c = |scope, kind| FeatureConfig { scope, kind }.feature_count(d);
        use FeatureKind as K;
        use FeatureScope as S;
        assert_eq!(c(S::Both, K::Both), 637);
        assert_eq!(c(S::Both, K::Embeddings), 600); // both embedding blocks
        assert_eq!(c(S::Both, K::NonEmbeddings), 37); // 29 + 8
        assert_eq!(c(S::Instances, K::Both), 329);
        assert_eq!(c(S::Instances, K::Embeddings), 300);
        assert_eq!(c(S::Instances, K::NonEmbeddings), 29);
        assert_eq!(c(S::Names, K::Both), 308); // 300 + 8
        assert_eq!(c(S::Names, K::Embeddings), 300);
        assert_eq!(c(S::Names, K::NonEmbeddings), 8);
    }

    #[test]
    fn masks_are_sorted_and_in_range() {
        for cfg in FeatureConfig::all() {
            let m = cfg.mask(50);
            assert!(!m.is_empty());
            assert!(m.windows(2).all(|w| w[0] < w[1]));
            assert!(*m.last().unwrap() < pair::len(50));
        }
    }

    #[test]
    fn project_selects_expected_columns() {
        let dim = 2;
        // Full vector: 29 + 2 + 2 + 8 = 41 columns, values = index.
        let full: Vec<f32> = (0..pair::len(dim)).map(|i| i as f32).collect();
        let names_nonemb = FeatureConfig {
            scope: FeatureScope::Names,
            kind: FeatureKind::NonEmbeddings,
        };
        let v = names_nonemb.project(&full, dim);
        assert_eq!(v, vec![33.0, 34.0, 35.0, 36.0, 37.0, 38.0, 39.0, 40.0]);

        let inst_emb = FeatureConfig {
            scope: FeatureScope::Instances,
            kind: FeatureKind::Embeddings,
        };
        assert_eq!(inst_emb.project(&full, dim), vec![29.0, 30.0]);
    }

    #[test]
    fn full_config_keeps_everything() {
        let dim = 3;
        let full: Vec<f32> = (0..pair::len(dim)).map(|i| i as f32).collect();
        assert_eq!(FeatureConfig::full().project(&full, dim), full);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn project_rejects_wrong_length() {
        FeatureConfig::full().project(&[0.0; 10], 300);
    }

    #[test]
    fn labels_match_paper() {
        let cfg = FeatureConfig {
            scope: FeatureScope::Names,
            kind: FeatureKind::Embeddings,
        };
        assert_eq!(cfg.kind_label(), "LEAPME(emb)");
        assert_eq!(cfg.scope_label(), "Names");
        assert_eq!(cfg.to_string(), "Names/LEAPME(emb)");
    }
}
