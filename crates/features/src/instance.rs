//! Instance-level features (paper Table I rows 1–4).
//!
//! One feature vector per property *value*: character-type features (18),
//! token-type features (10), the numeric value of the instance (−1 when
//! it is not a number), and the average embedding of the value's words.
//! With embedding dimension `D`, the vector has `29 + D` components
//! (`329` at the paper's `D = 300`).

use crate::{chars, tokens};
use leapme_embedding::store::EmbeddingStore;

/// Number of non-embedding instance features
/// (18 character + 10 token + 1 numeric = 29; Table I rows 1–3).
pub const NON_EMBEDDING_LEN: usize = chars::LEN + tokens::LEN + 1;

/// Total instance-feature length for embedding dimension `dim`.
pub fn len(dim: usize) -> usize {
    NON_EMBEDDING_LEN + dim
}

/// Parse the numeric value of an instance (Table I row 3): the value as a
/// number, or −1.0 if it is not (entirely) a number.
///
/// Accepts surrounding whitespace and a single thousands/decimal comma
/// style (`"1,299.99"`), mirroring how product prices are written.
pub fn numeric_value(text: &str) -> f64 {
    let t = text.trim();
    if t.is_empty() {
        return -1.0;
    }
    // Only comma-bearing values (a small minority) pay for the cleaned
    // copy; `replace` on a comma-free string is the identity.
    let parsed = if t.contains(',') {
        t.replace(',', "").parse::<f64>()
    } else {
        t.parse::<f64>()
    };
    match parsed {
        Ok(v) if v.is_finite() => v,
        _ => -1.0,
    }
}

/// Extract the instance feature vector of one value.
///
/// Layout: `[chars (18) | tokens (10) | numeric (1) | embedding (D)]`.
///
/// The numeric feature saturates at ±[`crate::vectorizer::MAX_ABS_FEATURE`]:
/// a finite but huge `f64` (e.g. `1e308`) would overflow the `f32` cast to
/// `Inf` and, after a pair difference, poison training with `NaN`.
pub fn extract(value: &str, embeddings: &EmbeddingStore) -> Vec<f32> {
    let mut out = vec![0.0f32; len(embeddings.dim())];
    extract_into(value, embeddings, &mut out);
    out
}

/// Write the instance feature vector of one value into `out` without
/// allocating — the hot counterpart of [`extract`], which wraps it.
///
/// # Panics
///
/// Panics if `out.len() != len(embeddings.dim())`.
pub fn extract_into(value: &str, embeddings: &EmbeddingStore, out: &mut [f32]) {
    assert_eq!(
        out.len(),
        len(embeddings.dim()),
        "instance vector length mismatch"
    );
    let max = crate::vectorizer::MAX_ABS_FEATURE as f64;
    #[allow(unused_mut)]
    let mut numeric = numeric_value(value).clamp(-max, max) as f32;
    // Fault hook: poison the numeric feature; the sanitization pass at
    // the vectorizer boundary must neutralize every injected value.
    #[cfg(feature = "faults")]
    match leapme_faults::fires(leapme_faults::sites::INSTANCE_VALUE) {
        Some(leapme_faults::FaultKind::Nan) => numeric = f32::NAN,
        Some(leapme_faults::FaultKind::Inf) => numeric = f32::INFINITY,
        Some(leapme_faults::FaultKind::Oversize) => numeric = 1e30,
        _ => {}
    }
    out[..chars::LEN].copy_from_slice(&chars::extract(value));
    out[chars::LEN..chars::LEN + tokens::LEN].copy_from_slice(&tokens::extract(value));
    out[EMBEDDING_OFFSET - 1] = numeric;
    embeddings.average_text_into(value, &mut out[EMBEDDING_OFFSET..]);
}

/// Column index where the embedding block starts.
pub const EMBEDDING_OFFSET: usize = NON_EMBEDDING_LEN;

/// Human-readable names of the 29 non-embedding instance features.
pub fn non_embedding_names() -> Vec<String> {
    let mut names = Vec::with_capacity(NON_EMBEDDING_LEN);
    for n in chars::NAMES {
        names.push(format!("char_count_{n}"));
    }
    for n in chars::NAMES {
        names.push(format!("char_frac_{n}"));
    }
    for n in tokens::NAMES {
        names.push(format!("token_count_{n}"));
    }
    for n in tokens::NAMES {
        names.push(format!("token_frac_{n}"));
    }
    names.push("numeric_value".into());
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> EmbeddingStore {
        let mut s = EmbeddingStore::new(4);
        s.insert("mp", vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        s.insert("megapixels", vec![0.9, 0.1, 0.0, 0.0]).unwrap();
        s
    }

    #[test]
    fn paper_feature_counts() {
        // Table I: rows 1-3 sum to 29 non-embedding features; with the
        // paper's 300-d embeddings an instance has 329 features.
        assert_eq!(NON_EMBEDDING_LEN, 29);
        assert_eq!(len(300), 329);
        assert_eq!(non_embedding_names().len(), 29);
    }

    #[test]
    fn layout_matches_len() {
        let s = store();
        let v = extract("20.1 MP", &s);
        assert_eq!(v.len(), len(4));
    }

    #[test]
    fn numeric_value_parsing() {
        assert_eq!(numeric_value("42"), 42.0);
        assert_eq!(numeric_value("  3.5 "), 3.5);
        assert_eq!(numeric_value("1,299.99"), 1299.99);
        assert_eq!(numeric_value("-7"), -7.0);
        assert_eq!(numeric_value("20.1 MP"), -1.0);
        assert_eq!(numeric_value(""), -1.0);
        assert_eq!(numeric_value("abc"), -1.0);
        assert_eq!(numeric_value("NaN"), -1.0);
        assert_eq!(numeric_value("inf"), -1.0);
    }

    #[test]
    fn huge_numeric_saturates_instead_of_overflowing() {
        // "1e308" is a finite f64 but overflows the f32 cast; unclamped it
        // would become Inf and poison pair differences with NaN.
        let s = store();
        let v = extract("1e308", &s);
        assert_eq!(
            v[EMBEDDING_OFFSET - 1],
            crate::vectorizer::MAX_ABS_FEATURE
        );
        let v = extract("-1e308", &s);
        assert_eq!(
            v[EMBEDDING_OFFSET - 1],
            -crate::vectorizer::MAX_ABS_FEATURE
        );
        assert!(extract("1e308", &s).iter().all(|x| x.is_finite()));
    }

    #[test]
    fn numeric_feature_position() {
        let s = store();
        let v = extract("123", &s);
        assert_eq!(v[EMBEDDING_OFFSET - 1], 123.0);
        let v2 = extract("not a number", &s);
        assert_eq!(v2[EMBEDDING_OFFSET - 1], -1.0);
    }

    #[test]
    fn embedding_block_is_value_average() {
        let s = store();
        let v = extract("mp", &s);
        assert_eq!(&v[EMBEDDING_OFFSET..], &[1.0, 0.0, 0.0, 0.0]);
        // "20 mp" → tokens [20, mp]; 20 is OOV → zero; average halves.
        let v2 = extract("20 mp", &s);
        assert_eq!(&v2[EMBEDDING_OFFSET..], &[0.5, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn empty_value_is_zeros_and_minus_one() {
        let s = store();
        let v = extract("", &s);
        assert_eq!(v[EMBEDDING_OFFSET - 1], -1.0);
        assert!(v[..EMBEDDING_OFFSET - 1].iter().all(|&x| x == 0.0));
        assert!(v[EMBEDDING_OFFSET..].iter().all(|&x| x == 0.0));
    }

    /// The pre-fusion composition, kept as the oracle: separate block
    /// extraction plus the allocating `average_text` reference path.
    fn extract_reference(value: &str, embeddings: &EmbeddingStore) -> Vec<f32> {
        let max = crate::vectorizer::MAX_ABS_FEATURE as f64;
        let numeric = numeric_value(value).clamp(-max, max) as f32;
        let mut out = Vec::with_capacity(len(embeddings.dim()));
        out.extend_from_slice(&chars::extract(value));
        out.extend_from_slice(&tokens::extract(value));
        out.push(numeric);
        out.extend(embeddings.average_text(value));
        out
    }

    fn assert_bitwise_eq(a: &[f32], b: &[f32], context: &str) {
        assert_eq!(a.len(), b.len(), "{context}");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "index {i}: {context}");
        }
    }

    #[test]
    fn extract_into_matches_reference_on_tricky_values() {
        let s = store();
        for value in [
            "",
            "20.1 MP",
            "1,299.99",
            "megapixels MP mp",
            "résolution café 4k",
            "ΣΊΣΥΦΟΣ 12",
            "1e308",
        ] {
            let reference = extract_reference(value, &s);
            let mut fused = vec![9.0f32; len(s.dim())];
            extract_into(value, &s, &mut fused);
            assert_bitwise_eq(&fused, &reference, value);
        }
    }

    #[test]
    #[should_panic(expected = "instance vector length mismatch")]
    fn extract_into_rejects_wrong_length() {
        let mut out = vec![0.0f32; 3];
        extract_into("x", &store(), &mut out);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn full_instance_vector_matches_reference(value in ".{0,60}") {
                let s = store();
                let reference = extract_reference(&value, &s);
                let mut fused = vec![9.0f32; len(s.dim())];
                extract_into(&value, &s, &mut fused);
                assert_bitwise_eq(&fused, &reference, &value);
            }

            #[test]
            fn numeric_value_comma_guard_is_identity(value in "[0-9.,eE+-]{0,12}") {
                // The comma fast path must agree with unconditional
                // comma-stripping on every input shape.
                let cleaned: String = value.trim().replace(',', "");
                let expected = if value.trim().is_empty() {
                    -1.0
                } else {
                    match cleaned.parse::<f64>() {
                        Ok(v) if v.is_finite() => v,
                        _ => -1.0,
                    }
                };
                prop_assert_eq!(numeric_value(&value).to_bits(), expected.to_bits());
            }
        }
    }
}
