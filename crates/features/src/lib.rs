//! LEAPME feature extraction (paper §IV-B and Table I).
//!
//! Features exist at three levels, each built from the one below:
//!
//! 1. **Instance features** ([`instance`]) — per property value: 18
//!    character-type features ([`chars`]), 10 token-type features
//!    ([`tokens`]), the numeric value (−1 if non-numeric), and the average
//!    word-embedding vector of the value (Table I rows 1–4). With
//!    embedding dimension `D` this is `29 + D` features (`329` at the
//!    paper's `D = 300`).
//! 2. **Property features** ([`property`]) — per property: the average of
//!    its instance feature vectors plus the average embedding of the words
//!    in the property *name* (rows 5–6): `29 + 2D` features.
//! 3. **Property-pair features** ([`pair`]) — per candidate pair: the
//!    component-wise difference of the two property vectors plus eight
//!    string distances between the names (rows 7–15): `29 + 2D + 8`
//!    features (`637` at `D = 300`).
//!
//! [`config::FeatureConfig`] selects feature subsets along the paper's two
//! evaluation dimensions (§V-A): *scope* (instance features only / name
//! features only / both) × *kind* (embedding features only / non-embedding
//! only / both) — nine configurations in total. [`vectorizer`] ties
//! everything together: it precomputes property vectors for a dataset once
//! and then emits masked pair vectors for any configuration.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod chars;
pub mod config;
pub mod instance;
pub mod pair;
pub mod property;
pub mod scratch;
pub mod tokens;
pub mod vectorizer;

pub use config::{FeatureConfig, FeatureKind, FeatureScope};
pub use scratch::{with_scratch, FeatureScratch};
pub use vectorizer::{
    worker_threads, CancelCheck, DegradationReport, PairKeys, PropertyFeatureStore, SanitizeStats,
    MAX_ABS_FEATURE,
};
