//! Property-pair features (paper Table I rows 7–15).
//!
//! Per candidate pair: the component-wise difference between the two
//! property feature vectors (row 7; `29 + 2D` components) plus the eight
//! string distances between the property names (rows 8–15): `29 + 2D + 8`
//! total (`637` at the paper's `D = 300`).

use leapme_textsim::{DistanceScratch, StringDistances};
use std::cell::RefCell;

/// Number of string-distance features (Table I rows 8–15).
pub const STRING_FEATURES: usize = StringDistances::LEN;

thread_local! {
    /// Per-thread scratch for the three DP-based edit distances, so the
    /// eight-distance name block stops allocating fresh DP rows per call
    /// (the pair fill fans out across threads; each worker gets its own
    /// buffers and results are thread-count independent).
    static DISTANCE_SCRATCH: RefCell<DistanceScratch> = RefCell::new(DistanceScratch::new());
}

/// Total pair-feature length for embedding dimension `dim`.
pub fn len(dim: usize) -> usize {
    crate::property::len(dim) + STRING_FEATURES
}

/// Component-wise absolute difference of two property vectors.
///
/// The paper's row 7 is "the difference between the features vectors of
/// the two properties"; we use the absolute difference so the feature is
/// symmetric in the pair order (pairs are unordered, §III).
///
/// Allocating wrapper around [`vector_difference_into`].
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn vector_difference(a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; a.len()];
    vector_difference_into(&mut out, a, b);
    out
}

/// Write `|a - b|` into `out` through the one shared subtraction kernel
/// ([`leapme_embedding::kernels::sub_abs`]) — the same kernel the flat
/// pair-matrix fill path uses, so there is exactly one implementation of
/// the pair-difference arithmetic.
///
/// # Panics
///
/// Panics if the three slices have different lengths.
pub fn vector_difference_into(out: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "property vector length mismatch");
    leapme_embedding::kernels::sub_abs(out, a, b);
}

/// Normalize a property name for string comparison: lowercase, split on
/// non-alphanumerics and camelCase boundaries, join with single spaces.
///
/// Multi-source names differ in *styling* (`Retail_Price`,
/// `RETAIL PRICE`, `retailPrice`) far more than in substance; raw-string
/// edit distances would be dominated by case and separator conventions.
pub fn normalize_name(name: &str) -> String {
    leapme_embedding::tokenize::tokenize(name).join(" ")
}

/// The eight name string-distance features, computed on normalized names,
/// as `f32`.
pub fn string_features(name_a: &str, name_b: &str) -> [f32; STRING_FEATURES] {
    string_features_prenormalized(&normalize_name(name_a), &normalize_name(name_b))
}

/// [`string_features`] for names that are *already* [`normalize_name`]d.
///
/// The feature store normalizes each distinct property name once at build
/// time and feeds the stored form here, instead of re-tokenizing both
/// names on every uncached pair; passing raw names changes the result,
/// so callers outside the store should use [`string_features`].
pub fn string_features_prenormalized(norm_a: &str, norm_b: &str) -> [f32; STRING_FEATURES] {
    let d = DISTANCE_SCRATCH.with(|scratch| {
        StringDistances::compute_with(norm_a, norm_b, &mut scratch.borrow_mut()).as_array()
    });
    let mut out = [0f32; STRING_FEATURES];
    for (o, v) in out.iter_mut().zip(d) {
        *o = v as f32;
    }
    out
}

/// Assemble the full pair feature vector:
/// `[ |pf_a − pf_b| (29+2D) | string distances (8) ]`.
pub fn assemble(
    pf_a: &[f32],
    pf_b: &[f32],
    name_a: &str,
    name_b: &str,
) -> Vec<f32> {
    let mut out = vector_difference(pf_a, pf_b);
    out.extend_from_slice(&string_features(name_a, name_b));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_feature_counts() {
        // 629 difference features + 8 string features = 637 at D = 300.
        assert_eq!(len(300), 637);
        assert_eq!(STRING_FEATURES, 8);
    }

    #[test]
    fn difference_is_symmetric() {
        let a = vec![1.0, -2.0, 3.0];
        let b = vec![0.5, 2.0, 3.0];
        assert_eq!(vector_difference(&a, &b), vector_difference(&b, &a));
        assert_eq!(vector_difference(&a, &b), vec![0.5, 4.0, 0.0]);
    }

    #[test]
    fn identical_vectors_zero_difference() {
        let a = vec![1.0, 2.0];
        assert_eq!(vector_difference(&a, &a), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_vectors() {
        vector_difference(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn string_features_symmetric_and_bounded() {
        let f1 = string_features("camera resolution", "image resolution");
        let f2 = string_features("image resolution", "camera resolution");
        assert_eq!(f1, f2);
        assert!(f1.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn identical_names_zero_string_features() {
        let f = string_features("iso", "iso");
        assert!(f.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn assemble_layout() {
        let pf_a = vec![1.0, 2.0, 3.0];
        let pf_b = vec![1.0, 0.0, 3.0];
        let v = assemble(&pf_a, &pf_b, "mp", "megapixels");
        assert_eq!(v.len(), 3 + STRING_FEATURES);
        assert_eq!(&v[..3], &[0.0, 2.0, 0.0]);
        // String block present and non-zero for different names.
        assert!(v[3..].iter().any(|&x| x > 0.0));
    }

    #[test]
    fn assemble_symmetric_in_pair_order() {
        let pf_a = vec![0.2, 0.9];
        let pf_b = vec![0.4, 0.1];
        let ab = assemble(&pf_a, &pf_b, "zoom", "optical zoom");
        let ba = assemble(&pf_b, &pf_a, "optical zoom", "zoom");
        assert_eq!(ab, ba);
    }
}
