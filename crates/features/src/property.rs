//! Property-level features (paper Table I rows 5–6).
//!
//! Per property: the component-wise average of its instance feature
//! vectors (row 5; `29 + D` components) concatenated with the average
//! embedding of the words in the property *name* (row 6; `D` components):
//! `29 + 2D` total (`629` at the paper's `D = 300`).

use crate::instance;
use crate::scratch::FeatureScratch;
use leapme_embedding::kernels;
use leapme_embedding::store::EmbeddingStore;

/// Total property-feature length for embedding dimension `dim`.
pub fn len(dim: usize) -> usize {
    instance::len(dim) + dim
}

/// Offset of the instance-average block (always 0; for symmetry).
pub const INSTANCE_AVG_OFFSET: usize = 0;

/// Offset where the name-embedding block starts, for dimension `dim`.
pub fn name_embedding_offset(dim: usize) -> usize {
    instance::len(dim)
}

/// Build the property feature vector from the property name and its
/// already-extracted instance feature vectors.
///
/// A property with no instances gets zeros for the instance-average block
/// (its name features still carry signal), mirroring the paper's ability
/// to run on name features alone.
///
/// # Panics
///
/// Panics if instance vectors have inconsistent lengths.
pub fn aggregate(
    name: &str,
    instance_vectors: &[Vec<f32>],
    embeddings: &EmbeddingStore,
) -> Vec<f32> {
    let ilen = instance::len(embeddings.dim());
    let mut out = vec![0.0f32; ilen];
    if !instance_vectors.is_empty() {
        for v in instance_vectors {
            assert_eq!(v.len(), ilen, "inconsistent instance vector length");
            for (o, &x) in out.iter_mut().zip(v) {
                *o += x;
            }
        }
        let n = instance_vectors.len() as f32;
        for o in &mut out {
            *o /= n;
        }
    }
    out.extend(embeddings.average_text(name));
    out
}

/// Convenience: extract instance features for all values and aggregate.
pub fn from_values(name: &str, values: &[&str], embeddings: &EmbeddingStore) -> Vec<f32> {
    let vectors: Vec<Vec<f32>> = values
        .iter()
        .map(|v| instance::extract(v, embeddings))
        .collect();
    aggregate(name, &vectors, embeddings)
}

/// Fused zero-allocation property extraction: stream each value through
/// [`instance::extract_into`] into the scratch buffer and accumulate the
/// running sum directly in `out`, then divide and append the name
/// embedding — no per-value `Vec`, no intermediate vector-of-vectors.
///
/// Bitwise identical to extract-all-then-[`aggregate`]: same value
/// order, same elementwise sum-then-divide, same name-embedding path
/// (proven by the oracle tests and the vectorizer's thread-sweep and
/// proptest suites).
///
/// # Panics
///
/// Panics if `out.len() != len(embeddings.dim())`.
pub fn aggregate_values_into<'a>(
    name: &str,
    values: impl Iterator<Item = &'a str>,
    embeddings: &EmbeddingStore,
    scratch: &mut FeatureScratch,
    out: &mut [f32],
) {
    let dim = embeddings.dim();
    let ilen = instance::len(dim);
    assert_eq!(out.len(), len(dim), "property vector length mismatch");
    let (avg_block, name_block) = out.split_at_mut(ilen);
    avg_block.fill(0.0);
    let mut n = 0usize;
    let buf = scratch.instance_buf(ilen);
    for value in values {
        n += 1;
        instance::extract_into(value, embeddings, buf);
        kernels::add_assign(avg_block, buf);
    }
    if n > 0 {
        kernels::div_assign(avg_block, n as f32);
    }
    embeddings.average_text_into(name, name_block);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> EmbeddingStore {
        let mut s = EmbeddingStore::new(2);
        s.insert("resolution", vec![1.0, 0.0]).unwrap();
        s.insert("mp", vec![0.8, 0.2]).unwrap();
        s
    }

    #[test]
    fn paper_feature_counts() {
        // Table I row 5 (329) + row 6 (300) = 629 at D = 300.
        assert_eq!(len(300), 629);
        assert_eq!(name_embedding_offset(300), 329);
    }

    #[test]
    fn averages_instance_vectors() {
        let s = store();
        let v = from_values("resolution", &["10", "20"], &s);
        // numeric feature (index 28) should be the mean of 10 and 20.
        assert_eq!(v[instance::EMBEDDING_OFFSET - 1], 15.0);
    }

    #[test]
    fn name_embedding_appended() {
        let s = store();
        let v = from_values("resolution", &["10"], &s);
        let off = name_embedding_offset(2);
        assert_eq!(&v[off..], &[1.0, 0.0]);
    }

    #[test]
    fn no_instances_zeroes_instance_block() {
        let s = store();
        let v = from_values("mp", &[], &s);
        let off = name_embedding_offset(2);
        assert!(v[..off].iter().all(|&x| x == 0.0));
        assert_eq!(&v[off..], &[0.8, 0.2]);
    }

    #[test]
    fn multiword_name_averaged_with_oov() {
        let s = store();
        // "mp count": count is OOV → averaged with zero vector.
        let v = from_values("mp count", &[], &s);
        let off = name_embedding_offset(2);
        assert_eq!(&v[off..], &[0.4, 0.1]);
    }

    #[test]
    #[should_panic(expected = "inconsistent instance vector length")]
    fn rejects_ragged_instance_vectors() {
        let s = store();
        aggregate("x", &[vec![0.0; 3]], &s);
    }

    #[test]
    fn fused_aggregation_matches_reference_bitwise() {
        let s = store();
        let cases: &[(&str, &[&str])] = &[
            ("resolution", &["10", "20", "20.1 MP"]),
            ("mp count", &[]),
            ("résolution", &["café", "1,299.99"]),
            ("x", &["", "   ", "!!!"]),
        ];
        for (name, values) in cases {
            let reference = from_values(name, values, &s);
            let mut fused = vec![5.0f32; len(s.dim())];
            let mut scratch = FeatureScratch::new();
            aggregate_values_into(name, values.iter().copied(), &s, &mut scratch, &mut fused);
            assert_eq!(
                fused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "property {name:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "property vector length mismatch")]
    fn fused_aggregation_rejects_wrong_length() {
        let s = store();
        let mut out = vec![0.0f32; 3];
        aggregate_values_into("x", std::iter::empty(), &s, &mut FeatureScratch::new(), &mut out);
    }
}
