//! Thread-local scratch buffers for the fused featurize path.
//!
//! The fused property extractor ([`crate::property::aggregate_values_into`])
//! needs one instance-vector-sized buffer per in-flight extraction. Rather
//! than threading a workspace parameter through every caller (the feature
//! build runs on scoped worker threads with plain closures), each thread
//! borrows a [`FeatureScratch`] via [`with_scratch`] and hands it back when
//! done. The buffer lives as long as the thread, so steady-state featurize
//! calls perform no allocations at all (see the alloc-count regression
//! tests in the workspace root).

use std::cell::Cell;

/// Reusable per-thread buffers for feature extraction.
///
/// Obtained through [`with_scratch`]; the struct is public so tests and
/// benchmarks can also drive the fused extractors with a local instance.
#[derive(Debug, Default)]
pub struct FeatureScratch {
    /// Instance-vector accumulation buffer (`instance::len(dim)` floats).
    instance: Vec<f32>,
}

impl FeatureScratch {
    /// A scratch with empty buffers; they grow on first use and are then
    /// reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// The instance buffer, resized (zero-filled) to exactly `len`.
    ///
    /// Contents are unspecified on entry — callers overwrite the whole
    /// slice.
    pub fn instance_buf(&mut self, len: usize) -> &mut [f32] {
        self.instance.resize(len, 0.0);
        &mut self.instance[..len]
    }
}

thread_local! {
    /// Per-thread scratch, handed out via take/put (`Cell`, not
    /// `RefCell`) so a re-entrant [`with_scratch`] call gets a fresh
    /// scratch instead of panicking.
    static SCRATCH: Cell<Option<FeatureScratch>> = const { Cell::new(None) };
}

/// Run `f` with this thread's [`FeatureScratch`].
///
/// The scratch (and its grown buffers) is returned to thread-local
/// storage afterwards, so repeated calls on the same thread reuse the
/// same allocations.
pub fn with_scratch<R>(f: impl FnOnce(&mut FeatureScratch) -> R) -> R {
    let mut scratch = SCRATCH.take().unwrap_or_default();
    let result = f(&mut scratch);
    SCRATCH.set(Some(scratch));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_resizes_and_is_reused() {
        with_scratch(|s| {
            let buf = s.instance_buf(8);
            assert_eq!(buf.len(), 8);
            buf[0] = 1.0;
        });
        with_scratch(|s| {
            // Same thread → same underlying buffer (contents unspecified
            // but capacity retained); shrinking works too.
            assert_eq!(s.instance_buf(3).len(), 3);
        });
    }

    #[test]
    fn reentrant_calls_do_not_panic() {
        with_scratch(|outer| {
            outer.instance_buf(4)[0] = 1.0;
            with_scratch(|inner| {
                inner.instance_buf(4)[0] = 2.0;
            });
            assert_eq!(outer.instance_buf(4).len(), 4);
        });
    }
}
