//! Token-type features (paper Table I row 2).
//!
//! For each of five token categories — words, words starting with a
//! lowercase letter, words starting with an uppercase letter followed by a
//! non-separator character, uppercase words, numeric strings — the
//! extractor produces the count and the fraction of the value's
//! whitespace-separated tokens: 10 features.

/// Number of token categories.
pub const CATEGORIES: usize = 5;

/// Number of features produced ([`CATEGORIES`] × {count, fraction}).
pub const LEN: usize = CATEGORIES * 2;

/// Category names, index-aligned with the output layout.
pub const NAMES: [&str; CATEGORIES] = [
    "words",
    "lowercase_words",
    "capitalized_words",
    "uppercase_words",
    "numeric_strings",
];

fn is_word(t: &str) -> bool {
    !t.is_empty() && t.chars().all(char::is_alphabetic)
}

fn starts_lowercase(t: &str) -> bool {
    t.chars().next().is_some_and(char::is_lowercase)
}

fn is_capitalized(t: &str) -> bool {
    let mut cs = t.chars();
    match (cs.next(), cs.next()) {
        (Some(first), Some(second)) => {
            first.is_uppercase() && !second.is_whitespace() && !second.is_uppercase()
        }
        _ => false,
    }
}

fn is_uppercase_word(t: &str) -> bool {
    is_word(t) && t.chars().all(char::is_uppercase)
}

fn is_numeric_string(t: &str) -> bool {
    !t.is_empty() && t.chars().all(|c| c.is_numeric() || c == '.' || c == ',')
        && t.chars().any(char::is_numeric)
}

/// Extract the 10 token-type features of `text`.
///
/// Layout: `[count_0, …, count_4, fraction_0, …, fraction_4]` in
/// [`NAMES`] order. Fractions are relative to the total token count; a
/// string with no tokens yields all zeros. Categories overlap (a
/// lowercase word is also a word), matching TAPON's feature definitions.
pub fn extract(text: &str) -> [f32; LEN] {
    let mut counts = [0f32; CATEGORIES];
    let mut total = 0usize;
    for t in text.split_whitespace() {
        total += 1;
        if is_word(t) {
            counts[0] += 1.0;
        }
        if starts_lowercase(t) {
            counts[1] += 1.0;
        }
        if is_capitalized(t) {
            counts[2] += 1.0;
        }
        if is_uppercase_word(t) {
            counts[3] += 1.0;
        }
        if is_numeric_string(t) {
            counts[4] += 1.0;
        }
    }
    let mut out = [0f32; LEN];
    out[..CATEGORIES].copy_from_slice(&counts);
    if total > 0 {
        let t = total as f32;
        for i in 0..CATEGORIES {
            out[CATEGORIES + i] = counts[i] / t;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn count(text: &str, name: &str) -> f32 {
        let idx = NAMES.iter().position(|n| *n == name).unwrap();
        extract(text)[idx]
    }

    #[test]
    fn empty_all_zero() {
        assert_eq!(extract(""), [0.0; LEN]);
        assert_eq!(extract("   "), [0.0; LEN]);
    }

    #[test]
    fn classifies_typical_value() {
        let v = "Canon EOS 5000 digital camera";
        assert_eq!(count(v, "words"), 4.0); // Canon EOS digital camera
        assert_eq!(count(v, "lowercase_words"), 2.0); // digital camera
        assert_eq!(count(v, "capitalized_words"), 1.0); // Canon
        assert_eq!(count(v, "uppercase_words"), 1.0); // EOS
        assert_eq!(count(v, "numeric_strings"), 1.0); // 5000
    }

    #[test]
    fn numeric_strings_allow_decimal_marks() {
        assert_eq!(count("20.1", "numeric_strings"), 1.0);
        assert_eq!(count("1,000", "numeric_strings"), 1.0);
        assert_eq!(count("...", "numeric_strings"), 0.0);
        assert_eq!(count("20mm", "numeric_strings"), 0.0);
    }

    #[test]
    fn capitalized_needs_following_char() {
        assert_eq!(count("A", "capitalized_words"), 0.0);
        assert_eq!(count("Ab", "capitalized_words"), 1.0);
        assert_eq!(count("AB", "capitalized_words"), 0.0); // second is uppercase
    }

    #[test]
    fn mixed_alphanumeric_not_word() {
        assert_eq!(count("d750", "words"), 0.0);
        assert_eq!(count("d750", "lowercase_words"), 1.0); // starts lowercase
    }

    #[test]
    fn fractions_relative_to_tokens() {
        let f = extract("one TWO 3");
        // 3 tokens; words = 2.
        assert!((f[CATEGORIES] - 2.0 / 3.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn bounded(s in ".{0,40}") {
            let f = extract(&s);
            let n = s.split_whitespace().count() as f32;
            for i in 0..CATEGORIES {
                prop_assert!(f[i] <= n);
                prop_assert!((0.0..=1.0).contains(&f[CATEGORIES + i]));
            }
        }
    }
}
