//! End-to-end feature vectorization of a dataset.
//!
//! [`PropertyFeatureStore::build`] runs steps 1–3 of Algorithm 1 once per
//! dataset: it extracts instance features for every property instance,
//! aggregates them into property feature vectors, and caches everything.
//! [`PropertyFeatureStore::pair_vector`] then produces the pair features
//! (step 4) for any candidate pair under any [`FeatureConfig`] — the
//! expensive property-level work is shared across the paper's nine
//! configurations, 25 repetitions, and two training fractions.
//!
//! # Concurrency and determinism
//!
//! Property extraction is embarrassingly parallel (one unit per
//! property), so [`PropertyFeatureStore::build`] fans it out across
//! worker threads; each property's vector is computed by exactly one
//! thread with the same arithmetic as the serial path, so the store
//! contents are bitwise identical for every thread count. The same holds
//! for [`PropertyFeatureStore::pair_matrix_flat`], which partitions pairs
//! into disjoint row ranges of one contiguous output buffer.
//!
//! String distances only depend on the property *names*, which repeat
//! heavily across sources. Names are interned to dense `u32` ids at
//! build time, and memoized distances live in sharded reader–writer maps
//! keyed by `(u32, u32)` — a cache hit costs one shard read-lock and
//! zero allocations.

use crate::config::FeatureConfig;
use crate::{instance, pair, property};
use leapme_data::model::{Dataset, PropertyKey, PropertyPair};
use leapme_embedding::kernels;
use leapme_embedding::store::EmbeddingStore;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Largest absolute value a feature may carry out of the vectorizer.
///
/// The unbounded `numeric_value` instance feature is the only natural
/// escape hatch for huge magnitudes; everything else is a count, a
/// fraction, an embedding component, or a normalized distance. Clamping
/// here keeps one absurd instance value (`"1e308"`) from dominating the
/// z-score statistics of the whole column.
pub const MAX_ABS_FEATURE: f32 = 1e6;

/// Counters from the numeric-hygiene pass applied to every property
/// vector at build time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SanitizeStats {
    /// Components that were `NaN`/`±Inf` and were reset to `0.0`.
    pub nonfinite: u64,
    /// Finite components clamped to ±[`MAX_ABS_FEATURE`].
    pub clamped: u64,
}

impl SanitizeStats {
    /// Whether the pass changed nothing.
    pub fn is_clean(&self) -> bool {
        self.nonfinite == 0 && self.clamped == 0
    }
}

/// Replace non-finite components with `0.0` and clamp the rest to
/// ±[`MAX_ABS_FEATURE`], counting every repair.
fn sanitize_vec(v: &mut [f32], stats: &mut SanitizeStats) {
    for x in v {
        if !x.is_finite() {
            *x = 0.0;
            stats.nonfinite += 1;
        } else if x.abs() > MAX_ABS_FEATURE {
            *x = x.signum() * MAX_ABS_FEATURE;
            stats.clamped += 1;
        }
    }
}

/// Which properties lost their embedding signal — the per-run degraded-mode
/// report (DESIGN.md §8).
///
/// A property is *degraded* when every embedding-derived component of its
/// feature vector (instance-embedding average and name embedding) is zero:
/// no token of its name or values resolved to a vector. Such properties
/// are still scored — the 29 non-embedding instance features and the
/// string distances carry the pair — matching the paper's
/// instance-only/non-embedding ablations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Properties with no embedding signal, sorted.
    pub degraded: Vec<PropertyKey>,
    /// Total number of properties in the store.
    pub total: usize,
}

impl DegradationReport {
    /// Fraction of properties that are degraded (`0.0` for an empty store).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.degraded.len() as f64 / self.total as f64
        }
    }

    /// Whether every property has embedding signal.
    pub fn is_clean(&self) -> bool {
        self.degraded.is_empty()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}/{} properties degraded to non-embedding features ({:.0}%)",
            self.degraded.len(),
            self.total,
            self.fraction() * 100.0
        )
    }
}

/// Render a panic payload as a human-readable message (used for
/// [`FeatureError::WorkerPanic`] and reused by downstream crates that
/// isolate their own workers).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".into())
}

/// Number of shards in the string-distance cache. Shard choice only
/// affects contention, never results.
const CACHE_SHARDS: usize = 16;

/// Minimum number of work items (properties or pairs) per worker thread;
/// below this, fan-out overhead outweighs the parallelism.
const MIN_ITEMS_PER_THREAD: usize = 16;

/// Worker count for the parallel paths: `LEAPME_THREADS` overrides
/// `available_parallelism` (same policy as `leapme_nn::threads`,
/// duplicated here to keep the crates' dependency graphs disjoint).
/// Re-read on every call so benchmarks can flip modes at runtime.
pub fn worker_threads() -> usize {
    if let Ok(v) = std::env::var("LEAPME_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Cooperative-cancellation callback type: the long-running build/fill
/// entry points poll it between work blocks and bail out with
/// [`FeatureError::Cancelled`] when it returns `true`. Plain closures
/// keep this crate independent of `leapme-core`'s `CancelToken` (which
/// hands its checker down through this type).
pub type CancelCheck<'a> = Option<&'a (dyn Fn() -> bool + Sync)>;

#[inline]
fn is_cancelled(cancel: CancelCheck<'_>) -> bool {
    cancel.is_some_and(|c| c())
}

/// How many rows/properties are processed between cancellation polls in
/// the cancellable entry points.
const CANCEL_BLOCK: usize = 4096;

/// Split `items` into at most `threads` contiguous `(start, end)` chunks.
fn partition(items: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.max(1).min(items.max(1));
    let base = items / threads;
    let extra = items % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < extra);
        if len == 0 {
            break;
        }
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Borrowed access to a pair's two [`PropertyKey`]s, letting the fill
/// APIs accept `(PropertyKey, PropertyKey)` tuples and [`PropertyPair`]s
/// alike without cloning keys into a common representation.
pub trait PairKeys: Sync {
    /// The two property keys of the pair.
    fn pair_keys(&self) -> (&PropertyKey, &PropertyKey);
}

impl PairKeys for (PropertyKey, PropertyKey) {
    fn pair_keys(&self) -> (&PropertyKey, &PropertyKey) {
        (&self.0, &self.1)
    }
}

impl PairKeys for PropertyPair {
    fn pair_keys(&self) -> (&PropertyKey, &PropertyKey) {
        (&self.0, &self.1)
    }
}

/// One shard of the string-distance memo table.
type CacheShard = RwLock<HashMap<(u32, u32), [f32; pair::STRING_FEATURES]>>;

/// Sharded `(name id, name id) → string distances` memo table.
struct StringCache {
    shards: Vec<CacheShard>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl StringCache {
    fn new() -> Self {
        StringCache {
            shards: (0..CACHE_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_of(key: (u32, u32)) -> usize {
        // Cheap mix; ids are dense, so spreading the low bits suffices.
        let h = (key.0 as u64).wrapping_mul(0x9E37_79B9).wrapping_add(key.1 as u64);
        (h as usize) % CACHE_SHARDS
    }

    fn get_or_compute(
        &self,
        id_a: u32,
        id_b: u32,
        norm_a: &str,
        norm_b: &str,
    ) -> [f32; pair::STRING_FEATURES] {
        let key = if id_a <= id_b { (id_a, id_b) } else { (id_b, id_a) };
        let shard = &self.shards[Self::shard_of(key)];
        if let Some(v) = shard.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *v;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Compute outside any lock; distances are symmetric, so the
        // argument order does not matter and concurrent duplicate
        // computations insert the same value. The caller hands over the
        // build-time normalized forms, so the miss path skips the
        // per-call tokenize-and-join of both names.
        let v = pair::string_features_prenormalized(norm_a, norm_b);
        shard.write().insert(key, v);
        v
    }
}

/// Upper bound on run-level pair-table entries. Above this the dense
/// table would cost more memory than the run saves, so
/// [`PropertyFeatureStore::ensure_pair_table`] declines to build it and
/// lookups stay on the sharded [`StringCache`].
const PAIR_TABLE_MAX_ENTRIES: usize = 2_000_000;

/// Run-level dense memo of string-distance features over *canonical
/// normalized name forms*: every unique normalized pair is scored exactly
/// once per run, after which each lookup is one lock-free, hash-free
/// triangular-index read. Names that normalize to the same form (e.g.
/// `"Shutter-Speed"` and `"shutter speed"`) share a canonical id, so
/// cross-block duplicates collapse before any distance kernel runs.
struct PairTable {
    /// Name id → canonical normalized-form id.
    canon: Vec<u32>,
    /// Number of canonical forms.
    n: usize,
    /// Upper-triangular (diagonal included) feature table over canonical
    /// form pairs, `n · (n + 1) / 2` entries long.
    features: Vec<[f32; pair::STRING_FEATURES]>,
}

impl PairTable {
    /// Flat index of the canonical pair `(i, j)` with `i ≤ j < n` in the
    /// row-major upper triangle.
    #[inline]
    fn tri(&self, i: usize, j: usize) -> usize {
        debug_assert!(i <= j && j < self.n);
        // Row i starts after rows 0..i of lengths n, n−1, …: written in
        // the underflow-free product form (one factor is always even).
        i * (2 * self.n - i + 1) / 2 + (j - i)
    }

    /// The memoized features for the pair of interned name ids.
    #[inline]
    fn get(&self, ia: u32, ib: u32) -> [f32; pair::STRING_FEATURES] {
        let ci = self.canon[ia as usize] as usize;
        let cj = self.canon[ib as usize] as usize;
        let (i, j) = if ci <= cj { (ci, cj) } else { (cj, ci) };
        self.features[self.tri(i, j)]
    }
}

/// Score the canonical-form pairs of rows `row_start..row_end` into
/// `out` (which must hold exactly those rows' triangle entries). The
/// per-row inner loop covers `j ∈ [i, n)`, matching [`PairTable::tri`]'s
/// layout; distances go through the same prenormalized kernel as the
/// sharded cache, so table entries are bitwise identical to cache
/// entries.
fn fill_pair_table_rows(
    forms: &[&str],
    row_start: usize,
    row_end: usize,
    out: &mut [[f32; pair::STRING_FEATURES]],
) {
    let n = forms.len();
    let mut k = 0usize;
    for i in row_start..row_end {
        for j in i..n {
            out[k] = pair::string_features_prenormalized(forms[i], forms[j]);
            k += 1;
        }
    }
    debug_assert_eq!(k, out.len(), "triangle row range / buffer mismatch");
}

/// Backing storage for the per-property feature vectors: either an
/// owned map of `Vec<f32>` rows (the build path and the legacy v1
/// cache codec) or an index into one shared contiguous row slab (the
/// zero-copy v2 feature-cache path, where the slab is a view over a
/// memory-mapped container section).
enum Rows {
    Owned(HashMap<PropertyKey, Vec<f32>>),
    Slab {
        /// Key → row index, built on first keyed access. The eager
        /// constructor ([`PropertyFeatureStore::from_slab`]) fills it up
        /// front; the deferred one
        /// ([`PropertyFeatureStore::from_slab_deferred`]) leaves it to
        /// `decode_keys`, so a zero-copy cache open allocates nothing
        /// per property.
        index: OnceLock<HashMap<PropertyKey, u32>>,
        /// Produces row `i`'s key for the deferred path; `None` once the
        /// index was built eagerly. Must yield exactly `rows` distinct
        /// keys — the cache loader validates the raw key table before
        /// constructing the store.
        decode_keys: Option<Box<dyn Fn() -> Vec<PropertyKey> + Send + Sync>>,
        slab: Arc<dyn AsRef<[f32]> + Send + Sync>,
        row_len: usize,
        /// Row count, known from the slab extent without the index.
        rows: usize,
    },
}

impl Rows {
    /// The slab's key → row map, decoding the key table on first use.
    fn slab_index<'a>(
        index: &'a OnceLock<HashMap<PropertyKey, u32>>,
        decode_keys: &Option<Box<dyn Fn() -> Vec<PropertyKey> + Send + Sync>>,
        rows: usize,
    ) -> &'a HashMap<PropertyKey, u32> {
        index.get_or_init(|| {
            let keys = decode_keys
                .as_ref()
                .expect("slab index unset without a key decoder")();
            debug_assert_eq!(keys.len(), rows, "key decoder row-count contract");
            keys.into_iter()
                .enumerate()
                .map(|(i, k)| (k, i as u32))
                .collect()
        })
    }

    fn get(&self, key: &PropertyKey) -> Option<&[f32]> {
        match self {
            Rows::Owned(map) => map.get(key).map(Vec::as_slice),
            Rows::Slab {
                index,
                decode_keys,
                slab,
                row_len,
                rows,
            } => Self::slab_index(index, decode_keys, *rows)
                .get(key)
                .map(|&i| {
                    let start = i as usize * row_len;
                    &slab.as_ref().as_ref()[start..start + row_len]
                }),
        }
    }

    fn contains_key(&self, key: &PropertyKey) -> bool {
        match self {
            Rows::Owned(map) => map.contains_key(key),
            Rows::Slab {
                index,
                decode_keys,
                rows,
                ..
            } => Self::slab_index(index, decode_keys, *rows).contains_key(key),
        }
    }

    fn len(&self) -> usize {
        match self {
            Rows::Owned(map) => map.len(),
            Rows::Slab { rows, .. } => *rows,
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn iter(&self) -> Box<dyn Iterator<Item = (&PropertyKey, &[f32])> + '_> {
        match self {
            Rows::Owned(map) => Box::new(map.iter().map(|(k, v)| (k, v.as_slice()))),
            Rows::Slab {
                index,
                decode_keys,
                slab,
                row_len,
                rows,
            } => {
                let table = Self::slab_index(index, decode_keys, *rows);
                let data = slab.as_ref().as_ref();
                let row_len = *row_len;
                Box::new(table.iter().map(move |(k, &i)| {
                    let start = i as usize * row_len;
                    (k, &data[start..start + row_len])
                }))
            }
        }
    }
}

/// Precomputed property feature vectors for one dataset, plus an
/// interned-name memo table for name string distances.
pub struct PropertyFeatureStore {
    dim: usize,
    features: Rows,
    /// Interned-name table, derived lazily on first string-feature use:
    /// a zero-copy cache open must cost O(section table), not
    /// O(properties) of sorting, normalizing, and re-hashing names.
    /// Derivation is deterministic, so eager (build) and lazy (load)
    /// stores agree bitwise.
    names: OnceLock<NameTable>,
    string_cache: StringCache,
    /// Run-level dense pair table, built at most once per store by
    /// [`Self::ensure_pair_table`]. Unset until some caller's expected
    /// pair volume clears the size gate; until then lookups stay on
    /// `string_cache`.
    pair_table: OnceLock<PairTable>,
    /// Lookups served by the dense pair table.
    table_hits: AtomicU64,
    /// Repairs made by the build-time numeric-hygiene pass.
    sanitize: SanitizeStats,
    /// Properties with no embedding signal (degraded mode). Lazy for
    /// the same reason as `names`: the detection scan reads every row.
    degradation: OnceLock<DegradationReport>,
}

/// The interned property-name table: distinct names in sorted order →
/// dense id, plus each name's [`pair::normalize_name`] form so
/// string-cache misses skip re-tokenizing.
struct NameTable {
    /// Distinct property names → dense id.
    name_ids: HashMap<String, u32>,
    /// Normalized form of each interned name, indexed by id.
    normalized_names: Vec<String>,
}

impl PropertyFeatureStore {
    /// Extract and cache property features for every property of
    /// `dataset` (Algorithm 1 lines 2–6), fanning the per-property work
    /// out across [`worker_threads`] threads.
    ///
    /// # Panics
    ///
    /// Panics if a feature worker panics twice (parallel run plus the
    /// serial requeue); use [`Self::try_build`] to handle that as an
    /// error instead.
    pub fn build(dataset: &Dataset, embeddings: &EmbeddingStore) -> Self {
        Self::try_build(dataset, embeddings).expect("feature build failed")
    }

    /// [`Self::build`] with an explicit worker-thread count. The result
    /// is bitwise identical for every `threads` value.
    pub fn build_with_threads(
        dataset: &Dataset,
        embeddings: &EmbeddingStore,
        threads: usize,
    ) -> Self {
        Self::try_build_with_threads(dataset, embeddings, threads).expect("feature build failed")
    }

    /// Fallible [`Self::build`]: a worker panic is retried serially and,
    /// if it repeats, surfaces as [`FeatureError::WorkerPanic`].
    pub fn try_build(
        dataset: &Dataset,
        embeddings: &EmbeddingStore,
    ) -> Result<Self, FeatureError> {
        Self::try_build_with_threads(dataset, embeddings, worker_threads())
    }

    /// [`Self::try_build`] with an explicit worker-thread count. The
    /// result is bitwise identical for every `threads` value.
    pub fn try_build_with_threads(
        dataset: &Dataset,
        embeddings: &EmbeddingStore,
        threads: usize,
    ) -> Result<Self, FeatureError> {
        Self::try_build_cancellable(dataset, embeddings, threads, None)
    }

    /// [`Self::try_build_with_threads`] with cooperative cancellation:
    /// the build polls `cancel` between property blocks (serial path)
    /// and between fan-out rounds (parallel path), returning
    /// [`FeatureError::Cancelled`] once it fires. With `cancel: None`
    /// the output is identical to the other build entry points.
    pub fn try_build_cancellable(
        dataset: &Dataset,
        embeddings: &EmbeddingStore,
        threads: usize,
        cancel: CancelCheck<'_>,
    ) -> Result<Self, FeatureError> {
        if is_cancelled(cancel) {
            return Err(FeatureError::Cancelled);
        }
        let keys: Vec<PropertyKey> = dataset.properties();
        let plen = property::len(embeddings.dim());

        // Fused extraction: each property streams its values through the
        // thread-local scratch straight into its one output vector — no
        // per-value `Vec`, no vector-of-vectors (bitwise identical to the
        // extract-then-aggregate reference, see property.rs oracles).
        let extract_one = |key: &PropertyKey| -> Vec<f32> {
            let instances = dataset.instances_of(key);
            let mut pf = vec![0.0f32; plen];
            crate::scratch::with_scratch(|scratch| {
                property::aggregate_values_into(
                    &key.name,
                    instances.iter().map(|inst| inst.value.as_str()),
                    embeddings,
                    scratch,
                    &mut pf,
                );
            });
            pf
        };

        let mut features = HashMap::with_capacity(keys.len());
        if threads <= 1 || keys.len() < 2 * MIN_ITEMS_PER_THREAD {
            for (i, key) in keys.into_iter().enumerate() {
                if i % CANCEL_BLOCK == 0 && i > 0 && is_cancelled(cancel) {
                    return Err(FeatureError::Cancelled);
                }
                let pf = extract_one(&key);
                features.insert(key, pf);
            }
        } else {
            let chunks = partition(keys.len(), threads);
            // The chunk closure carries the fault hook so an injected
            // panic hits the serial requeue too (its #cap decides whether
            // the requeue recovers or surfaces `WorkerPanic`).
            let extract_chunk = |keys: &[PropertyKey]| {
                #[cfg(feature = "faults")]
                leapme_faults::maybe_panic(leapme_faults::sites::FEATURE_WORKER);
                keys.iter().map(&extract_one).collect::<Vec<Vec<f32>>>()
            };
            // One result slot per chunk; a panicked worker leaves `None`
            // and its range is requeued serially below, so a single bad
            // shard cannot take down the whole build.
            let mut results: Vec<Option<Vec<Vec<f32>>>> = Vec::new();
            results.resize_with(chunks.len(), || None);
            let mut failed: Vec<usize> = Vec::new();
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .iter()
                    .map(|&(start, end)| {
                        let keys = &keys[start..end];
                        let extract_chunk = &extract_chunk;
                        scope.spawn(move |_| extract_chunk(keys))
                    })
                    .collect();
                for (c, h) in handles.into_iter().enumerate() {
                    match h.join() {
                        Ok(v) => results[c] = Some(v),
                        Err(_) => failed.push(c),
                    }
                }
            })
            .expect("feature build scope");
            // Workers run one fan-out round to completion; poll between
            // the round and the serial requeue.
            if is_cancelled(cancel) {
                return Err(FeatureError::Cancelled);
            }
            for c in failed {
                let (start, end) = chunks[c];
                match std::panic::catch_unwind(AssertUnwindSafe(|| {
                    extract_chunk(&keys[start..end])
                })) {
                    Ok(v) => results[c] = Some(v),
                    Err(payload) => {
                        return Err(FeatureError::WorkerPanic {
                            site: "features.worker".into(),
                            message: panic_message(payload.as_ref()),
                        })
                    }
                }
            }
            for (key, pf) in keys.into_iter().zip(
                results
                    .into_iter()
                    .flat_map(|r| r.expect("every chunk resolved")),
            ) {
                features.insert(key, pf);
            }
        }

        // Numeric hygiene at the store boundary: whatever the extractors
        // produced, nothing non-finite or absurdly large escapes into
        // scaling and training.
        let mut sanitize = SanitizeStats::default();
        for v in features.values_mut() {
            sanitize_vec(v, &mut sanitize);
        }

        Ok(Self::from_parts(embeddings.dim(), features, sanitize))
    }

    /// Assemble a store from a complete (already sanitized) feature map —
    /// the shared tail of the build path and the feature-cache load path.
    /// Recomputes the degradation report and the interned name table from
    /// the map, so a cache round-trip reconstructs exactly the state a
    /// fresh build would produce (with an empty string-distance cache;
    /// distances are recomputed deterministically on demand).
    ///
    /// # Panics
    ///
    /// Panics if any vector's length differs from the property-feature
    /// length for `dim` (the cache codec validates lengths first).
    pub fn from_parts(
        dim: usize,
        features: HashMap<PropertyKey, Vec<f32>>,
        sanitize: SanitizeStats,
    ) -> Self {
        let plen = property::len(dim);
        for v in features.values() {
            assert_eq!(v.len(), plen, "property vector length mismatch");
        }
        Self::from_rows(dim, Rows::Owned(features), sanitize)
    }

    /// Build a store over one shared contiguous row slab: row `i` of
    /// `slab` (length `keys.len() × property::len(dim)`) is the property
    /// vector for `keys[i]`. The slab stays behind the `Arc`, so a
    /// memory-mapped v2 cache section is served without copying any row
    /// out; everything else (name interning, degradation detection,
    /// string-distance memoization) is identical to [`Self::from_parts`].
    pub fn from_slab(
        dim: usize,
        keys: Vec<PropertyKey>,
        slab: Arc<dyn AsRef<[f32]> + Send + Sync>,
        sanitize: SanitizeStats,
    ) -> Result<Self, FeatureError> {
        let row_len = property::len(dim);
        let floats = slab.as_ref().as_ref().len();
        if floats != keys.len() * row_len {
            return Err(FeatureError::MalformedSlab(format!(
                "slab holds {floats} floats, expected {} keys x {row_len}",
                keys.len()
            )));
        }
        if keys.len() > u32::MAX as usize {
            return Err(FeatureError::MalformedSlab(format!(
                "{} keys exceed the u32 row-index space",
                keys.len()
            )));
        }
        let rows = keys.len();
        let mut index = HashMap::with_capacity(rows);
        for (i, key) in keys.into_iter().enumerate() {
            match index.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    return Err(FeatureError::MalformedSlab(format!(
                        "duplicate property {} at row {i}",
                        e.key()
                    )));
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i as u32);
                }
            }
        }
        let built = OnceLock::new();
        let _ = built.set(index);
        Ok(Self::from_rows(
            dim,
            Rows::Slab {
                index: built,
                decode_keys: None,
                slab,
                row_len,
                rows,
            },
            sanitize,
        ))
    }

    /// [`Self::from_slab`] with the key table deferred: `decode_keys`
    /// runs on the first keyed access instead of at construction, so
    /// opening a zero-copy cache allocates nothing per property. The
    /// store's row count is pinned to `rows` up front (`len()` never
    /// forces the decode).
    ///
    /// Contract: `decode_keys` must be infallible and yield exactly
    /// `rows` distinct keys, row `i` of the slab belonging to key `i` —
    /// the v2 cache loader guarantees this by validating the raw key
    /// table (bounds, UTF-8, strict ordering) against the CRC-checked
    /// section before constructing the store.
    pub fn from_slab_deferred(
        dim: usize,
        rows: usize,
        decode_keys: Box<dyn Fn() -> Vec<PropertyKey> + Send + Sync>,
        slab: Arc<dyn AsRef<[f32]> + Send + Sync>,
        sanitize: SanitizeStats,
    ) -> Result<Self, FeatureError> {
        let row_len = property::len(dim);
        let floats = slab.as_ref().as_ref().len();
        if floats != rows * row_len {
            return Err(FeatureError::MalformedSlab(format!(
                "slab holds {floats} floats, expected {rows} keys x {row_len}"
            )));
        }
        if rows > u32::MAX as usize {
            return Err(FeatureError::MalformedSlab(format!(
                "{rows} keys exceed the u32 row-index space"
            )));
        }
        Ok(Self::from_rows(
            dim,
            Rows::Slab {
                index: OnceLock::new(),
                decode_keys: Some(decode_keys),
                slab,
                row_len,
                rows,
            },
            sanitize,
        ))
    }

    /// Shared tail of [`Self::from_parts`] / [`Self::from_slab`]: row
    /// lengths are already validated. The derived tables (degradation
    /// report, interned names) initialize lazily — both scan every row,
    /// and paying them at open would forfeit the zero-copy O(1) open.
    fn from_rows(dim: usize, features: Rows, sanitize: SanitizeStats) -> Self {
        PropertyFeatureStore {
            dim,
            features,
            names: OnceLock::new(),
            string_cache: StringCache::new(),
            pair_table: OnceLock::new(),
            table_hits: AtomicU64::new(0),
            sanitize,
            degradation: OnceLock::new(),
        }
    }

    /// The interned-name table, derived on first use. Names intern in
    /// sorted order so ids are reproducible across runs, thread counts,
    /// and eager-vs-lazy construction.
    fn names(&self) -> &NameTable {
        self.names.get_or_init(|| {
            let mut names: Vec<&str> = self.features.iter().map(|(k, _)| k.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            let normalized_names = names.iter().map(|n| pair::normalize_name(n)).collect();
            let name_ids = names
                .into_iter()
                .enumerate()
                .map(|(i, n)| (n.to_string(), i as u32))
                .collect();
            NameTable {
                name_ids,
                normalized_names,
            }
        })
    }

    /// Iterate over every `(property, feature vector)` entry in the map's
    /// (arbitrary) iteration order — the feature-cache serializer sorts
    /// keys itself for a deterministic byte stream.
    pub fn iter(&self) -> impl Iterator<Item = (&PropertyKey, &[f32])> {
        self.features.iter()
    }

    /// Repairs made by the build-time numeric-hygiene pass.
    pub fn sanitize_stats(&self) -> SanitizeStats {
        self.sanitize
    }

    /// The per-run degraded-mode report: which properties have no
    /// embedding signal and fall back to non-embedding features.
    /// Derived lazily (it scans every row's embedding columns) so a
    /// zero-copy open does not pay for it.
    pub fn degradation(&self) -> &DegradationReport {
        self.degradation.get_or_init(|| {
            let plen = property::len(self.dim);
            // Embedding-derived columns span [29, 29 + 2D) of the
            // property vector (instance-embedding average, then name
            // embedding). All-zero ⇒ the property will be scored from
            // non-embedding features alone.
            let emb_range = instance::EMBEDDING_OFFSET..plen;
            let mut degraded: Vec<PropertyKey> = self
                .features
                .iter()
                .filter(|(_, v)| v[emb_range.clone()].iter().all(|&x| x == 0.0))
                .map(|(k, _)| k.clone())
                .collect();
            degraded.sort();
            DegradationReport {
                degraded,
                total: self.features.len(),
            }
        })
    }

    /// Embedding dimensionality the store was built with.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of properties with cached features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Full pair-feature length (before configuration masking).
    pub fn full_pair_len(&self) -> usize {
        pair::len(self.dim)
    }

    /// The cached property feature vector, if the property exists.
    pub fn property_vector(&self, key: &PropertyKey) -> Option<&[f32]> {
        self.features.get(key)
    }

    /// `(hits, misses)` of the string-distance cache, for tests and
    /// instrumentation.
    pub fn string_cache_stats(&self) -> (u64, u64) {
        (
            self.string_cache.hits.load(Ordering::Relaxed),
            self.string_cache.misses.load(Ordering::Relaxed),
        )
    }

    /// `(canonical forms, table entries, lookups served)` of the dense
    /// pair table, or `None` while the table is unbuilt.
    pub fn pair_table_stats(&self) -> Option<(usize, usize, u64)> {
        let table = self.pair_table.get()?;
        Some((
            table.n,
            table.features.len(),
            self.table_hits.load(Ordering::Relaxed),
        ))
    }

    /// Build the run-level dense pair table (idempotent — at most one
    /// build per store), scoring every unique canonical normalized name
    /// pair exactly once up front so subsequent pair fills never touch a
    /// distance kernel or a cache lock.
    ///
    /// `expected_pairs` is the caller's pair volume; when the table
    /// would hold more than twice that many entries (or more than
    /// [`PAIR_TABLE_MAX_ENTRIES`]) the precompute cannot pay for itself
    /// and the call is a no-op — not a sticky skip, so a later caller
    /// with a larger volume (say, full scoring after a small training
    /// run) still builds it. Either way, downstream feature vectors are
    /// bitwise unchanged: table entries come from the same prenormalized
    /// kernel the cache miss path runs.
    pub fn ensure_pair_table(&self, expected_pairs: usize) {
        self.ensure_pair_table_with_threads(expected_pairs, worker_threads());
    }

    /// [`Self::ensure_pair_table`] with an explicit worker-thread count
    /// (the table fill is embarrassingly parallel over row ranges; the
    /// filled table is bitwise identical for every thread count).
    pub fn ensure_pair_table_with_threads(&self, expected_pairs: usize, threads: usize) {
        if self.pair_table.get().is_some() {
            return;
        }
        // Canonicalize: names whose normalized forms coincide share one
        // table row. Sorting keeps canonical ids reproducible.
        let mut forms: Vec<&str> = self
            .names()
            .normalized_names
            .iter()
            .map(String::as_str)
            .collect();
        forms.sort_unstable();
        forms.dedup();
        let n = forms.len();
        let entries = n * (n + 1) / 2;
        if entries == 0
            || entries > PAIR_TABLE_MAX_ENTRIES
            || entries > expected_pairs.saturating_mul(2)
        {
            return;
        }
        self.pair_table
            .get_or_init(|| self.build_pair_table(forms, threads));
    }

    fn build_pair_table(&self, forms: Vec<&str>, threads: usize) -> PairTable {
        let n = forms.len();
        let entries = n * (n + 1) / 2;
        let form_id: HashMap<&str, u32> = forms
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, i as u32))
            .collect();
        let canon: Vec<u32> = self
            .names()
            .normalized_names
            .iter()
            .map(|f| form_id[f.as_str()])
            .collect();

        let mut features = vec![[0.0f32; pair::STRING_FEATURES]; entries];
        let threads = threads.min(n.max(1));
        if threads <= 1 || entries < 2 * MIN_ITEMS_PER_THREAD {
            fill_pair_table_rows(&forms, 0, n, &mut features);
            return PairTable { canon, n, features };
        }

        // Entry-balanced row ranges: row i holds n − i entries, so equal
        // row counts would leave the first worker with most of the work.
        let target = entries.div_ceil(threads);
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(threads);
        let (mut start, mut acc) = (0usize, 0usize);
        for i in 0..n {
            acc += n - i;
            if acc >= target || i + 1 == n {
                ranges.push((start, i + 1));
                start = i + 1;
                acc = 0;
            }
        }
        let mut panicked = false;
        crossbeam::thread::scope(|scope| {
            let mut rest: &mut [[f32; pair::STRING_FEATURES]] = &mut features;
            let mut offset = 0usize;
            let mut handles = Vec::with_capacity(ranges.len());
            for &(r0, r1) in &ranges {
                let seg_len = {
                    let tri = |r: usize| r * (2 * n - r + 1) / 2;
                    tri(r1) - tri(r0)
                };
                let (head, tail) = rest.split_at_mut(seg_len);
                rest = tail;
                offset += seg_len;
                let forms = &forms;
                handles.push(scope.spawn(move |_| fill_pair_table_rows(forms, r0, r1, head)));
            }
            debug_assert_eq!(offset, entries);
            for h in handles {
                if h.join().is_err() {
                    panicked = true;
                }
            }
        })
        .expect("pair-table scope");
        if panicked {
            // A worker died mid-fill; its segment may be half-written.
            // Refill the whole triangle serially — the distance kernels
            // are pure, so the serial pass is the trusted fallback.
            fill_pair_table_rows(&forms, 0, n, &mut features);
        }
        PairTable { canon, n, features }
    }

    /// [`Self::ensure_pair_table`] gated on `config` actually selecting
    /// string-distance columns — configurations without them never
    /// consult the table, so the precompute would be pure waste.
    pub fn ensure_pair_table_for(&self, config: &FeatureConfig, expected_pairs: usize) {
        let prop_len = property::len(self.dim);
        let needs_strings = config
            .mask(self.dim)
            .last()
            .is_some_and(|&i| i >= prop_len);
        if needs_strings {
            self.ensure_pair_table(expected_pairs);
        }
    }

    fn string_features_cached(&self, a: &str, b: &str) -> [f32; pair::STRING_FEATURES] {
        let names = self.names();
        match (names.name_ids.get(a), names.name_ids.get(b)) {
            (Some(&ia), Some(&ib)) => {
                if let Some(table) = self.pair_table.get() {
                    self.table_hits.fetch_add(1, Ordering::Relaxed);
                    return table.get(ia, ib);
                }
                self.string_cache.get_or_compute(
                    ia,
                    ib,
                    &names.normalized_names[ia as usize],
                    &names.normalized_names[ib as usize],
                )
            }
            // Names outside the build-time set (possible only through
            // future API surface) are computed without memoization.
            _ => pair::string_features(a, b),
        }
    }

    /// The full (unmasked) pair feature vector for `(a, b)`
    /// (Algorithm 1 lines 7–8), or `None` if either property is unknown.
    pub fn full_pair_vector(&self, a: &PropertyKey, b: &PropertyKey) -> Option<Vec<f32>> {
        let pa = self.features.get(a)?;
        let pb = self.features.get(b)?;
        let prop_len = property::len(self.dim);
        let mut v = vec![0.0f32; self.full_pair_len()];
        pair::vector_difference_into(&mut v[..prop_len], pa, pb);
        v[prop_len..].copy_from_slice(&self.string_features_cached(&a.name, &b.name));
        Some(v)
    }

    /// The pair feature vector masked to `config`'s columns.
    pub fn pair_vector(
        &self,
        a: &PropertyKey,
        b: &PropertyKey,
        config: &FeatureConfig,
    ) -> Option<Vec<f32>> {
        let full = self.full_pair_vector(a, b)?;
        Some(config.project(&full, self.dim))
    }

    /// Pair vectors for a batch of pairs under one configuration, row per
    /// pair. Unknown properties yield an error naming the missing key.
    pub fn pair_matrix(
        &self,
        pairs: &[(PropertyKey, PropertyKey)],
        config: &FeatureConfig,
    ) -> Result<Vec<Vec<f32>>, FeatureError> {
        pairs
            .iter()
            .map(|(a, b)| {
                self.pair_vector(a, b, config).ok_or_else(|| {
                    let missing = if self.features.contains_key(a) { b } else { a };
                    FeatureError::UnknownProperty(missing.clone())
                })
            })
            .collect()
    }

    /// Pair vectors for a batch of pairs written directly into one
    /// contiguous row-major buffer (row per pair, `config`'s columns),
    /// skipping the per-pair `Vec` allocations and the intermediate full
    /// vector of [`Self::pair_matrix`]. The fill is partitioned over
    /// pair chunks across [`worker_threads`] threads; every element is
    /// computed by exactly one thread with serial-identical arithmetic,
    /// so the buffer is bitwise identical for every thread count.
    pub fn pair_matrix_flat(
        &self,
        pairs: &[(PropertyKey, PropertyKey)],
        config: &FeatureConfig,
    ) -> Result<FlatPairMatrix, FeatureError> {
        self.pair_matrix_flat_with_threads(pairs, config, worker_threads())
    }

    /// [`Self::pair_matrix_flat`] with an explicit worker-thread count.
    pub fn pair_matrix_flat_with_threads(
        &self,
        pairs: &[(PropertyKey, PropertyKey)],
        config: &FeatureConfig,
        threads: usize,
    ) -> Result<FlatPairMatrix, FeatureError> {
        self.pair_matrix_flat_cancellable(pairs, config, threads, None)
    }

    /// [`Self::pair_matrix_flat_with_threads`] with cooperative
    /// cancellation, polled every [`CANCEL_BLOCK`] pairs; returns
    /// [`FeatureError::Cancelled`] once the check fires. With
    /// `cancel: None` the output is bitwise identical to the other
    /// pair-matrix entry points.
    pub fn pair_matrix_flat_cancellable(
        &self,
        pairs: &[(PropertyKey, PropertyKey)],
        config: &FeatureConfig,
        threads: usize,
        cancel: CancelCheck<'_>,
    ) -> Result<FlatPairMatrix, FeatureError> {
        if is_cancelled(cancel) {
            return Err(FeatureError::Cancelled);
        }
        // The full pair count is known here (unlike the streaming
        // per-block fills), so this is where the global dedupe table can
        // be sized-gated and built once for the whole matrix.
        self.ensure_pair_table_for(config, pairs.len());
        let mask = config.mask(self.dim);
        let cols = mask.len();
        let mut data = vec![0.0f32; pairs.len() * cols];
        if cancel.is_none() {
            self.fill_pair_rows_threaded(pairs, &mask, &mut data, threads)?;
        } else {
            for (i, chunk) in pairs.chunks(CANCEL_BLOCK).enumerate() {
                if i > 0 && is_cancelled(cancel) {
                    return Err(FeatureError::Cancelled);
                }
                let seg = &mut data[i * CANCEL_BLOCK * cols..][..chunk.len() * cols];
                self.fill_pair_rows_threaded(chunk, &mask, seg, threads)?;
            }
        }
        Ok(FlatPairMatrix {
            rows: pairs.len(),
            cols,
            data,
        })
    }

    /// Fill `out` with the masked features of `pairs` — the streaming
    /// building block: the caller owns (and reuses) both the mask and
    /// the output buffer, so a steady-state block fill performs no
    /// allocations beyond string-cache misses. `mask` comes from
    /// [`FeatureConfig::mask`]. The fill is partitioned across
    /// [`worker_threads`] like [`Self::pair_matrix_flat`], with bitwise
    /// identical results at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != pairs.len() * mask.len()`.
    pub fn fill_pair_block<P: PairKeys>(
        &self,
        pairs: &[P],
        mask: &[usize],
        out: &mut [f32],
    ) -> Result<(), FeatureError> {
        assert_eq!(
            out.len(),
            pairs.len() * mask.len(),
            "output buffer size mismatch"
        );
        // Blocks under the fan-out threshold run serially no matter the
        // thread count, so skip resolving it: `worker_threads` consults
        // the environment and (via `available_parallelism`) the cgroup
        // files, which costs syscalls and a few allocations per call —
        // measurable on the streaming small-block path and pinned by the
        // root alloc-regression suite.
        if pairs.len() < 2 * MIN_ITEMS_PER_THREAD {
            return self.fill_pair_rows(pairs, mask, out);
        }
        self.fill_pair_rows_threaded(pairs, mask, out, worker_threads())
    }

    /// [`Self::fill_pair_block`] with a cancellation poll at entry —
    /// streaming callers hand fixed-size blocks in, so per-block entry
    /// polling already bounds the cancellation latency.
    pub fn fill_pair_block_cancellable<P: PairKeys>(
        &self,
        pairs: &[P],
        mask: &[usize],
        out: &mut [f32],
        cancel: CancelCheck<'_>,
    ) -> Result<(), FeatureError> {
        if is_cancelled(cancel) {
            return Err(FeatureError::Cancelled);
        }
        self.fill_pair_block(pairs, mask, out)
    }

    /// Partition `pairs` into contiguous row ranges of `out` and fill
    /// them on up to `threads` workers (serial under the fan-out
    /// threshold). Every element is computed by exactly one thread with
    /// serial-identical arithmetic.
    fn fill_pair_rows_threaded<P: PairKeys>(
        &self,
        pairs: &[P],
        mask: &[usize],
        out: &mut [f32],
        threads: usize,
    ) -> Result<(), FeatureError> {
        if threads <= 1 || pairs.len() < 2 * MIN_ITEMS_PER_THREAD {
            return self.fill_pair_rows(pairs, mask, out);
        }
        let cols = mask.len();
        let chunks = partition(pairs.len(), threads);
        // The chunk closure carries the fault hook so an injected panic
        // hits the serial requeue too (its #cap decides whether the
        // requeue recovers or surfaces `WorkerPanic`).
        let fill_chunk = |pairs: &[P], seg: &mut [f32]| {
            #[cfg(feature = "faults")]
            leapme_faults::maybe_panic(leapme_faults::sites::PAIR_WORKER);
            self.fill_pair_rows(pairs, mask, seg)
        };
        // One result slot per chunk; a panicked worker leaves `None` and
        // its row range is refilled serially after the scope ends (the
        // mutable borrows of `out` are released by then).
        let mut results: Vec<Option<Result<(), FeatureError>>> = vec![None; chunks.len()];
        let mut failed: Vec<usize> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let mut rest: &mut [f32] = &mut *out;
            let mut handles = Vec::with_capacity(chunks.len());
            for &(start, end) in &chunks {
                let (head, tail) = rest.split_at_mut((end - start) * cols);
                rest = tail;
                let pairs = &pairs[start..end];
                let fill_chunk = &fill_chunk;
                handles.push(scope.spawn(move |_| fill_chunk(pairs, head)));
            }
            for (c, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(r) => results[c] = Some(r),
                    Err(_) => failed.push(c),
                }
            }
        })
        .expect("pair-matrix scope");
        for c in failed {
            let (start, end) = chunks[c];
            let seg = &mut out[start * cols..end * cols];
            match std::panic::catch_unwind(AssertUnwindSafe(|| {
                fill_chunk(&pairs[start..end], seg)
            })) {
                Ok(r) => results[c] = Some(r),
                Err(payload) => {
                    return Err(FeatureError::WorkerPanic {
                        site: "features.pair.worker".into(),
                        message: panic_message(payload.as_ref()),
                    })
                }
            }
        }
        // Report the error of the earliest failing chunk so the
        // result matches what the serial path would return.
        for r in results {
            r.expect("every chunk resolved")?;
        }
        Ok(())
    }

    /// Write the masked pair features of `pairs` into `out` (row-major,
    /// `mask.len()` columns per row). Mask indices below the property
    /// vector length select `|pa[i] − pb[i]|` directly; the rest select
    /// string-distance components — no full vector is materialized.
    fn fill_pair_rows<P: PairKeys>(
        &self,
        pairs: &[P],
        mask: &[usize],
        out: &mut [f32],
    ) -> Result<(), FeatureError> {
        let cols = mask.len();
        let prop_len = property::len(self.dim);
        let needs_strings = mask.last().is_some_and(|&i| i >= prop_len);
        // Identity-prefix masks — notably the full configuration, which
        // is what training and scoring run — take the fused kernel path:
        // one contiguous |pa − pb| sweep per row instead of a per-index
        // gather. `sub_abs` computes the identical expression per
        // element, so the fast path is bitwise-equal to the gather (the
        // thread-sweep and proptest suites below cover both).
        if mask.iter().enumerate().all(|(i, &m)| i == m) {
            let n_prop = cols.min(prop_len);
            for (p, out_row) in pairs.iter().zip(out.chunks_mut(cols.max(1))) {
                let (a, b) = p.pair_keys();
                let (pa, pb) = match (self.features.get(a), self.features.get(b)) {
                    (Some(pa), Some(pb)) => (pa, pb),
                    (Some(_), None) => return Err(FeatureError::UnknownProperty(b.clone())),
                    _ => return Err(FeatureError::UnknownProperty(a.clone())),
                };
                kernels::sub_abs(&mut out_row[..n_prop], &pa[..n_prop], &pb[..n_prop]);
                if needs_strings {
                    let strings = self.string_features_cached(&a.name, &b.name);
                    out_row[n_prop..].copy_from_slice(&strings[..cols - n_prop]);
                }
            }
            return Ok(());
        }
        for (p, out_row) in pairs.iter().zip(out.chunks_mut(cols.max(1))) {
            let (a, b) = p.pair_keys();
            let (pa, pb) = match (self.features.get(a), self.features.get(b)) {
                (Some(pa), Some(pb)) => (pa, pb),
                (Some(_), None) => return Err(FeatureError::UnknownProperty(b.clone())),
                _ => return Err(FeatureError::UnknownProperty(a.clone())),
            };
            let strings = if needs_strings {
                self.string_features_cached(&a.name, &b.name)
            } else {
                [0.0; pair::STRING_FEATURES]
            };
            for (&i, o) in mask.iter().zip(out_row.iter_mut()) {
                *o = if i < prop_len {
                    (pa[i] - pb[i]).abs()
                } else {
                    strings[i - prop_len]
                };
            }
        }
        Ok(())
    }
}

/// A batch of pair feature vectors in one contiguous row-major buffer,
/// ready for `Matrix::from_vec(rows, cols, data)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatPairMatrix {
    /// Number of pairs (rows).
    pub rows: usize,
    /// Features per pair (columns).
    pub cols: usize,
    /// Row-major feature values, `rows × cols` long.
    pub data: Vec<f32>,
}

impl FlatPairMatrix {
    /// Decompose into `(rows, cols, data)`.
    pub fn into_parts(self) -> (usize, usize, Vec<f32>) {
        (self.rows, self.cols, self.data)
    }

    /// Immutable view of row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }
}

/// Errors produced by the vectorizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeatureError {
    /// A pair referenced a property the store has no features for.
    UnknownProperty(PropertyKey),
    /// A worker thread panicked in the parallel run *and* in the serial
    /// requeue of its shard.
    WorkerPanic {
        /// The worker pool where the panic surfaced (fault-site name).
        site: String,
        /// Rendered panic payload.
        message: String,
    },
    /// A cooperative cancellation check fired mid-build or mid-fill.
    Cancelled,
    /// A shared feature slab's shape disagrees with its key list (wrong
    /// float count or a duplicate property row).
    MalformedSlab(String),
}

impl std::fmt::Display for FeatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeatureError::UnknownProperty(p) => write!(f, "unknown property {p}"),
            FeatureError::WorkerPanic { site, message } => {
                write!(f, "worker panic at {site}: {message}")
            }
            FeatureError::Cancelled => write!(f, "feature work cancelled"),
            FeatureError::MalformedSlab(msg) => write!(f, "malformed feature slab: {msg}"),
        }
    }
}

impl std::error::Error for FeatureError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FeatureKind, FeatureScope};
    use leapme_data::model::{Instance, SourceId};
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn toy_dataset() -> Dataset {
        let mk = |source: u16, property: &str, entity: &str, value: &str| Instance {
            source: SourceId(source),
            property: property.into(),
            entity: entity.into(),
            value: value.into(),
        };
        let instances = vec![
            mk(0, "megapixels", "e1", "20.1 MP"),
            mk(0, "megapixels", "e2", "24 MP"),
            mk(1, "resolution", "x1", "18 megapixels"),
            mk(1, "weight", "x1", "450 g"),
        ];
        let mut alignment = BTreeMap::new();
        alignment.insert(
            PropertyKey::new(SourceId(0), "megapixels"),
            "resolution".to_string(),
        );
        alignment.insert(
            PropertyKey::new(SourceId(1), "resolution"),
            "resolution".to_string(),
        );
        alignment.insert(
            PropertyKey::new(SourceId(1), "weight"),
            "weight".to_string(),
        );
        Dataset::new("toy", vec!["a".into(), "b".into()], instances, alignment).unwrap()
    }

    fn embeddings() -> EmbeddingStore {
        let mut s = EmbeddingStore::new(4);
        s.insert("megapixels", vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        s.insert("resolution", vec![0.9, 0.1, 0.0, 0.0]).unwrap();
        s.insert("mp", vec![0.95, 0.05, 0.0, 0.0]).unwrap();
        s.insert("weight", vec![0.0, 0.0, 1.0, 0.0]).unwrap();
        s.insert("g", vec![0.0, 0.0, 0.9, 0.1]).unwrap();
        s
    }

    /// A synthetic multi-source dataset big enough to exercise the
    /// parallel build path (≥ 2 × MIN_ITEMS_PER_THREAD properties).
    fn wide_dataset(properties_per_source: usize) -> Dataset {
        let mut instances = Vec::new();
        let mut alignment = BTreeMap::new();
        for source in 0..2u16 {
            for p in 0..properties_per_source {
                let name = format!("prop {p} s{source}");
                for e in 0..3 {
                    instances.push(Instance {
                        source: SourceId(source),
                        property: name.clone(),
                        entity: format!("e{e}"),
                        value: format!("{}.{} units", p * 7 + e, e),
                    });
                }
                alignment.insert(
                    PropertyKey::new(SourceId(source), &name),
                    format!("unified {p}"),
                );
            }
        }
        Dataset::new(
            "wide",
            vec!["a".into(), "b".into()],
            instances,
            alignment,
        )
        .unwrap()
    }

    #[test]
    fn from_parts_round_trips_a_built_store() {
        let ds = toy_dataset();
        let emb = embeddings();
        let built = PropertyFeatureStore::build(&ds, &emb);
        let map: HashMap<PropertyKey, Vec<f32>> = built
            .iter()
            .map(|(k, v)| (k.clone(), v.to_vec()))
            .collect();
        let rebuilt = PropertyFeatureStore::from_parts(built.dim(), map, built.sanitize_stats());
        assert_eq!(rebuilt.len(), built.len());
        assert_eq!(rebuilt.dim(), built.dim());
        assert_eq!(rebuilt.sanitize_stats(), built.sanitize_stats());
        assert_eq!(rebuilt.degradation(), built.degradation());
        for (k, v) in built.iter() {
            let rv = rebuilt.property_vector(k).expect("key survives round trip");
            assert_eq!(
                v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                rv.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            );
        }
        // Pair vectors (which also exercise the rebuilt name interning)
        // agree bitwise.
        let keys = ds.properties();
        let a = &keys[0];
        let b = &keys[1];
        assert_eq!(
            built.full_pair_vector(a, b),
            rebuilt.full_pair_vector(a, b)
        );
    }

    #[test]
    #[should_panic(expected = "property vector length mismatch")]
    fn from_parts_rejects_wrong_vector_length() {
        let mut map = HashMap::new();
        map.insert(PropertyKey::new(SourceId(0), "x"), vec![0.0f32; 3]);
        PropertyFeatureStore::from_parts(4, map, SanitizeStats::default());
    }

    #[test]
    fn builds_features_for_all_properties() {
        let ds = toy_dataset();
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        assert_eq!(store.len(), 3);
        assert_eq!(store.dim(), 4);
        let key = PropertyKey::new(SourceId(0), "megapixels");
        let pf = store.property_vector(&key).unwrap();
        assert_eq!(pf.len(), property::len(4));
    }

    #[test]
    fn full_pair_vector_layout() {
        let ds = toy_dataset();
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        let a = PropertyKey::new(SourceId(0), "megapixels");
        let b = PropertyKey::new(SourceId(1), "resolution");
        let v = store.full_pair_vector(&a, &b).unwrap();
        assert_eq!(v.len(), store.full_pair_len());
        assert_eq!(v.len(), 29 + 2 * 4 + 8);
    }

    #[test]
    fn matching_pair_has_smaller_distances_than_unrelated() {
        let ds = toy_dataset();
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        let mp = PropertyKey::new(SourceId(0), "megapixels");
        let res = PropertyKey::new(SourceId(1), "resolution");
        let wt = PropertyKey::new(SourceId(1), "weight");
        let cfg = FeatureConfig {
            scope: FeatureScope::Names,
            kind: FeatureKind::Embeddings,
        };
        let sim_pair: f32 = store.pair_vector(&mp, &res, &cfg).unwrap().iter().sum();
        let diff_pair: f32 = store.pair_vector(&mp, &wt, &cfg).unwrap().iter().sum();
        // Name-embedding differences should be smaller for the true match.
        assert!(sim_pair < diff_pair, "{sim_pair} vs {diff_pair}");
    }

    #[test]
    fn unknown_property_is_none_or_error() {
        let ds = toy_dataset();
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        let a = PropertyKey::new(SourceId(0), "megapixels");
        let ghost = PropertyKey::new(SourceId(1), "ghost");
        assert!(store.full_pair_vector(&a, &ghost).is_none());
        let err = store
            .pair_matrix(&[(a.clone(), ghost.clone())], &FeatureConfig::full())
            .unwrap_err();
        assert_eq!(err, FeatureError::UnknownProperty(ghost.clone()));
        let err = store
            .pair_matrix_flat(&[(a, ghost.clone())], &FeatureConfig::full())
            .unwrap_err();
        assert_eq!(err, FeatureError::UnknownProperty(ghost));
    }

    #[test]
    fn pair_matrix_shapes() {
        let ds = toy_dataset();
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        let a = PropertyKey::new(SourceId(0), "megapixels");
        let b = PropertyKey::new(SourceId(1), "resolution");
        let c = PropertyKey::new(SourceId(1), "weight");
        let cfg = FeatureConfig::full();
        let m = store
            .pair_matrix(&[(a.clone(), b), (a, c)], &cfg)
            .unwrap();
        assert_eq!(m.len(), 2);
        assert!(m.iter().all(|r| r.len() == cfg.feature_count(4)));
    }

    #[test]
    fn string_cache_consistency() {
        let ds = toy_dataset();
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        let a = PropertyKey::new(SourceId(0), "megapixels");
        let b = PropertyKey::new(SourceId(1), "resolution");
        let v1 = store.full_pair_vector(&a, &b).unwrap();
        let v2 = store.full_pair_vector(&a, &b).unwrap();
        assert_eq!(v1, v2);
        // Cached direction-independence.
        let v3 = store.full_pair_vector(&b, &a).unwrap();
        assert_eq!(v1, v3);
    }

    #[test]
    fn string_cache_hits_after_first_computation() {
        // Regression for the old double-lock/double-alloc cache: the memo
        // table must actually be consulted — repeated and order-swapped
        // lookups hit, only the first computes.
        let ds = toy_dataset();
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        let a = PropertyKey::new(SourceId(0), "megapixels");
        let b = PropertyKey::new(SourceId(1), "resolution");
        assert_eq!(store.string_cache_stats(), (0, 0));
        store.full_pair_vector(&a, &b).unwrap();
        assert_eq!(store.string_cache_stats(), (0, 1));
        store.full_pair_vector(&a, &b).unwrap();
        store.full_pair_vector(&b, &a).unwrap();
        assert_eq!(store.string_cache_stats(), (2, 1));
        // A distinct name pair misses once, then hits.
        let c = PropertyKey::new(SourceId(1), "weight");
        store.full_pair_vector(&a, &c).unwrap();
        store.full_pair_vector(&a, &c).unwrap();
        assert_eq!(store.string_cache_stats(), (3, 2));
    }

    #[test]
    fn pair_table_matches_cache_bitwise() {
        let ds = toy_dataset();
        let emb = embeddings();
        let cached = PropertyFeatureStore::build(&ds, &emb);
        let tabled = PropertyFeatureStore::build(&ds, &emb);
        tabled.ensure_pair_table(1000);
        assert!(tabled.pair_table_stats().is_some());
        let keys = ds.properties();
        for a in &keys {
            for b in &keys {
                let want = cached.full_pair_vector(a, b).unwrap();
                let got = tabled.full_pair_vector(a, b).unwrap();
                assert_eq!(
                    want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "pair ({a}, {b})"
                );
            }
        }
        // Every lookup was served by the table; the sharded cache never
        // engaged on the tabled store.
        let (_, _, hits) = tabled.pair_table_stats().unwrap();
        assert_eq!(hits as usize, keys.len() * keys.len());
        assert_eq!(tabled.string_cache_stats(), (0, 0));
    }

    #[test]
    fn pair_table_gate_skips_tiny_pair_volumes() {
        let ds = toy_dataset();
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        // 3 names → 6 entries > 2 × 1 expected pair ⇒ skip; lookups
        // stay on the sharded cache.
        store.ensure_pair_table(1);
        assert!(store.pair_table_stats().is_none());
        let a = PropertyKey::new(SourceId(0), "megapixels");
        let b = PropertyKey::new(SourceId(1), "resolution");
        store.full_pair_vector(&a, &b).unwrap();
        assert_eq!(store.string_cache_stats(), (0, 1));
        // The skip is not sticky: a later caller with a larger pair
        // volume (scoring after a small training run) still builds.
        store.ensure_pair_table(1000);
        assert!(store.pair_table_stats().is_some());
    }

    #[test]
    fn ensure_pair_table_for_respects_string_columns() {
        let ds = toy_dataset();
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        // Embeddings-only configurations never read string distances.
        let no_strings = FeatureConfig {
            scope: FeatureScope::Both,
            kind: FeatureKind::Embeddings,
        };
        store.ensure_pair_table_for(&no_strings, 1000);
        assert!(store.pair_table_stats().is_none());
        store.ensure_pair_table_for(&FeatureConfig::full(), 1000);
        assert!(store.pair_table_stats().is_some());
    }

    #[test]
    fn pair_table_parallel_fill_matches_serial() {
        // Enough properties to cross the fan-out threshold; thread-count
        // sweep must be bitwise invisible in the table and in fills
        // routed through it.
        let ds = wide_dataset(24);
        let emb = embeddings();
        let serial = PropertyFeatureStore::build(&ds, &emb);
        serial.ensure_pair_table_with_threads(usize::MAX, 1);
        let pairs: Vec<(PropertyKey, PropertyKey)> = {
            let keys = ds.properties();
            keys.iter()
                .flat_map(|a| keys.iter().map(move |b| (a.clone(), b.clone())))
                .take(200)
                .collect()
        };
        let cfg = FeatureConfig::full();
        let mask = cfg.mask(serial.dim());
        let mut want = vec![0.0f32; pairs.len() * mask.len()];
        serial.fill_pair_block(&pairs, &mask, &mut want).unwrap();
        for threads in [2, 4, 7] {
            let par = PropertyFeatureStore::build(&ds, &emb);
            par.ensure_pair_table_with_threads(usize::MAX, threads);
            assert_eq!(par.pair_table_stats().unwrap().1, serial.pair_table_stats().unwrap().1);
            let mut got = vec![0.0f32; want.len()];
            par.fill_pair_block(&pairs, &mask, &mut got).unwrap();
            assert_eq!(
                want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn pair_table_collapses_names_sharing_a_normalized_form() {
        // "Shutter-Speed" and "shutter speed" normalize identically, so
        // the table must hold one canonical form for both.
        let mk = |source: u16, property: &str| Instance {
            source: SourceId(source),
            property: property.into(),
            entity: "e".into(),
            value: "1".into(),
        };
        let instances = vec![mk(0, "Shutter-Speed"), mk(1, "shutter speed"), mk(1, "iso")];
        let mut alignment = BTreeMap::new();
        alignment.insert(PropertyKey::new(SourceId(0), "Shutter-Speed"), "s".into());
        alignment.insert(PropertyKey::new(SourceId(1), "shutter speed"), "s".into());
        alignment.insert(PropertyKey::new(SourceId(1), "iso"), "iso".into());
        let ds = Dataset::new("norm", vec!["a".into(), "b".into()], instances, alignment).unwrap();
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        store.ensure_pair_table(1000);
        let (forms, entries, _) = store.pair_table_stats().unwrap();
        assert_eq!(forms, 2, "3 names, 2 canonical forms");
        assert_eq!(entries, 3);
        let a = PropertyKey::new(SourceId(0), "Shutter-Speed");
        let b = PropertyKey::new(SourceId(1), "shutter speed");
        let v = store.full_pair_vector(&a, &b).unwrap();
        // Identical normalized forms ⇒ all eight string distances are 0.
        let prop_len = property::len(store.dim());
        assert!(v[prop_len..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn flat_matrix_matches_nested_for_every_config() {
        let ds = toy_dataset();
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        let a = PropertyKey::new(SourceId(0), "megapixels");
        let b = PropertyKey::new(SourceId(1), "resolution");
        let c = PropertyKey::new(SourceId(1), "weight");
        let pairs = vec![(a.clone(), b.clone()), (a.clone(), c.clone()), (b, c)];
        for cfg in FeatureConfig::all() {
            let nested = store.pair_matrix(&pairs, &cfg).unwrap();
            let flat = store.pair_matrix_flat(&pairs, &cfg).unwrap();
            assert_eq!(flat.rows, pairs.len());
            assert_eq!(flat.cols, cfg.feature_count(store.dim()));
            for (r, row) in nested.iter().enumerate() {
                assert_eq!(flat.row(r), row.as_slice(), "config {cfg}, row {r}");
            }
        }
    }

    #[test]
    fn clean_build_reports_no_repairs() {
        let ds = toy_dataset();
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        assert!(store.sanitize_stats().is_clean());
        assert!(store.degradation().is_clean());
        assert_eq!(store.degradation().total, 3);
        assert_eq!(store.degradation().fraction(), 0.0);
    }

    #[test]
    fn oversized_numeric_is_clamped_not_poisonous() {
        // "1e308" parses to a finite f64; unchecked it becomes Inf as f32
        // and a pair difference turns into NaN. The store must emit only
        // finite, bounded features.
        let mk = |source: u16, property: &str, entity: &str, value: &str| Instance {
            source: SourceId(source),
            property: property.into(),
            entity: entity.into(),
            value: value.into(),
        };
        let instances = vec![
            mk(0, "price", "e1", "1e308"),
            mk(0, "price", "e2", "99"),
            mk(1, "cost", "x1", "-1e308"),
        ];
        let ds = Dataset::new(
            "poison",
            vec!["a".into(), "b".into()],
            instances,
            BTreeMap::new(),
        )
        .unwrap();
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        for key in [
            PropertyKey::new(SourceId(0), "price"),
            PropertyKey::new(SourceId(1), "cost"),
        ] {
            let v = store.property_vector(&key).unwrap();
            assert!(v.iter().all(|x| x.is_finite()), "non-finite feature for {key}");
            assert!(v.iter().all(|x| x.abs() <= MAX_ABS_FEATURE));
        }
        let v = store
            .full_pair_vector(
                &PropertyKey::new(SourceId(0), "price"),
                &PropertyKey::new(SourceId(1), "cost"),
            )
            .unwrap();
        assert!(v.iter().all(|x| x.is_finite()), "pair vector poisoned");
    }

    #[test]
    fn zero_embedding_coverage_reports_all_degraded() {
        // An embedding store that knows none of the dataset's tokens:
        // every property degrades to non-embedding features.
        let ds = toy_dataset();
        let empty = EmbeddingStore::new(4);
        let store = PropertyFeatureStore::build(&ds, &empty);
        assert_eq!(store.degradation().degraded.len(), 3);
        assert_eq!(store.degradation().total, 3);
        assert_eq!(store.degradation().fraction(), 1.0);
        assert!(store.degradation().summary().contains("3/3"));
        // Degraded properties still produce usable pair vectors.
        let a = PropertyKey::new(SourceId(0), "megapixels");
        let b = PropertyKey::new(SourceId(1), "resolution");
        let v = store.full_pair_vector(&a, &b).unwrap();
        assert!(v.iter().all(|x| x.is_finite()));
        assert!(v.iter().any(|&x| x != 0.0), "non-embedding features empty");
    }

    #[test]
    fn partial_embedding_coverage_names_the_degraded_properties() {
        // Embeddings cover the resolution-related tokens but not "weight"
        // or "g" → exactly the weight property degrades.
        let mut emb = EmbeddingStore::new(4);
        emb.insert("megapixels", vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        emb.insert("resolution", vec![0.9, 0.1, 0.0, 0.0]).unwrap();
        emb.insert("mp", vec![0.95, 0.05, 0.0, 0.0]).unwrap();
        let ds = toy_dataset();
        let store = PropertyFeatureStore::build(&ds, &emb);
        assert_eq!(
            store.degradation().degraded,
            vec![PropertyKey::new(SourceId(1), "weight")]
        );
    }

    #[test]
    fn try_build_matches_build() {
        let ds = wide_dataset(24);
        let emb = embeddings();
        let a = PropertyFeatureStore::build_with_threads(&ds, &emb, 3);
        let b = PropertyFeatureStore::try_build_with_threads(&ds, &emb, 3).unwrap();
        assert_eq!(a.len(), b.len());
        for (key, v) in a.iter() {
            assert_eq!(b.property_vector(key).unwrap(), v);
        }
        assert_eq!(a.sanitize_stats(), b.sanitize_stats());
        assert_eq!(a.degradation(), b.degradation());
    }

    #[test]
    fn worker_panic_error_formats() {
        let e = FeatureError::WorkerPanic {
            site: "features.worker".into(),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "worker panic at features.worker: boom");
    }

    #[test]
    fn parallel_build_is_bitwise_serial() {
        let ds = wide_dataset(24); // 48 properties → parallel path
        let emb = embeddings();
        let serial = PropertyFeatureStore::build_with_threads(&ds, &emb, 1);
        for threads in [2, 3, 5, 8] {
            let par = PropertyFeatureStore::build_with_threads(&ds, &emb, threads);
            assert_eq!(par.len(), serial.len());
            for (key, v) in serial.iter() {
                let pv = par.property_vector(key).unwrap();
                assert_eq!(
                    pv.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    v.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    "property {key} differs at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn parallel_flat_matrix_is_bitwise_serial() {
        let ds = wide_dataset(24);
        let emb = embeddings();
        let store = PropertyFeatureStore::build_with_threads(&ds, &emb, 1);
        let keys = {
            let mut k: Vec<PropertyKey> = ds.properties();
            k.sort();
            k
        };
        // All cross-source pairs → well above the parallel threshold.
        let pairs: Vec<(PropertyKey, PropertyKey)> = keys
            .iter()
            .filter(|k| k.source == SourceId(0))
            .flat_map(|a| {
                keys.iter()
                    .filter(|k| k.source == SourceId(1))
                    .map(move |b| (a.clone(), b.clone()))
            })
            .collect();
        assert!(pairs.len() >= 2 * MIN_ITEMS_PER_THREAD);
        let cfg = FeatureConfig::full();
        let serial = store
            .pair_matrix_flat_with_threads(&pairs, &cfg, 1)
            .unwrap();
        for threads in [2, 4, 7] {
            let par = store
                .pair_matrix_flat_with_threads(&pairs, &cfg, threads)
                .unwrap();
            assert_eq!(par.rows, serial.rows);
            assert_eq!(par.cols, serial.cols);
            assert_eq!(
                par.data.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                serial.data.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                "flat matrix differs at {threads} threads"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn flat_matrix_equivalence_on_random_datasets(
            props in 2usize..8, seed in 0u64..50,
        ) {
            // Random small corpus: property names share tokens so string
            // distances and interning get non-trivial coverage.
            let mut s = seed.wrapping_add(41);
            let mut next = move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (s >> 33) as usize
            };
            let tokens = ["max", "speed", "weight", "zoom", "iso", "price"];
            let mut instances = Vec::new();
            let mut alignment = BTreeMap::new();
            for source in 0..2u16 {
                for p in 0..props {
                    let name = format!(
                        "{} {}",
                        tokens[next() % tokens.len()],
                        tokens[p % tokens.len()]
                    );
                    for e in 0..2 {
                        instances.push(Instance {
                            source: SourceId(source),
                            property: name.clone(),
                            entity: format!("e{e}"),
                            value: format!("{} units", next() % 100),
                        });
                    }
                    alignment.insert(
                        PropertyKey::new(SourceId(source), &name),
                        format!("u{p}"),
                    );
                }
            }
            let ds = Dataset::new("rand", vec!["a".into(), "b".into()], instances, alignment)
                .unwrap();
            let emb = embeddings();
            let store = PropertyFeatureStore::build_with_threads(&ds, &emb, 1);
            let par_store = PropertyFeatureStore::build_with_threads(&ds, &emb, 4);
            let keys: Vec<PropertyKey> = {
                let mut k = ds.properties();
                k.sort();
                k
            };
            for key in &keys {
                let a = store.property_vector(key).unwrap();
                let b = par_store.property_vector(key).unwrap();
                prop_assert_eq!(
                    a.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    b.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
                );
            }
            let pairs: Vec<(PropertyKey, PropertyKey)> = keys
                .iter()
                .filter(|k| k.source == SourceId(0))
                .flat_map(|a| {
                    keys.iter()
                        .filter(|k| k.source == SourceId(1))
                        .map(move |b| (a.clone(), b.clone()))
                })
                .collect();
            for cfg in FeatureConfig::all() {
                let nested = store.pair_matrix(&pairs, &cfg).unwrap();
                let flat = store.pair_matrix_flat_with_threads(&pairs, &cfg, 4).unwrap();
                for (r, row) in nested.iter().enumerate() {
                    prop_assert_eq!(
                        flat.row(r).iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                        row.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                        "config {}, row {}", cfg, r
                    );
                }
            }
        }
    }

    mod cancellation {
        use super::*;

        #[test]
        fn cancelled_build_returns_cancelled() {
            let ds = toy_dataset();
            let cancel = || true;
            let err =
                match PropertyFeatureStore::try_build_cancellable(&ds, &embeddings(), 1, Some(&cancel)) {
                    Err(e) => e,
                    Ok(_) => panic!("expected cancellation"),
                };
            assert_eq!(format!("{err}"), "feature work cancelled");
            assert!(matches!(err, FeatureError::Cancelled));
        }

        #[test]
        fn uncancelled_build_is_bitwise_identical() {
            let ds = wide_dataset(2 * MIN_ITEMS_PER_THREAD);
            let emb = embeddings();
            let plain = PropertyFeatureStore::build_with_threads(&ds, &emb, 4);
            let cancel = || false;
            let polled =
                PropertyFeatureStore::try_build_cancellable(&ds, &emb, 4, Some(&cancel)).unwrap();
            for key in ds.properties() {
                let a = plain.property_vector(&key).unwrap();
                let b = polled.property_vector(&key).unwrap();
                assert_eq!(
                    a.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    b.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
                );
            }
        }

        #[test]
        fn pair_fill_cancels_between_blocks() {
            let ds = toy_dataset();
            let store = PropertyFeatureStore::build(&ds, &embeddings());
            let a = PropertyKey::new(SourceId(0), "megapixels");
            let b = PropertyKey::new(SourceId(1), "resolution");
            // More than one CANCEL_BLOCK of pairs so the mid-fill poll runs.
            let pairs: Vec<_> = (0..CANCEL_BLOCK + 8).map(|_| (a.clone(), b.clone())).collect();
            let cfg = FeatureConfig::full();
            use std::sync::atomic::{AtomicUsize, Ordering};
            let calls = AtomicUsize::new(0);
            // First poll (entry) passes, second (between blocks) fires.
            let cancel = || calls.fetch_add(1, Ordering::SeqCst) >= 1;
            let err = store
                .pair_matrix_flat_cancellable(&pairs, &cfg, 1, Some(&cancel))
                .unwrap_err();
            assert!(matches!(err, FeatureError::Cancelled));
            assert!(calls.load(Ordering::SeqCst) >= 2);

            // With cancellation never firing, output matches the plain path.
            let plain = store.pair_matrix_flat_with_threads(&pairs, &cfg, 1).unwrap();
            let never = || false;
            let polled = store
                .pair_matrix_flat_cancellable(&pairs, &cfg, 1, Some(&never))
                .unwrap();
            assert_eq!(plain.row(0), polled.row(0));
            assert_eq!(plain.row(pairs.len() - 1), polled.row(pairs.len() - 1));
        }

        #[test]
        fn pair_block_cancel_entry_check() {
            let ds = toy_dataset();
            let store = PropertyFeatureStore::build(&ds, &embeddings());
            let a = PropertyKey::new(SourceId(0), "megapixels");
            let b = PropertyKey::new(SourceId(1), "resolution");
            let cfg = FeatureConfig::full();
            let mask = cfg.mask(store.dim());
            let pairs = [(a, b)];
            let mut out = vec![0.0f32; mask.len()];
            let cancel = || true;
            let err = store
                .fill_pair_block_cancellable(&pairs, &mask, &mut out, Some(&cancel))
                .unwrap_err();
            assert!(matches!(err, FeatureError::Cancelled));
            store
                .fill_pair_block_cancellable(&pairs, &mask, &mut out, None)
                .unwrap();
            assert!(out.iter().any(|v| *v != 0.0));
        }
    }
}
