//! End-to-end feature vectorization of a dataset.
//!
//! [`PropertyFeatureStore::build`] runs steps 1–3 of Algorithm 1 once per
//! dataset: it extracts instance features for every property instance,
//! aggregates them into property feature vectors, and caches everything.
//! [`PropertyFeatureStore::pair_vector`] then produces the pair features
//! (step 4) for any candidate pair under any [`FeatureConfig`] — the
//! expensive property-level work is shared across the paper's nine
//! configurations, 25 repetitions, and two training fractions.
//!
//! String distances only depend on the property *names*, which repeat
//! heavily across sources, so they are memoized per unordered name pair.

use crate::config::FeatureConfig;
use crate::{instance, pair, property};
use leapme_data::model::{Dataset, PropertyKey};
use leapme_embedding::store::EmbeddingStore;
use std::collections::HashMap;
use std::sync::Mutex;

/// Precomputed property feature vectors for one dataset, plus a memo table
/// for name string distances.
pub struct PropertyFeatureStore {
    dim: usize,
    features: HashMap<PropertyKey, Vec<f32>>,
    string_cache: Mutex<HashMap<(String, String), [f32; pair::STRING_FEATURES]>>,
}

impl PropertyFeatureStore {
    /// Extract and cache property features for every property of
    /// `dataset` (Algorithm 1 lines 2–6).
    pub fn build(dataset: &Dataset, embeddings: &EmbeddingStore) -> Self {
        let mut features = HashMap::new();
        for key in dataset.properties() {
            let instances = dataset.instances_of(&key);
            let vectors: Vec<Vec<f32>> = instances
                .iter()
                .map(|inst| instance::extract(&inst.value, embeddings))
                .collect();
            let pf = property::aggregate(&key.name, &vectors, embeddings);
            features.insert(key, pf);
        }
        PropertyFeatureStore {
            dim: embeddings.dim(),
            features,
            string_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Embedding dimensionality the store was built with.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of properties with cached features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Full pair-feature length (before configuration masking).
    pub fn full_pair_len(&self) -> usize {
        pair::len(self.dim)
    }

    /// The cached property feature vector, if the property exists.
    pub fn property_vector(&self, key: &PropertyKey) -> Option<&[f32]> {
        self.features.get(key).map(Vec::as_slice)
    }

    fn string_features_cached(&self, a: &str, b: &str) -> [f32; pair::STRING_FEATURES] {
        let key = if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        };
        if let Some(v) = self.string_cache.lock().expect("no poisoning").get(&key) {
            return *v;
        }
        let v = pair::string_features(&key.0, &key.1);
        self.string_cache
            .lock()
            .expect("no poisoning")
            .insert(key, v);
        v
    }

    /// The full (unmasked) pair feature vector for `(a, b)`
    /// (Algorithm 1 lines 7–8), or `None` if either property is unknown.
    pub fn full_pair_vector(&self, a: &PropertyKey, b: &PropertyKey) -> Option<Vec<f32>> {
        let pa = self.features.get(a)?;
        let pb = self.features.get(b)?;
        let mut v = pair::vector_difference(pa, pb);
        v.extend_from_slice(&self.string_features_cached(&a.name, &b.name));
        Some(v)
    }

    /// The pair feature vector masked to `config`'s columns.
    pub fn pair_vector(
        &self,
        a: &PropertyKey,
        b: &PropertyKey,
        config: &FeatureConfig,
    ) -> Option<Vec<f32>> {
        let full = self.full_pair_vector(a, b)?;
        Some(config.project(&full, self.dim))
    }

    /// Pair vectors for a batch of pairs under one configuration, row per
    /// pair. Unknown properties yield an error naming the missing key.
    pub fn pair_matrix(
        &self,
        pairs: &[(PropertyKey, PropertyKey)],
        config: &FeatureConfig,
    ) -> Result<Vec<Vec<f32>>, FeatureError> {
        pairs
            .iter()
            .map(|(a, b)| {
                self.pair_vector(a, b, config).ok_or_else(|| {
                    let missing = if self.features.contains_key(a) { b } else { a };
                    FeatureError::UnknownProperty(missing.clone())
                })
            })
            .collect()
    }
}

/// Errors produced by the vectorizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeatureError {
    /// A pair referenced a property the store has no features for.
    UnknownProperty(PropertyKey),
}

impl std::fmt::Display for FeatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeatureError::UnknownProperty(p) => write!(f, "unknown property {p}"),
        }
    }
}

impl std::error::Error for FeatureError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FeatureKind, FeatureScope};
    use leapme_data::model::{Instance, SourceId};
    use std::collections::BTreeMap;

    fn toy_dataset() -> Dataset {
        let mk = |source: u16, property: &str, entity: &str, value: &str| Instance {
            source: SourceId(source),
            property: property.into(),
            entity: entity.into(),
            value: value.into(),
        };
        let instances = vec![
            mk(0, "megapixels", "e1", "20.1 MP"),
            mk(0, "megapixels", "e2", "24 MP"),
            mk(1, "resolution", "x1", "18 megapixels"),
            mk(1, "weight", "x1", "450 g"),
        ];
        let mut alignment = BTreeMap::new();
        alignment.insert(
            PropertyKey::new(SourceId(0), "megapixels"),
            "resolution".to_string(),
        );
        alignment.insert(
            PropertyKey::new(SourceId(1), "resolution"),
            "resolution".to_string(),
        );
        alignment.insert(
            PropertyKey::new(SourceId(1), "weight"),
            "weight".to_string(),
        );
        Dataset::new("toy", vec!["a".into(), "b".into()], instances, alignment).unwrap()
    }

    fn embeddings() -> EmbeddingStore {
        let mut s = EmbeddingStore::new(4);
        s.insert("megapixels", vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        s.insert("resolution", vec![0.9, 0.1, 0.0, 0.0]).unwrap();
        s.insert("mp", vec![0.95, 0.05, 0.0, 0.0]).unwrap();
        s.insert("weight", vec![0.0, 0.0, 1.0, 0.0]).unwrap();
        s.insert("g", vec![0.0, 0.0, 0.9, 0.1]).unwrap();
        s
    }

    #[test]
    fn builds_features_for_all_properties() {
        let ds = toy_dataset();
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        assert_eq!(store.len(), 3);
        assert_eq!(store.dim(), 4);
        let key = PropertyKey::new(SourceId(0), "megapixels");
        let pf = store.property_vector(&key).unwrap();
        assert_eq!(pf.len(), property::len(4));
    }

    #[test]
    fn full_pair_vector_layout() {
        let ds = toy_dataset();
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        let a = PropertyKey::new(SourceId(0), "megapixels");
        let b = PropertyKey::new(SourceId(1), "resolution");
        let v = store.full_pair_vector(&a, &b).unwrap();
        assert_eq!(v.len(), store.full_pair_len());
        assert_eq!(v.len(), 29 + 2 * 4 + 8);
    }

    #[test]
    fn matching_pair_has_smaller_distances_than_unrelated() {
        let ds = toy_dataset();
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        let mp = PropertyKey::new(SourceId(0), "megapixels");
        let res = PropertyKey::new(SourceId(1), "resolution");
        let wt = PropertyKey::new(SourceId(1), "weight");
        let cfg = FeatureConfig {
            scope: FeatureScope::Names,
            kind: FeatureKind::Embeddings,
        };
        let sim_pair: f32 = store.pair_vector(&mp, &res, &cfg).unwrap().iter().sum();
        let diff_pair: f32 = store.pair_vector(&mp, &wt, &cfg).unwrap().iter().sum();
        // Name-embedding differences should be smaller for the true match.
        assert!(sim_pair < diff_pair, "{sim_pair} vs {diff_pair}");
    }

    #[test]
    fn unknown_property_is_none_or_error() {
        let ds = toy_dataset();
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        let a = PropertyKey::new(SourceId(0), "megapixels");
        let ghost = PropertyKey::new(SourceId(1), "ghost");
        assert!(store.full_pair_vector(&a, &ghost).is_none());
        let err = store
            .pair_matrix(&[(a, ghost.clone())], &FeatureConfig::full())
            .unwrap_err();
        assert_eq!(err, FeatureError::UnknownProperty(ghost));
    }

    #[test]
    fn pair_matrix_shapes() {
        let ds = toy_dataset();
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        let a = PropertyKey::new(SourceId(0), "megapixels");
        let b = PropertyKey::new(SourceId(1), "resolution");
        let c = PropertyKey::new(SourceId(1), "weight");
        let cfg = FeatureConfig::full();
        let m = store
            .pair_matrix(&[(a.clone(), b), (a, c)], &cfg)
            .unwrap();
        assert_eq!(m.len(), 2);
        assert!(m.iter().all(|r| r.len() == cfg.feature_count(4)));
    }

    #[test]
    fn string_cache_consistency() {
        let ds = toy_dataset();
        let store = PropertyFeatureStore::build(&ds, &embeddings());
        let a = PropertyKey::new(SourceId(0), "megapixels");
        let b = PropertyKey::new(SourceId(1), "resolution");
        let v1 = store.full_pair_vector(&a, &b).unwrap();
        let v2 = store.full_pair_vector(&a, &b).unwrap();
        assert_eq!(v1, v2);
        // Cached direction-independence.
        let v3 = store.full_pair_vector(&b, &a).unwrap();
        assert_eq!(v1, v3);
    }
}
