//! Debug-only allocation counter (feature `alloc-count`).
//!
//! Installs a [`GlobalAlloc`] wrapper around the system allocator that
//! counts every `alloc`/`alloc_zeroed`/`realloc` call process-wide. The
//! zero-allocation regression tests snapshot [`allocation_count`] around
//! a warmed-up training step to prove the workspace hot loop stays off
//! the heap; see `network::tests` and DESIGN.md's memory-model section.
//!
//! Deliberately minimal: a single relaxed atomic per allocation, no
//! per-size histograms, no deallocation tracking — the tests only need
//! "did anything allocate between these two points".

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper counting allocation calls.
///
/// Installed as the `#[global_allocator]` whenever the `alloc-count`
/// feature is enabled, so any binary or test linking this crate with the
/// feature gets counting for free.
pub struct CountingAllocator;

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter increment has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that grows may touch the heap even when it resizes in
        // place; count it as an allocation event so the tests stay strict.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Total allocation events (alloc + alloc_zeroed + realloc) since process
/// start. Monotonically increasing; diff two snapshots to count the
/// allocations a code region performed.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_heap_allocations() {
        let before = allocation_count();
        let v: Vec<u64> = Vec::with_capacity(32);
        let after = allocation_count();
        assert!(after > before, "Vec::with_capacity must be counted");
        drop(v);
        // Dealloc is not counted.
        let freed = allocation_count();
        assert_eq!(freed, after);
    }
}
