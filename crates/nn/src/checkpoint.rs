//! Versioned, checksummed on-disk persistence for networks and
//! resumable training state.
//!
//! # Container format
//!
//! Every file this module writes is one *container*:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"LEAPMECP"
//! 8       4     format version (u32 LE, currently 1)
//! 12      1     kind   (0 = Mlp model, 1 = training state, 2 = pipeline
//!               model, 3 = property-feature cache)
//! 13      1     dtype  (0 = f32; other values reserved)
//! 14      8     payload length (u64 LE)
//! 22      n     payload (kind-specific binary encoding)
//! 22+n    8     CRC-64/XZ of the payload (u64 LE)
//! ```
//!
//! Containers are written via write-to-temp + fsync + atomic rename, so
//! a reader can never observe a half-written file at the final path; a
//! torn write that somehow does reach the destination (simulated by the
//! `torn` fault kind) is caught by the length and checksum checks and
//! surfaces as a typed [`CheckpointError`], never a silently wrong
//! model.
//!
//! All multi-byte values are little-endian; `f32` round-trips bitwise
//! through `to_le_bytes`, so save → load reproduces a model exactly.

use crate::layers::{Activation, Dense};
use crate::matrix::Matrix;
use crate::network::Mlp;
use crate::optim::ParamState;
use std::io::Write;
use std::path::Path;
use std::sync::OnceLock;

/// First 8 bytes of every container.
pub const MAGIC: [u8; 8] = *b"LEAPMECP";

/// Current container format version.
pub const FORMAT_VERSION: u32 = 1;

/// Container kind: a standalone [`Mlp`] model.
pub const KIND_MODEL: u8 = 0;

/// Container kind: mid-schedule resumable training state.
pub const KIND_TRAIN_STATE: u8 = 1;

/// Container kind: a full pipeline model (network + scaler + feature
/// configuration), written by `leapme-core`.
pub const KIND_PIPELINE: u8 = 2;

/// Container kind: a persisted `PropertyFeatureStore` (fingerprinted
/// property-feature cache), written by `leapme-core`.
pub const KIND_FEATURE_CACHE: u8 = 3;

/// Container kind: the serve layer's resident-state snapshot (dataset +
/// similarity graph + generation), written by `leapme-serve` before
/// every integration swap so a killed process recovers the last good
/// generation bitwise.
pub const KIND_RESIDENT: u8 = 4;

/// Payload dtype tag: `f32` parameters (the only dtype currently
/// written; the byte exists so future formats can widen without a
/// version bump).
pub const DTYPE_F32: u8 = 0;

const HEADER_LEN: usize = 8 + 4 + 1 + 1 + 8;
const TRAILER_LEN: usize = 8;

/// Errors from checkpoint reading/writing. Every corruption mode maps
/// to a distinct variant so callers (and tests) can tell a torn file
/// from a version skew from silent bit rot.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the container magic — not a
    /// checkpoint at all, or its header was corrupted.
    InvalidMagic,
    /// The container was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The container holds a different kind of payload than requested
    /// (e.g. a training state where a model was expected).
    WrongKind {
        /// Kind the caller asked for.
        expected: u8,
        /// Kind recorded in the file.
        found: u8,
    },
    /// The payload dtype tag is not one this build understands.
    UnsupportedDtype(u8),
    /// The file is shorter than its header promises (torn write or
    /// short read).
    Truncated {
        /// Bytes the container needs.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The payload checksum does not match — the bytes were corrupted
    /// after the container was written.
    ChecksumMismatch {
        /// CRC recorded in the file.
        expected: u64,
        /// CRC of the payload as read.
        actual: u64,
    },
    /// The payload decoded to something structurally invalid.
    Malformed(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::InvalidMagic => write!(f, "not a LEAPME checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported checkpoint format version {found} (this build reads {supported})"
            ),
            CheckpointError::WrongKind { expected, found } => write!(
                f,
                "wrong checkpoint kind: expected {expected}, found {found}"
            ),
            CheckpointError::UnsupportedDtype(d) => {
                write!(f, "unsupported checkpoint dtype tag {d}")
            }
            CheckpointError::Truncated { expected, actual } => write!(
                f,
                "checkpoint truncated: need {expected} bytes, have {actual}"
            ),
            CheckpointError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checkpoint checksum mismatch: recorded {expected:016x}, computed {actual:016x}"
            ),
            CheckpointError::Malformed(m) => write!(f, "malformed checkpoint payload: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// ---------------------------------------------------------------------
// CRC-64/XZ (ECMA-182 polynomial, reflected, init/xorout all-ones).
// ---------------------------------------------------------------------

fn crc64_tables() -> &'static [[u64; 256]; 8] {
    static TABLES: OnceLock<[[u64; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        const POLY: u64 = 0xC96C_5795_D787_0F42; // reflected 0x42F0E1EBA9EA3693
        let mut tables = [[0u64; 256]; 8];
        let mut i = 0usize;
        while i < 256 {
            let mut crc = i as u64;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 == 1 { (crc >> 1) ^ POLY } else { crc >> 1 };
                bit += 1;
            }
            tables[0][i] = crc;
            i += 1;
        }
        // Derived tables for slicing-by-8: tables[t][i] advances the
        // CRC of byte `i` through `t` additional zero bytes.
        for t in 1..8 {
            for i in 0..256 {
                let prev = tables[t - 1][i];
                tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        tables
    })
}

/// CRC-64/XZ of `bytes` — the checksum guarding every container payload
/// and every journal record in `leapme-core`.
///
/// Implemented as slicing-by-8 (eight parallel lookup tables consuming
/// one `u64` per step) because the v2 container verifies whole mapped
/// sections at open time, making checksum throughput part of the
/// model-open latency budget.
pub fn crc64(bytes: &[u8]) -> u64 {
    let t = crc64_tables();
    let mut crc = !0u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let v = crc ^ u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        crc = t[7][(v & 0xFF) as usize]
            ^ t[6][((v >> 8) & 0xFF) as usize]
            ^ t[5][((v >> 16) & 0xFF) as usize]
            ^ t[4][((v >> 24) & 0xFF) as usize]
            ^ t[3][((v >> 32) & 0xFF) as usize]
            ^ t[2][((v >> 40) & 0xFF) as usize]
            ^ t[1][((v >> 48) & 0xFF) as usize]
            ^ t[0][(v >> 56) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---------------------------------------------------------------------
// Little-endian binary encoder/decoder.
// ---------------------------------------------------------------------

/// Append-only little-endian byte encoder for container payloads.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f32` bitwise.
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes (no length prefix).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed `f32` slice.
    pub fn f32s(&mut self, v: &[f32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f32(x);
        }
    }

    /// Append a length-prefixed `u64` slice.
    pub fn u64s(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }

    /// Finish and return the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over a container payload; every read is bounds-checked and
/// underruns surface as [`CheckpointError::Truncated`].
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decode from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() - self.pos < n {
            return Err(CheckpointError::Truncated {
                expected: self.pos + n,
                actual: self.buf.len(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read an `f32` bitwise.
    pub fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a length prefix that promises `size`-byte items; rejects
    /// lengths that cannot fit in the remaining bytes, so a corrupted
    /// prefix cannot trigger an absurd allocation.
    fn len_prefix(&mut self, size: usize) -> Result<usize, CheckpointError> {
        let len = self.u64()? as usize;
        if len.checked_mul(size).is_none_or(|b| b > self.buf.len() - self.pos) {
            return Err(CheckpointError::Truncated {
                expected: self.pos + len.saturating_mul(size),
                actual: self.buf.len(),
            });
        }
        Ok(len)
    }

    /// Read a length-prefixed `f32` vector.
    pub fn f32s(&mut self) -> Result<Vec<f32>, CheckpointError> {
        let len = self.len_prefix(4)?;
        (0..len).map(|_| self.f32()).collect()
    }

    /// Read a length-prefixed `u64` vector.
    pub fn u64s(&mut self) -> Result<Vec<u64>, CheckpointError> {
        let len = self.len_prefix(8)?;
        (0..len).map(|_| self.u64()).collect()
    }

    /// Read `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        self.take(n)
    }

    /// Assert the payload was consumed exactly.
    pub fn done(&self) -> Result<(), CheckpointError> {
        if self.pos != self.buf.len() {
            return Err(CheckpointError::Malformed(format!(
                "{} unread trailing payload bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Container I/O (atomic write, checksum-verified read, fault hooks).
// ---------------------------------------------------------------------

fn container_bytes(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind);
    out.push(DTYPE_F32);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc64(payload).to_le_bytes());
    out
}

/// Write bytes durably: temp sibling → fsync → atomic rename, then a
/// best-effort directory sync so the rename itself survives a crash.
/// Shared with the v2 section container in [`crate::container2`].
pub(crate) fn atomic_write_bytes(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "checkpoint".into());
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Fault hook: simulate a write failure at `nn.checkpoint.write`. A
/// `torn` fault leaves a half-written file *at the destination* —
/// deliberately bypassing the atomic rename — so tests can prove the
/// reader rejects it. Shared with the v2 writer in [`crate::container2`].
#[cfg(feature = "faults")]
pub(crate) fn injected_write_fault(path: &Path, bytes: &[u8]) -> Option<std::io::Error> {
    match leapme_faults::fires(leapme_faults::sites::CHECKPOINT_WRITE) {
        Some(leapme_faults::FaultKind::Torn) => {
            let _ = std::fs::write(path, &bytes[..bytes.len() / 2]);
            Some(std::io::Error::other("injected fault: torn checkpoint write"))
        }
        Some(leapme_faults::FaultKind::Io) => {
            Some(std::io::Error::other("injected fault: checkpoint write error"))
        }
        _ => None,
    }
}

#[cfg(not(feature = "faults"))]
pub(crate) fn injected_write_fault(_path: &Path, _bytes: &[u8]) -> Option<std::io::Error> {
    None
}

/// Fault hook: corrupt a read at `nn.checkpoint.read` with a single
/// visit to the fault site (a short read drops the tail, a bit-flip
/// flips one payload bit, `io` fails the read outright). Shared with
/// the v2 open path in [`crate::container2`].
#[cfg(feature = "faults")]
pub(crate) fn injected_read_fault(bytes: &mut Vec<u8>) -> Result<(), CheckpointError> {
    match leapme_faults::fires(leapme_faults::sites::CHECKPOINT_READ) {
        Some(leapme_faults::FaultKind::ShortRead) => {
            let keep = bytes.len() / 2;
            bytes.truncate(keep);
        }
        Some(leapme_faults::FaultKind::BitFlip) if !bytes.is_empty() => {
            let pos = bytes.len().saturating_sub(1) * 3 / 4;
            bytes[pos] ^= 0x10;
        }
        Some(leapme_faults::FaultKind::Io) => {
            return Err(CheckpointError::Io(std::io::Error::other(
                "injected fault: checkpoint read error",
            )));
        }
        _ => {}
    }
    Ok(())
}

#[cfg(not(feature = "faults"))]
pub(crate) fn injected_read_fault(_bytes: &mut Vec<u8>) -> Result<(), CheckpointError> {
    Ok(())
}

/// Write `payload` to `path` as a `kind` container, atomically.
pub fn write_container(path: &Path, kind: u8, payload: &[u8]) -> Result<(), CheckpointError> {
    let bytes = container_bytes(kind, payload);
    if let Some(e) = injected_write_fault(path, &bytes) {
        return Err(CheckpointError::Io(e));
    }
    atomic_write_bytes(path, &bytes)?;
    Ok(())
}

/// Read and verify a `kind` container from `path`, returning the
/// payload. Every validation failure is a distinct typed error.
pub fn read_container(path: &Path, expected_kind: u8) -> Result<Vec<u8>, CheckpointError> {
    let mut bytes = std::fs::read(path)?;
    injected_read_fault(&mut bytes)?;
    parse_container(&bytes, expected_kind)
}

/// Validate raw container bytes and return the payload.
pub fn parse_container(bytes: &[u8], expected_kind: u8) -> Result<Vec<u8>, CheckpointError> {
    if bytes.len() < HEADER_LEN {
        // Too short to even check the magic reliably; if what's there
        // doesn't match the magic prefix, call it a foreign file.
        if !MAGIC.starts_with(&bytes[..bytes.len().min(8)]) {
            return Err(CheckpointError::InvalidMagic);
        }
        return Err(CheckpointError::Truncated {
            expected: HEADER_LEN + TRAILER_LEN,
            actual: bytes.len(),
        });
    }
    if bytes[..8] != MAGIC {
        return Err(CheckpointError::InvalidMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let kind = bytes[12];
    if kind != expected_kind {
        return Err(CheckpointError::WrongKind {
            expected: expected_kind,
            found: kind,
        });
    }
    let dtype = bytes[13];
    if dtype != DTYPE_F32 {
        return Err(CheckpointError::UnsupportedDtype(dtype));
    }
    let payload_len = u64::from_le_bytes(bytes[14..22].try_into().expect("8 bytes")) as usize;
    let expected_total = HEADER_LEN
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(TRAILER_LEN))
        .ok_or(CheckpointError::Malformed("payload length overflows".into()))?;
    match bytes.len().cmp(&expected_total) {
        std::cmp::Ordering::Less => {
            return Err(CheckpointError::Truncated {
                expected: expected_total,
                actual: bytes.len(),
            })
        }
        std::cmp::Ordering::Greater => {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing bytes after container",
                bytes.len() - expected_total
            )))
        }
        std::cmp::Ordering::Equal => {}
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len];
    let recorded = u64::from_le_bytes(
        bytes[HEADER_LEN + payload_len..].try_into().expect("8 bytes"),
    );
    let actual = crc64(payload);
    if recorded != actual {
        return Err(CheckpointError::ChecksumMismatch {
            expected: recorded,
            actual,
        });
    }
    Ok(payload.to_vec())
}

// ---------------------------------------------------------------------
// Model payload codec.
// ---------------------------------------------------------------------

fn encode_dense(e: &mut Encoder, layer: &Dense) {
    e.u64(layer.in_dim() as u64);
    e.u64(layer.out_dim() as u64);
    e.u8(match layer.activation {
        Activation::Relu => 0,
        Activation::Identity => 1,
    });
    e.f32s(layer.weights.data());
    e.f32s(&layer.bias);
}

fn decode_dense(d: &mut Decoder) -> Result<Dense, CheckpointError> {
    let in_dim = d.u64()? as usize;
    let out_dim = d.u64()? as usize;
    let activation = match d.u8()? {
        0 => Activation::Relu,
        1 => Activation::Identity,
        other => {
            return Err(CheckpointError::Malformed(format!(
                "unknown activation tag {other}"
            )))
        }
    };
    let weights = d.f32s()?;
    let bias = d.f32s()?;
    if in_dim.checked_mul(out_dim) != Some(weights.len()) || bias.len() != out_dim {
        return Err(CheckpointError::Malformed(format!(
            "layer shape {in_dim}x{out_dim} does not match {} weights / {} biases",
            weights.len(),
            bias.len()
        )));
    }
    Ok(Dense {
        weights: Matrix::from_vec(in_dim, out_dim, weights),
        bias,
        activation,
    })
}

/// Encode an [`Mlp`]'s layers into `e` (the `KIND_MODEL` payload, also
/// embedded inside pipeline-model containers by `leapme-core`).
pub fn encode_mlp(e: &mut Encoder, net: &Mlp) {
    let layers = net.layers();
    e.u32(layers.len() as u32);
    for layer in layers {
        encode_dense(e, layer);
    }
}

/// Decode an [`Mlp`] previously written by [`encode_mlp`], validating
/// that consecutive layer shapes chain.
pub fn decode_mlp(d: &mut Decoder) -> Result<Mlp, CheckpointError> {
    let n = d.u32()? as usize;
    if n == 0 {
        return Err(CheckpointError::Malformed("network with no layers".into()));
    }
    let mut layers = Vec::with_capacity(n);
    for _ in 0..n {
        layers.push(decode_dense(d)?);
    }
    for w in layers.windows(2) {
        if w[0].out_dim() != w[1].in_dim() {
            return Err(CheckpointError::Malformed(format!(
                "layer chain broken: {} outputs feed {} inputs",
                w[0].out_dim(),
                w[1].in_dim()
            )));
        }
    }
    Ok(Mlp::from_layers(layers))
}

fn encode_param_state(e: &mut Encoder, s: &ParamState) {
    let (m, v, step) = s.parts();
    e.f32s(m);
    e.f32s(v);
    e.u64(step);
}

fn decode_param_state(d: &mut Decoder) -> Result<ParamState, CheckpointError> {
    let m = d.f32s()?;
    let v = d.f32s()?;
    let step = d.u64()?;
    Ok(ParamState::from_parts(m, v, step))
}

impl Mlp {
    /// Save the network to `path` as a checksummed container
    /// (write-to-temp + fsync + atomic rename). [`Self::load`] restores
    /// it bitwise.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut e = Encoder::new();
        encode_mlp(&mut e, self);
        write_container(path, KIND_MODEL, &e.finish())
    }

    /// Load a network previously written by [`Self::save`]. Torn,
    /// truncated, bit-flipped, or version-skewed files yield typed
    /// [`CheckpointError`]s — a corrupt model is never returned.
    pub fn load(path: &Path) -> Result<Mlp, CheckpointError> {
        let payload = read_container(path, KIND_MODEL)?;
        let mut d = Decoder::new(&payload);
        let net = decode_mlp(&mut d)?;
        d.done()?;
        Ok(net)
    }
}

// ---------------------------------------------------------------------
// Resumable training state.
// ---------------------------------------------------------------------

/// Identity of a training run: a resume is only valid against a
/// checkpoint whose inputs and schedule match bit for bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TrainFingerprint {
    pub rows: u64,
    pub cols: u64,
    pub labels_crc: u64,
    pub shuffle_seed: u64,
    pub total_epochs: u64,
    pub batch: u64,
}

/// Everything `Mlp::fit_durable` needs to continue a run from an epoch
/// boundary: weights, optimizer moments, RNG state, LR-stage position,
/// the (mutated) epoch order, telemetry so far, and early-stopping
/// progress.
#[derive(Debug, Clone)]
pub(crate) struct TrainState {
    pub fingerprint: TrainFingerprint,
    pub stage: u64,
    pub lr_scale: f32,
    pub retries_left: u64,
    pub rng: [u64; 4],
    pub order: Vec<u64>,
    pub epoch_losses: Vec<f32>,
    pub validation_losses: Vec<f32>,
    pub recoveries: u64,
    pub best_val: f32,
    pub since_best: u64,
    pub layers: Vec<Dense>,
    pub states: Vec<(ParamState, ParamState)>,
    pub best_layers: Option<Vec<Dense>>,
}

impl TrainState {
    pub(crate) fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut e = Encoder::new();
        let fp = &self.fingerprint;
        for v in [fp.rows, fp.cols, fp.labels_crc, fp.shuffle_seed, fp.total_epochs, fp.batch] {
            e.u64(v);
        }
        e.u64(self.stage);
        e.f32(self.lr_scale);
        e.u64(self.retries_left);
        for w in self.rng {
            e.u64(w);
        }
        e.u64s(&self.order);
        e.f32s(&self.epoch_losses);
        e.f32s(&self.validation_losses);
        e.u64(self.recoveries);
        e.f32(self.best_val);
        e.u64(self.since_best);
        e.u32(self.layers.len() as u32);
        for layer in &self.layers {
            encode_dense(&mut e, layer);
        }
        for (w, b) in &self.states {
            encode_param_state(&mut e, w);
            encode_param_state(&mut e, b);
        }
        match &self.best_layers {
            None => e.u8(0),
            Some(layers) => {
                e.u8(1);
                e.u32(layers.len() as u32);
                for layer in layers {
                    encode_dense(&mut e, layer);
                }
            }
        }
        write_container(path, KIND_TRAIN_STATE, &e.finish())
    }

    pub(crate) fn load(path: &Path) -> Result<TrainState, CheckpointError> {
        let payload = read_container(path, KIND_TRAIN_STATE)?;
        let mut d = Decoder::new(&payload);
        let fingerprint = TrainFingerprint {
            rows: d.u64()?,
            cols: d.u64()?,
            labels_crc: d.u64()?,
            shuffle_seed: d.u64()?,
            total_epochs: d.u64()?,
            batch: d.u64()?,
        };
        let stage = d.u64()?;
        let lr_scale = d.f32()?;
        let retries_left = d.u64()?;
        let rng = [d.u64()?, d.u64()?, d.u64()?, d.u64()?];
        let order = d.u64s()?;
        let epoch_losses = d.f32s()?;
        let validation_losses = d.f32s()?;
        let recoveries = d.u64()?;
        let best_val = d.f32()?;
        let since_best = d.u64()?;
        let n = d.u32()? as usize;
        let mut layers = Vec::with_capacity(n);
        for _ in 0..n {
            layers.push(decode_dense(&mut d)?);
        }
        let mut states = Vec::with_capacity(n);
        for _ in 0..n {
            states.push((decode_param_state(&mut d)?, decode_param_state(&mut d)?));
        }
        let best_layers = match d.u8()? {
            0 => None,
            1 => {
                let n = d.u32()? as usize;
                let mut best = Vec::with_capacity(n);
                for _ in 0..n {
                    best.push(decode_dense(&mut d)?);
                }
                Some(best)
            }
            other => {
                return Err(CheckpointError::Malformed(format!(
                    "unknown best-layers tag {other}"
                )))
            }
        };
        d.done()?;
        Ok(TrainState {
            fingerprint,
            stage,
            lr_scale,
            retries_left,
            rng,
            order,
            epoch_losses,
            validation_losses,
            recoveries,
            best_val,
            since_best,
            layers,
            states,
            best_layers,
        })
    }
}

/// CRC-64 fingerprint of a label vector (part of the resume identity).
pub(crate) fn labels_crc(labels: &[usize]) -> u64 {
    let mut e = Encoder::new();
    for &l in labels {
        e.u64(l as u64);
    }
    crc64(&e.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Mlp, TrainConfig};
    use crate::schedule::LrSchedule;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("leapme_nn_checkpoint_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn trained_net() -> Mlp {
        let x = crate::matrix::Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let y = vec![0, 1, 1, 0];
        let mut net = Mlp::new(&[2, 8, 2], 3);
        net.fit(
            &x,
            &y,
            &TrainConfig {
                schedule: LrSchedule::new(vec![(3, 1e-3)]),
                ..TrainConfig::default()
            },
        )
        .unwrap();
        net
    }

    #[test]
    fn crc64_known_vector() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn save_load_round_trip_is_bitwise() {
        let net = trained_net();
        let path = tmp("roundtrip.lmp");
        net.save(&path).unwrap();
        let back = Mlp::load(&path).unwrap();
        for (a, b) in net.layers().iter().zip(back.layers()) {
            assert_eq!(a.weights, b.weights);
            assert_eq!(a.bias, b.bias);
            assert_eq!(a.activation, b.activation);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn no_temp_file_left_behind() {
        let net = trained_net();
        let path = tmp("clean.lmp");
        net.save(&path).unwrap();
        let tmp_sibling = path.with_file_name("clean.lmp.tmp");
        assert!(!tmp_sibling.exists(), "temp file survived the rename");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_file_is_typed_error() {
        let net = trained_net();
        let path = tmp("truncated.lmp");
        net.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in [0, 4, HEADER_LEN, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let err = Mlp::load(&path).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. } | CheckpointError::InvalidMagic
                ),
                "cut={cut}: {err}"
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn payload_bit_flip_is_checksum_mismatch() {
        let net = trained_net();
        let path = tmp("bitflip.lmp");
        net.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN - TRAILER_LEN) / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Mlp::load(&path).unwrap_err(),
            CheckpointError::ChecksumMismatch { .. }
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn header_corruptions_are_typed() {
        let net = trained_net();
        let path = tmp("header.lmp");
        net.save(&path).unwrap();
        let clean = std::fs::read(&path).unwrap();

        let mut bad = clean.clone();
        bad[0] ^= 0xFF; // magic
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Mlp::load(&path).unwrap_err(),
            CheckpointError::InvalidMagic
        ));

        let mut bad = clean.clone();
        bad[8] = 99; // version
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Mlp::load(&path).unwrap_err(),
            CheckpointError::UnsupportedVersion { found: 99, .. }
        ));

        let mut bad = clean.clone();
        bad[12] = KIND_TRAIN_STATE; // kind
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Mlp::load(&path).unwrap_err(),
            CheckpointError::WrongKind {
                expected: KIND_MODEL,
                found: KIND_TRAIN_STATE
            }
        ));

        let mut bad = clean.clone();
        bad[13] = 7; // dtype
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Mlp::load(&path).unwrap_err(),
            CheckpointError::UnsupportedDtype(7)
        ));

        let mut bad = clean;
        bad[14] ^= 0x0F; // payload length
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Mlp::load(&path).unwrap_err(),
            CheckpointError::Truncated { .. } | CheckpointError::Malformed(_)
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn foreign_file_is_invalid_magic() {
        let path = tmp("foreign.lmp");
        std::fs::write(&path, b"{\"not\": \"a checkpoint\"}").unwrap();
        assert!(matches!(
            Mlp::load(&path).unwrap_err(),
            CheckpointError::InvalidMagic
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Mlp::load(Path::new("/nonexistent/model.lmp")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    #[test]
    fn corrupt_length_cannot_trigger_huge_allocation() {
        // A payload whose internal length prefix claims far more
        // elements than the payload holds must be rejected, not
        // allocated.
        let mut e = Encoder::new();
        e.u32(1);
        e.u64(2);
        e.u64(2);
        e.u8(0);
        e.u64(u64::MAX / 8); // absurd weight count
        let payload = e.finish();
        let mut d = Decoder::new(&payload);
        assert!(matches!(
            decode_mlp(&mut d).unwrap_err(),
            CheckpointError::Truncated { .. }
        ));
    }

    mod roundtrip_proptests {
        use super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Save → load is bitwise for random layer shapes, and a
            /// flipped byte anywhere in the file yields a typed error
            /// or (for header-field flips that still parse) a different
            /// but *validated* outcome — never a panic.
            #[test]
            fn random_shapes_roundtrip(
                input in 1usize..12,
                hidden in 1usize..10,
                classes in 2usize..5,
                seed in 0u64..1000,
                flip_at_frac in 0usize..100,
            ) {
                let net = Mlp::new(&[input, hidden, classes], seed);
                let path = tmp(&format!("prop_{input}_{hidden}_{classes}_{seed}.lmp"));
                net.save(&path).unwrap();
                let back = Mlp::load(&path).unwrap();
                for (a, b) in net.layers().iter().zip(back.layers()) {
                    prop_assert_eq!(&a.weights, &b.weights);
                    prop_assert_eq!(&a.bias, &b.bias);
                }

                // Corruption sweep: flip one random byte; load must not
                // panic and must not silently return different weights.
                let mut bytes = std::fs::read(&path).unwrap();
                let pos = flip_at_frac * (bytes.len() - 1) / 99;
                bytes[pos] ^= 1 << (seed % 8) as u8;
                let mut rng = StdRng::seed_from_u64(seed);
                let _ = rng.gen::<u64>();
                std::fs::write(&path, &bytes).unwrap();
                match Mlp::load(&path) {
                    Err(_) => {}
                    Ok(loaded) => {
                        // The flip landed somewhere the format does not
                        // cover only if the load still equals the saved
                        // network — anything else is silent corruption.
                        for (a, b) in net.layers().iter().zip(loaded.layers()) {
                            prop_assert_eq!(&a.weights, &b.weights);
                            prop_assert_eq!(&a.bias, &b.bias);
                        }
                    }
                }
                std::fs::remove_file(path).ok();
            }
        }
    }
}
