//! LEAPMECP v2: a zero-copy, section-table container format.
//!
//! The v1 container (see [`crate::checkpoint`]) is parse-on-load: the
//! whole payload is read, checksummed, and decoded f32-by-f32 into
//! freshly allocated `Vec`s — O(bytes) of copying paid on every open,
//! per process and per domain. v2 keeps the same magic and atomic-write
//! discipline but lays the payload out as *named, 64-byte-aligned,
//! individually checksummed raw sections* so a reader can map the file
//! once and hand out typed `&[f32]` views directly over the mapping:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"LEAPMECP"           (shared with v1)
//! 8       4     format version (u32 LE, = 2)
//! 12      1     kind   (same kind registry as v1)
//! 13      1     dtype  (container default; sections carry their own)
//! 14      4     section count (u32 LE)
//! 18      8     CRC-64/XZ of the section table bytes
//! 26      38    reserved (zero)
//! 64      n·64  section table, one 64-byte entry per section:
//!                 0   32  name (UTF-8, NUL-padded)
//!                 32  1   section dtype (0 = f32, 1 = raw bytes)
//!                 33  7   reserved (zero)
//!                 40  8   offset from file start (u64 LE, 64-aligned)
//!                 48  8   payload byte length (u64 LE)
//!                 56  8   CRC-64/XZ of the payload bytes
//! …       …     payload sections at their offsets, zero-padded between
//! ```
//!
//! Opening is O(1) in payload size: the header and table are validated
//! eagerly (magic, version, kind, table CRC, name uniqueness, 64-byte
//! alignment, in-bounds non-overlapping extents), while each section's
//! payload CRC is verified lazily on first access and memoized — so a
//! registry can hold many cold domains mapped without paying a
//! checksum sweep for models it never touches. [`V2Container::verify_all`]
//! forces the full sweep for drills and `leapme registry` inspection.
//!
//! The buffer behind the views is an `mmap(2)` of the file where the
//! platform allows (direct syscall — the vendored-offline policy rules
//! out binding crates), falling back to a single `read` into an
//! 8-byte-aligned owned buffer elsewhere, when the file is empty, when
//! the map call fails, or when `LEAPME_NO_MMAP` is set. Either way the
//! base is at least 8-byte aligned and every section offset is 64-byte
//! aligned, so `&[f32]` views are always properly aligned.
//!
//! v1 containers remain readable: [`open_any`] dispatches on the
//! version field, routing v1 files through the legacy parse path.

use crate::checkpoint::{crc64, CheckpointError, DTYPE_F32, MAGIC};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// v2 format version tag.
pub const FORMAT_VERSION_V2: u32 = 2;

/// Section dtype: little-endian `f32` payload, eligible for zero-copy
/// `&[f32]` views.
pub const SECTION_F32: u8 = 0;

/// Section dtype: opaque bytes (JSON, key tables, encoder output).
pub const SECTION_BYTES: u8 = 1;

/// Fixed byte width of the v2 header and of each section-table entry.
const HEADER_LEN: usize = 64;
const ENTRY_LEN: usize = 64;
const NAME_LEN: usize = 32;

/// How a v2 container's buffer was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenPath {
    /// Shared read-only `mmap` of the file — the zero-copy fast path.
    Mmap,
    /// Single `read` into an owned aligned buffer (mmap unavailable,
    /// refused, or disabled via `LEAPME_NO_MMAP`).
    Read,
}

impl OpenPath {
    /// Stable lowercase label for logs, metrics, and the CLI.
    pub fn label(self) -> &'static str {
        match self {
            OpenPath::Mmap => "mmap",
            OpenPath::Read => "read",
        }
    }
}

// ---------------------------------------------------------------------
// Buffer: the single mapped-or-read allocation behind all views.
//
// The only unsafe code in this module lives here, in three shapes, each
// individually justified:
//   * the `mmap`/`munmap` FFI (read-only, MAP_PRIVATE, length checked
//     against file metadata; the mapping outlives every view because
//     views re-derive their slices from the owning `V2Container` on
//     each access and never store pointers);
//   * viewing an owned `Vec<u64>` (8-byte aligned by construction) or
//     the page-aligned mapping as `&[u8]`/`&[f32]` — alignment is
//     checked before every cast and the bytes are immutable for the
//     buffer's lifetime.
// ---------------------------------------------------------------------
#[allow(unsafe_code)]
mod buffer {
    use super::OpenPath;
    use std::path::Path;

    #[cfg(all(unix, target_pointer_width = "64"))]
    mod sys {
        use std::os::raw::{c_int, c_void};
        pub const PROT_READ: c_int = 1;
        pub const MAP_PRIVATE: c_int = 2;
        extern "C" {
            pub fn mmap(
                addr: *mut c_void,
                len: usize,
                prot: c_int,
                flags: c_int,
                fd: c_int,
                offset: i64,
            ) -> *mut c_void;
            pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        }
    }

    /// The single read-only allocation a [`super::V2Container`] serves
    /// views from.
    pub(super) struct Buffer {
        imp: Imp,
    }

    enum Imp {
        #[cfg(all(unix, target_pointer_width = "64"))]
        Mapped { ptr: *const u8, len: usize },
        /// `Vec<u64>` rather than `Vec<u8>` so the base is 8-byte
        /// aligned; `len` is the real byte length (the last word may be
        /// zero-padded).
        Owned { words: Vec<u64>, len: usize },
    }

    // The mapping is read-only for its whole lifetime and the owned
    // variant is never mutated after construction, so shared access
    // from many threads is sound.
    unsafe impl Send for Buffer {}
    unsafe impl Sync for Buffer {}

    impl Buffer {
        /// Map `path` read-only when possible, else read it whole into
        /// an aligned owned buffer.
        pub(super) fn open(path: &Path) -> std::io::Result<(Buffer, OpenPath)> {
            #[cfg(all(unix, target_pointer_width = "64"))]
            if std::env::var_os("LEAPME_NO_MMAP").is_none() {
                if let Some(buf) = Self::try_mmap(path)? {
                    return Ok((buf, OpenPath::Mmap));
                }
            }
            Ok((Self::read_whole(path)?, OpenPath::Read))
        }

        #[cfg(all(unix, target_pointer_width = "64"))]
        fn try_mmap(path: &Path) -> std::io::Result<Option<Buffer>> {
            use std::os::unix::io::AsRawFd;
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            if len == 0 || len > usize::MAX as u64 {
                return Ok(None); // empty files cannot be mapped
            }
            let len = len as usize;
            // SAFETY: read-only private mapping of `len` bytes of an
            // open fd; a MAP_FAILED (-1) return falls back to read().
            // The fd may be closed after mmap returns — the mapping
            // holds its own reference to the file.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 || ptr.is_null() {
                return Ok(None);
            }
            Ok(Some(Buffer {
                imp: Imp::Mapped {
                    ptr: ptr as *const u8,
                    len,
                },
            }))
        }

        fn read_whole(path: &Path) -> std::io::Result<Buffer> {
            Ok(Self::from_vec(std::fs::read(path)?))
        }

        /// Build from in-memory bytes (tests, corruption drills).
        pub(super) fn from_vec(bytes: Vec<u8>) -> Buffer {
            let len = bytes.len();
            let mut words = vec![0u64; len.div_ceil(8)];
            // SAFETY: `words` owns at least `len` writable bytes and
            // the ranges cannot overlap (freshly allocated).
            unsafe {
                std::ptr::copy_nonoverlapping(bytes.as_ptr(), words.as_mut_ptr() as *mut u8, len);
            }
            Buffer {
                imp: Imp::Owned { words, len },
            }
        }

        /// The whole buffer as bytes.
        pub(super) fn bytes(&self) -> &[u8] {
            match &self.imp {
                #[cfg(all(unix, target_pointer_width = "64"))]
                // SAFETY: `ptr` maps exactly `len` readable bytes for
                // the lifetime of `self` (unmapped only in Drop).
                Imp::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
                // SAFETY: `words` owns ≥ `len` initialized bytes.
                Imp::Owned { words, len } => unsafe {
                    std::slice::from_raw_parts(words.as_ptr() as *const u8, *len)
                },
            }
        }
    }

    impl Drop for Buffer {
        fn drop(&mut self) {
            #[cfg(all(unix, target_pointer_width = "64"))]
            if let Imp::Mapped { ptr, len } = self.imp {
                // SAFETY: exactly the range mmap returned; no view can
                // outlive `self` (they borrow from the container).
                unsafe {
                    sys::munmap(ptr as *mut std::os::raw::c_void, len);
                }
            }
        }
    }

    /// Reinterpret little-endian `f32` bytes as a typed slice without
    /// copying. Returns `None` when the length or base alignment does
    /// not permit it, or on big-endian hosts (where the bytes are not
    /// native `f32`s and the caller must decode a copy).
    pub(super) fn f32_view(bytes: &[u8]) -> Option<&[f32]> {
        if !bytes.len().is_multiple_of(4) || !(bytes.as_ptr() as usize).is_multiple_of(4) {
            return None;
        }
        #[cfg(target_endian = "little")]
        {
            // SAFETY: alignment and length checked above; any bit
            // pattern is a valid f32; the borrow pins the buffer.
            Some(unsafe {
                std::slice::from_raw_parts(bytes.as_ptr() as *const f32, bytes.len() / 4)
            })
        }
        #[cfg(not(target_endian = "little"))]
        {
            None
        }
    }
}

use buffer::Buffer;

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

/// Builder for a v2 container: accumulate named sections, then
/// [`V2Writer::write`] them atomically (temp + fsync + rename, same
/// protocol as v1).
#[derive(Debug)]
pub struct V2Writer {
    kind: u8,
    sections: Vec<(String, u8, Vec<u8>)>,
}

impl V2Writer {
    /// Start a container of `kind` (the v1 kind registry applies).
    pub fn new(kind: u8) -> Self {
        V2Writer {
            kind,
            sections: Vec::new(),
        }
    }

    /// Append an opaque byte section.
    pub fn bytes(&mut self, name: &str, payload: &[u8]) {
        self.sections
            .push((name.to_string(), SECTION_BYTES, payload.to_vec()));
    }

    /// Append an `f32` section (stored little-endian, bitwise).
    pub fn f32s(&mut self, name: &str, payload: &[f32]) {
        let mut bytes = Vec::with_capacity(payload.len() * 4);
        for &v in payload {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.sections.push((name.to_string(), SECTION_F32, bytes));
    }

    /// Serialize the container to bytes. Fails on empty, duplicate, or
    /// over-long section names — writer bugs, surfaced as typed errors
    /// rather than corrupt files.
    pub fn finish(self) -> Result<Vec<u8>, CheckpointError> {
        let count = self.sections.len();
        for (i, (name, _, _)) in self.sections.iter().enumerate() {
            if name.is_empty() || name.len() > NAME_LEN {
                return Err(CheckpointError::Malformed(format!(
                    "section name {name:?} must be 1..={NAME_LEN} bytes"
                )));
            }
            if name.as_bytes().contains(&0) {
                return Err(CheckpointError::Malformed(format!(
                    "section name {name:?} contains NUL"
                )));
            }
            if self.sections[..i].iter().any(|(n, _, _)| n == name) {
                return Err(CheckpointError::Malformed(format!(
                    "duplicate section name {name:?}"
                )));
            }
        }

        let table_start = HEADER_LEN;
        let data_start = table_start + count * ENTRY_LEN;
        // Section offsets: ascending, each aligned up to 64.
        let mut offsets = Vec::with_capacity(count);
        let mut cursor = align64(data_start as u64);
        for (_, _, payload) in &self.sections {
            offsets.push(cursor);
            cursor = align64(cursor + payload.len() as u64);
        }
        let total = self
            .sections
            .last()
            .map(|(_, _, p)| offsets[count - 1] + p.len() as u64)
            .unwrap_or(data_start as u64) as usize;

        let mut table = Vec::with_capacity(count * ENTRY_LEN);
        for (i, (name, dtype, payload)) in self.sections.iter().enumerate() {
            let mut entry = [0u8; ENTRY_LEN];
            entry[..name.len()].copy_from_slice(name.as_bytes());
            entry[NAME_LEN] = *dtype;
            entry[40..48].copy_from_slice(&offsets[i].to_le_bytes());
            entry[48..56].copy_from_slice(&(payload.len() as u64).to_le_bytes());
            entry[56..64].copy_from_slice(&crc64(payload).to_le_bytes());
            table.extend_from_slice(&entry);
        }

        let mut out = vec![0u8; total];
        out[..8].copy_from_slice(&MAGIC);
        out[8..12].copy_from_slice(&FORMAT_VERSION_V2.to_le_bytes());
        out[12] = self.kind;
        out[13] = DTYPE_F32;
        out[14..18].copy_from_slice(&(count as u32).to_le_bytes());
        out[18..26].copy_from_slice(&crc64(&table).to_le_bytes());
        out[table_start..data_start].copy_from_slice(&table);
        for (i, (_, _, payload)) in self.sections.iter().enumerate() {
            let at = offsets[i] as usize;
            out[at..at + payload.len()].copy_from_slice(payload);
        }
        Ok(out)
    }

    /// Serialize and write atomically to `path`. Visits the
    /// `nn.checkpoint.write` fault site like the v1 writer, so chaos
    /// suites exercise torn/failed writes on both formats.
    pub fn write(self, path: &Path) -> Result<(), CheckpointError> {
        let bytes = self.finish()?;
        if let Some(e) = crate::checkpoint::injected_write_fault(path, &bytes) {
            return Err(CheckpointError::Io(e));
        }
        crate::checkpoint::atomic_write_bytes(path, &bytes)?;
        Ok(())
    }
}

fn align64(n: u64) -> u64 {
    n.div_ceil(64) * 64
}

// ---------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------

/// One parsed section-table entry. The name stays a fixed inline array
/// (no per-section `String`) so opening a container performs a constant
/// number of allocations regardless of section count or payload size.
struct Section {
    name: [u8; NAME_LEN],
    name_len: u8,
    dtype: u8,
    offset: u64,
    len: u64,
    crc: u64,
}

impl Section {
    fn name(&self) -> &str {
        // Validated UTF-8 at parse time.
        std::str::from_utf8(&self.name[..self.name_len as usize]).expect("validated at parse")
    }
}

/// Read-only description of one section, for inspection tooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionInfo<'a> {
    /// Section name.
    pub name: &'a str,
    /// Section dtype ([`SECTION_F32`] or [`SECTION_BYTES`]).
    pub dtype: u8,
    /// Byte offset from the start of the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Recorded CRC-64 of the payload.
    pub crc: u64,
}

/// An open v2 container: one mapped (or read) buffer plus the parsed
/// section table. Payload CRCs are verified lazily on first access and
/// memoized; [`V2Container::verify_all`] forces the full sweep.
pub struct V2Container {
    buf: Buffer,
    kind: u8,
    open_path: OpenPath,
    table: Vec<Section>,
    verified: Vec<AtomicBool>,
}

impl std::fmt::Debug for V2Container {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("V2Container")
            .field("kind", &self.kind)
            .field("open_path", &self.open_path)
            .field("sections", &self.table.len())
            .field("bytes", &self.buf.bytes().len())
            .finish()
    }
}

impl V2Container {
    /// Open `path`, validating the header and section table eagerly
    /// (payload CRCs stay lazy). Dispatch between mmap and read per the
    /// module docs.
    ///
    /// Fault builds visit the `nn.checkpoint.read` site: a fired fault
    /// corrupts an owned copy of the bytes and the open verifies every
    /// section eagerly on that copy, so short reads, bit flips, and io
    /// errors surface as typed errors at open on both formats — the
    /// mmap itself is read-only and cannot be corrupted in place.
    pub fn open(path: &Path, expected_kind: u8) -> Result<Self, CheckpointError> {
        let (buf, open_path) = Buffer::open(path)?;
        #[cfg(feature = "faults")]
        {
            let mut copy = buf.bytes().to_vec();
            crate::checkpoint::injected_read_fault(&mut copy)?;
            if copy != buf.bytes() {
                let c = Self::from_buffer(Buffer::from_vec(copy), OpenPath::Read, expected_kind)?;
                c.verify_all()?;
                return Ok(c);
            }
        }
        Self::from_buffer(buf, open_path, expected_kind)
    }

    /// Parse in-memory container bytes (tests, corruption drills).
    pub fn from_bytes(bytes: Vec<u8>, expected_kind: u8) -> Result<Self, CheckpointError> {
        Self::from_buffer(Buffer::from_vec(bytes), OpenPath::Read, expected_kind)
    }

    fn from_buffer(
        buf: Buffer,
        open_path: OpenPath,
        expected_kind: u8,
    ) -> Result<Self, CheckpointError> {
        let bytes = buf.bytes();
        if bytes.len() < HEADER_LEN {
            if !MAGIC.starts_with(&bytes[..bytes.len().min(8)]) {
                return Err(CheckpointError::InvalidMagic);
            }
            return Err(CheckpointError::Truncated {
                expected: HEADER_LEN,
                actual: bytes.len(),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(CheckpointError::InvalidMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION_V2 {
            return Err(CheckpointError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION_V2,
            });
        }
        let kind = bytes[12];
        if kind != expected_kind {
            return Err(CheckpointError::WrongKind {
                expected: expected_kind,
                found: kind,
            });
        }
        let dtype = bytes[13];
        if dtype != DTYPE_F32 {
            return Err(CheckpointError::UnsupportedDtype(dtype));
        }
        let count = u32::from_le_bytes(bytes[14..18].try_into().expect("4 bytes")) as usize;
        let table_crc = u64::from_le_bytes(bytes[18..26].try_into().expect("8 bytes"));
        let data_start = HEADER_LEN
            .checked_add(count.checked_mul(ENTRY_LEN).ok_or_else(|| {
                CheckpointError::Malformed("section count overflows".into())
            })?)
            .ok_or_else(|| CheckpointError::Malformed("section table overflows".into()))?;
        if bytes.len() < data_start {
            return Err(CheckpointError::Truncated {
                expected: data_start,
                actual: bytes.len(),
            });
        }
        let table_bytes = &bytes[HEADER_LEN..data_start];
        let actual_crc = crc64(table_bytes);
        if actual_crc != table_crc {
            return Err(CheckpointError::ChecksumMismatch {
                expected: table_crc,
                actual: actual_crc,
            });
        }

        let mut table = Vec::with_capacity(count);
        let mut prev_end = data_start as u64;
        for (i, entry) in table_bytes.chunks_exact(ENTRY_LEN).enumerate() {
            let name_len = entry[..NAME_LEN]
                .iter()
                .position(|&b| b == 0)
                .unwrap_or(NAME_LEN);
            if name_len == 0 {
                return Err(CheckpointError::Malformed(format!(
                    "section {i} has an empty name"
                )));
            }
            let name_str = std::str::from_utf8(&entry[..name_len]).map_err(|_| {
                CheckpointError::Malformed(format!("section {i} name is not UTF-8"))
            })?;
            let dtype = entry[NAME_LEN];
            if dtype != SECTION_F32 && dtype != SECTION_BYTES {
                return Err(CheckpointError::UnsupportedDtype(dtype));
            }
            let offset = u64::from_le_bytes(entry[40..48].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(entry[48..56].try_into().expect("8 bytes"));
            let crc = u64::from_le_bytes(entry[56..64].try_into().expect("8 bytes"));
            if offset % 64 != 0 {
                return Err(CheckpointError::Malformed(format!(
                    "section {name_str:?} offset {offset} is not 64-byte aligned"
                )));
            }
            if offset < prev_end {
                return Err(CheckpointError::Malformed(format!(
                    "section {name_str:?} at offset {offset} overlaps earlier data"
                )));
            }
            let end = offset.checked_add(len).ok_or_else(|| {
                CheckpointError::Malformed(format!("section {name_str:?} extent overflows"))
            })?;
            if end > bytes.len() as u64 {
                return Err(CheckpointError::Truncated {
                    expected: end as usize,
                    actual: bytes.len(),
                });
            }
            if dtype == SECTION_F32 && len % 4 != 0 {
                return Err(CheckpointError::Malformed(format!(
                    "f32 section {name_str:?} byte length {len} is not a multiple of 4"
                )));
            }
            let mut name = [0u8; NAME_LEN];
            name[..name_len].copy_from_slice(&entry[..name_len]);
            if table.iter().any(|s: &Section| s.name() == name_str) {
                return Err(CheckpointError::Malformed(format!(
                    "duplicate section name {name_str:?}"
                )));
            }
            prev_end = end;
            table.push(Section {
                name,
                name_len: name_len as u8,
                dtype,
                offset,
                len,
                crc,
            });
        }

        let verified = (0..table.len()).map(|_| AtomicBool::new(false)).collect();
        Ok(V2Container {
            buf,
            kind,
            open_path,
            table,
            verified,
        })
    }

    /// Container kind byte.
    pub fn kind(&self) -> u8 {
        self.kind
    }

    /// How the buffer was obtained.
    pub fn open_path(&self) -> OpenPath {
        self.open_path
    }

    /// Total bytes mapped or read for this container.
    pub fn total_bytes(&self) -> u64 {
        self.buf.bytes().len() as u64
    }

    /// The section table, in file order.
    pub fn sections(&self) -> impl Iterator<Item = SectionInfo<'_>> {
        self.table.iter().map(|s| SectionInfo {
            name: s.name(),
            dtype: s.dtype,
            offset: s.offset,
            len: s.len,
            crc: s.crc,
        })
    }

    fn find(&self, name: &str) -> Result<usize, CheckpointError> {
        self.table
            .iter()
            .position(|s| s.name() == name)
            .ok_or_else(|| CheckpointError::Malformed(format!("missing section {name:?}")))
    }

    fn raw(&self, idx: usize) -> &[u8] {
        let s = &self.table[idx];
        &self.buf.bytes()[s.offset as usize..(s.offset + s.len) as usize]
    }

    /// Verify section `idx`'s payload CRC once, memoized.
    fn ensure_verified(&self, idx: usize) -> Result<(), CheckpointError> {
        if self.verified[idx].load(Ordering::Relaxed) {
            return Ok(());
        }
        let actual = crc64(self.raw(idx));
        if actual != self.table[idx].crc {
            return Err(CheckpointError::ChecksumMismatch {
                expected: self.table[idx].crc,
                actual,
            });
        }
        self.verified[idx].store(true, Ordering::Relaxed);
        Ok(())
    }

    /// A section's payload bytes, CRC-verified (lazily, memoized).
    pub fn section_bytes(&self, name: &str) -> Result<&[u8], CheckpointError> {
        let idx = self.find(name)?;
        self.ensure_verified(idx)?;
        Ok(self.raw(idx))
    }

    /// An `f32` section decoded into an owned `Vec` — the portable path
    /// for small sections (biases, scaler rows) and big-endian hosts.
    pub fn section_f32_vec(&self, name: &str) -> Result<Vec<f32>, CheckpointError> {
        let idx = self.find(name)?;
        if self.table[idx].dtype != SECTION_F32 {
            return Err(CheckpointError::Malformed(format!(
                "section {name:?} is not an f32 section"
            )));
        }
        self.ensure_verified(idx)?;
        let bytes = self.raw(idx);
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// A zero-copy typed view of an `f32` section, CRC-verified. The
    /// keep-alive for the mapping is the container itself — use
    /// [`V2Container::f32_section`] for an owning handle.
    pub fn section_f32s(&self, name: &str) -> Result<&[f32], CheckpointError> {
        let idx = self.find(name)?;
        if self.table[idx].dtype != SECTION_F32 {
            return Err(CheckpointError::Malformed(format!(
                "section {name:?} is not an f32 section"
            )));
        }
        self.ensure_verified(idx)?;
        buffer::f32_view(self.raw(idx)).ok_or_else(|| {
            CheckpointError::Malformed(format!(
                "section {name:?} cannot be viewed zero-copy on this host"
            ))
        })
    }

    /// An owning `AsRef<[f32]>` handle over a section: keeps the
    /// container (and its mapping) alive, re-derives the typed view on
    /// each access. Zero-copy on little-endian hosts; decodes one owned
    /// copy on big-endian hosts. CRC is verified here, once.
    pub fn f32_section(self: &Arc<Self>, name: &str) -> Result<F32Section, CheckpointError> {
        let idx = self.find(name)?;
        if self.table[idx].dtype != SECTION_F32 {
            return Err(CheckpointError::Malformed(format!(
                "section {name:?} is not an f32 section"
            )));
        }
        self.ensure_verified(idx)?;
        if buffer::f32_view(self.raw(idx)).is_some() {
            Ok(F32Section {
                inner: F32Inner::View {
                    container: Arc::clone(self),
                    index: idx,
                },
            })
        } else {
            Ok(F32Section {
                inner: F32Inner::Owned(self.section_f32_vec(name)?),
            })
        }
    }

    /// Like [`V2Container::f32_section`], but with the payload checksum
    /// deferred: the handle comes back in O(1) no matter how large the
    /// section is, and integrity becomes the caller's explicit
    /// responsibility via [`V2Container::verify_all`] (the registry
    /// inspect and upgrade paths run exactly that sweep). The zero-copy
    /// feature-cache open uses this so faulting a multi-megabyte slab
    /// in costs no checksum pass; offsets and extents were still fully
    /// validated against the CRC-checked section table at open, so the
    /// view itself can never read out of bounds.
    ///
    /// On hosts where the zero-copy view is unavailable (alignment,
    /// endianness) the fallback decode touches every payload byte
    /// anyway, so it verifies eagerly like [`V2Container::f32_section`].
    pub fn f32_section_lazy(self: &Arc<Self>, name: &str) -> Result<F32Section, CheckpointError> {
        let idx = self.find(name)?;
        if self.table[idx].dtype != SECTION_F32 {
            return Err(CheckpointError::Malformed(format!(
                "section {name:?} is not an f32 section"
            )));
        }
        if buffer::f32_view(self.raw(idx)).is_some() {
            Ok(F32Section {
                inner: F32Inner::View {
                    container: Arc::clone(self),
                    index: idx,
                },
            })
        } else {
            self.ensure_verified(idx)?;
            Ok(F32Section {
                inner: F32Inner::Owned(self.section_f32_vec(name)?),
            })
        }
    }

    /// Verify every section's payload CRC (drills, inspection,
    /// `registry upgrade`). Memoizes like the lazy path.
    pub fn verify_all(&self) -> Result<(), CheckpointError> {
        for idx in 0..self.table.len() {
            self.ensure_verified(idx)?;
        }
        Ok(())
    }
}

/// Owning handle over one `f32` section (see
/// [`V2Container::f32_section`]). Implements `AsRef<[f32]>`, so it can
/// back a `leapme_nn::matrix::Matrix` via `Matrix::from_shared` or a
/// feature slab, pinning the mapping for as long as any user holds it.
pub struct F32Section {
    inner: F32Inner,
}

enum F32Inner {
    View {
        container: Arc<V2Container>,
        index: usize,
    },
    Owned(Vec<f32>),
}

impl AsRef<[f32]> for F32Section {
    fn as_ref(&self) -> &[f32] {
        match &self.inner {
            F32Inner::View { container, index } => {
                buffer::f32_view(container.raw(*index)).expect("validated at handle creation")
            }
            F32Inner::Owned(v) => v,
        }
    }
}

impl std::fmt::Debug for F32Section {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F32Section(len={})", self.as_ref().len())
    }
}

// ---------------------------------------------------------------------
// Version dispatch.
// ---------------------------------------------------------------------

/// A container opened by [`open_any`]: either a fully parsed v1 payload
/// (legacy path) or an open v2 container.
#[derive(Debug)]
pub enum Opened {
    /// Legacy v1: the checksum-verified payload bytes, owned.
    V1(Vec<u8>),
    /// v2: the open container, ready for zero-copy views.
    V2(Arc<V2Container>),
}

/// Open a container of either format version, dispatching on the
/// version field: v1 files take the legacy parse path (including its
/// fault-injection hooks), v2 files the zero-copy path.
pub fn open_any(path: &Path, expected_kind: u8) -> Result<Opened, CheckpointError> {
    use std::io::Read as _;
    let mut head = [0u8; 12];
    let mut file = std::fs::File::open(path)?;
    let mut filled = 0;
    while filled < head.len() {
        match file.read(&mut head[filled..])? {
            0 => break,
            n => filled += n,
        }
    }
    drop(file);
    if filled < head.len() {
        if !MAGIC.starts_with(&head[..filled.min(8)]) {
            return Err(CheckpointError::InvalidMagic);
        }
        return Err(CheckpointError::Truncated {
            expected: head.len(),
            actual: filled,
        });
    }
    if head[..8] != MAGIC {
        return Err(CheckpointError::InvalidMagic);
    }
    match u32::from_le_bytes(head[8..12].try_into().expect("4 bytes")) {
        1 => Ok(Opened::V1(crate::checkpoint::read_container(
            path,
            expected_kind,
        )?)),
        2 => Ok(Opened::V2(Arc::new(V2Container::open(
            path,
            expected_kind,
        )?))),
        v => Err(CheckpointError::UnsupportedVersion {
            found: v,
            supported: FORMAT_VERSION_V2,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{write_container, KIND_MODEL, KIND_PIPELINE};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "leapme-container2-{}-{}",
            std::process::id(),
            name
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_bytes() -> Vec<u8> {
        let mut w = V2Writer::new(KIND_MODEL);
        w.f32s("w0", &[1.0, -2.5, 3.25, f32::MIN_POSITIVE]);
        w.bytes("meta", b"hello meta");
        w.f32s("w1", &[0.0; 33]);
        w.finish().unwrap()
    }

    #[test]
    fn round_trips_sections_bitwise() {
        let bytes = sample_bytes();
        let c = V2Container::from_bytes(bytes, KIND_MODEL).unwrap();
        assert_eq!(
            c.section_f32s("w0").unwrap(),
            &[1.0, -2.5, 3.25, f32::MIN_POSITIVE]
        );
        assert_eq!(c.section_bytes("meta").unwrap(), b"hello meta");
        assert_eq!(c.section_f32s("w1").unwrap(), &[0.0; 33]);
        assert_eq!(c.section_f32_vec("w0").unwrap(), vec![1.0, -2.5, 3.25, f32::MIN_POSITIVE]);
        c.verify_all().unwrap();
        assert_eq!(c.sections().count(), 3);
    }

    #[test]
    fn sections_are_64_byte_aligned() {
        let bytes = sample_bytes();
        let c = V2Container::from_bytes(bytes, KIND_MODEL).unwrap();
        for s in c.sections() {
            assert_eq!(s.offset % 64, 0, "section {} misaligned", s.name);
        }
    }

    #[test]
    fn open_from_disk_and_handle_outlives_container_binding() {
        let path = tmp("disk.l2c");
        let mut w = V2Writer::new(KIND_MODEL);
        w.f32s("w0", &[4.0, 5.0, 6.0]);
        w.write(&path).unwrap();
        let c = Arc::new(V2Container::open(&path, KIND_MODEL).unwrap());
        let handle = c.f32_section("w0").unwrap();
        drop(c); // handle keeps the mapping alive
        assert_eq!(handle.as_ref(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn no_mmap_env_forces_read_path() {
        let path = tmp("nommap.l2c");
        let mut w = V2Writer::new(KIND_MODEL);
        w.f32s("w0", &[1.0]);
        w.write(&path).unwrap();
        // Serially flip the env var; tests in this module that open
        // from disk tolerate either path.
        std::env::set_var("LEAPME_NO_MMAP", "1");
        let c = V2Container::open(&path, KIND_MODEL).unwrap();
        std::env::remove_var("LEAPME_NO_MMAP");
        assert_eq!(c.open_path(), OpenPath::Read);
        assert_eq!(c.section_f32s("w0").unwrap(), &[1.0]);
    }

    #[test]
    fn wrong_kind_and_missing_section_are_typed() {
        let bytes = sample_bytes();
        match V2Container::from_bytes(bytes.clone(), KIND_PIPELINE) {
            Err(CheckpointError::WrongKind { expected, found }) => {
                assert_eq!((expected, found), (KIND_PIPELINE, KIND_MODEL));
            }
            other => panic!("expected WrongKind, got {other:?}"),
        }
        let c = V2Container::from_bytes(bytes, KIND_MODEL).unwrap();
        assert!(matches!(
            c.section_bytes("nope"),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn payload_bit_flip_is_a_checksum_mismatch() {
        let mut bytes = sample_bytes();
        // Flip a bit inside the first section's payload (offset 256 is
        // past header + 3 entries, aligned start of section data).
        let c = V2Container::from_bytes(bytes.clone(), KIND_MODEL).unwrap();
        let off = c.sections().next().unwrap().offset as usize;
        drop(c);
        bytes[off] ^= 0x01;
        let c = V2Container::from_bytes(bytes, KIND_MODEL).unwrap(); // open stays lazy
        assert!(matches!(
            c.section_f32s("w0"),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        assert!(c.verify_all().is_err());
    }

    #[test]
    fn lazy_f32_handle_skips_the_checksum_but_verify_all_still_objects() {
        let mut bytes = sample_bytes();
        let c = V2Container::from_bytes(bytes.clone(), KIND_MODEL).unwrap();
        let off = c.sections().next().unwrap().offset as usize;
        drop(c);
        bytes[off] ^= 0x01;
        let c = Arc::new(V2Container::from_bytes(bytes, KIND_MODEL).unwrap());
        // The deferred handle opens (and reads) without a sweep — the
        // deal is that integrity moves to the explicit verify — but the
        // sweep itself must still catch the flip.
        let handle = c.f32_section_lazy("w0").unwrap();
        assert_eq!(handle.as_ref().len(), 4);
        assert!(matches!(
            c.verify_all(),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn table_bit_flip_fails_at_open() {
        let mut bytes = sample_bytes();
        bytes[HEADER_LEN + 3] ^= 0x40; // inside the first table entry
        assert!(matches!(
            V2Container::from_bytes(bytes, KIND_MODEL),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncations_are_typed_errors() {
        let bytes = sample_bytes();
        for cut in [0, 7, 11, HEADER_LEN - 1, HEADER_LEN + 10, bytes.len() - 1] {
            let err = V2Container::from_bytes(bytes[..cut].to_vec(), KIND_MODEL)
                .err()
                .unwrap_or_else(|| panic!("cut at {cut} must fail"));
            match err {
                CheckpointError::InvalidMagic
                | CheckpointError::Truncated { .. }
                | CheckpointError::ChecksumMismatch { .. } => {}
                other => panic!("cut at {cut}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn open_any_dispatches_versions() {
        let v1 = tmp("any.v1");
        write_container(&v1, KIND_MODEL, b"payload").unwrap();
        match open_any(&v1, KIND_MODEL).unwrap() {
            Opened::V1(payload) => assert_eq!(payload, b"payload"),
            other => panic!("expected V1, got {other:?}"),
        }

        let v2 = tmp("any.v2");
        let mut w = V2Writer::new(KIND_MODEL);
        w.f32s("w0", &[9.0]);
        w.write(&v2).unwrap();
        match open_any(&v2, KIND_MODEL).unwrap() {
            Opened::V2(c) => assert_eq!(c.section_f32s("w0").unwrap(), &[9.0]),
            other => panic!("expected V2, got {other:?}"),
        }

        let junk = tmp("any.junk");
        std::fs::write(&junk, b"not a container at all").unwrap();
        assert!(matches!(
            open_any(&junk, KIND_MODEL),
            Err(CheckpointError::InvalidMagic)
        ));

        let v9 = tmp("any.v9");
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&9u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 52]);
        std::fs::write(&v9, &bytes).unwrap();
        assert!(matches!(
            open_any(&v9, KIND_MODEL),
            Err(CheckpointError::UnsupportedVersion { found: 9, .. })
        ));
    }

    #[test]
    fn writer_rejects_bad_section_names() {
        let mut w = V2Writer::new(KIND_MODEL);
        w.f32s("", &[1.0]);
        assert!(w.finish().is_err());

        let mut w = V2Writer::new(KIND_MODEL);
        w.f32s("dup", &[1.0]);
        w.f32s("dup", &[2.0]);
        assert!(w.finish().is_err());

        let mut w = V2Writer::new(KIND_MODEL);
        w.f32s(&"x".repeat(NAME_LEN + 1), &[1.0]);
        assert!(w.finish().is_err());
    }

    #[test]
    fn empty_container_round_trips() {
        let bytes = V2Writer::new(KIND_MODEL).finish().unwrap();
        let c = V2Container::from_bytes(bytes, KIND_MODEL).unwrap();
        assert_eq!(c.sections().count(), 0);
        c.verify_all().unwrap();
    }

    #[test]
    fn misaligned_offset_is_rejected() {
        let mut bytes = sample_bytes();
        // Nudge the first section's recorded offset off alignment and
        // re-seal the table CRC so only the alignment check can fire.
        let entry = HEADER_LEN;
        let mut off = u64::from_le_bytes(bytes[entry + 40..entry + 48].try_into().unwrap());
        off += 4;
        bytes[entry + 40..entry + 48].copy_from_slice(&off.to_le_bytes());
        let count =
            u32::from_le_bytes(bytes[14..18].try_into().unwrap()) as usize;
        let table_crc = crc64(&bytes[HEADER_LEN..HEADER_LEN + count * ENTRY_LEN]);
        bytes[18..26].copy_from_slice(&table_crc.to_le_bytes());
        match V2Container::from_bytes(bytes, KIND_MODEL) {
            Err(CheckpointError::Malformed(m)) => assert!(m.contains("aligned"), "{m}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }
}
