//! Weight initialization schemes.
//!
//! ReLU hidden layers use He (Kaiming) initialization; the softmax output
//! layer uses Xavier (Glorot). Both draw from a uniform distribution with
//! the appropriate variance, seeded deterministically so that an entire
//! LEAPME run is reproducible from a single seed.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// An initialization scheme for a dense layer's weight matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// He/Kaiming uniform: `U(−√(6/fan_in), √(6/fan_in))`, suited to ReLU.
    HeUniform,
    /// Xavier/Glorot uniform: `U(−√(6/(fan_in+fan_out)), …)`, suited to
    /// linear/softmax layers.
    XavierUniform,
    /// All zeros (used for biases and in tests).
    Zeros,
}

impl Init {
    /// Sample a `fan_in × fan_out` weight matrix.
    pub fn sample(self, fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
        let limit = match self {
            Init::HeUniform => (6.0 / fan_in.max(1) as f64).sqrt(),
            Init::XavierUniform => (6.0 / (fan_in + fan_out).max(1) as f64).sqrt(),
            Init::Zeros => 0.0,
        };
        let mut m = Matrix::zeros(fan_in, fan_out);
        if limit > 0.0 {
            for v in m.data_mut() {
                *v = rng.gen_range(-limit..limit) as f32;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn he_bounds_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Init::HeUniform.sample(64, 32, &mut rng);
        let limit = (6.0f64 / 64.0).sqrt() as f32;
        assert!(m.data().iter().all(|v| v.abs() <= limit));
        // Not degenerate: plenty of distinct values.
        let distinct: std::collections::HashSet<u32> =
            m.data().iter().map(|v| v.to_bits()).collect();
        assert!(distinct.len() > 100);
    }

    #[test]
    fn xavier_tighter_than_he_for_wide_output() {
        let mut rng = StdRng::seed_from_u64(2);
        let he = Init::HeUniform.sample(10, 1000, &mut rng);
        let xa = Init::XavierUniform.sample(10, 1000, &mut rng);
        let max_he = he.data().iter().fold(0.0f32, |a, v| a.max(v.abs()));
        let max_xa = xa.data().iter().fold(0.0f32, |a, v| a.max(v.abs()));
        assert!(max_xa < max_he);
    }

    #[test]
    fn zeros_is_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Init::Zeros.sample(4, 4, &mut rng);
        assert!(m.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a = Init::HeUniform.sample(8, 8, &mut r1);
        let b = Init::HeUniform.sample(8, 8, &mut r2);
        assert_eq!(a, b);
    }
}
