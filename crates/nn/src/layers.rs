//! Dense (fully connected) layers with activations.

use crate::init::Init;
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Element-wise activation applied after a dense layer's affine transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// No activation (used before the softmax output).
    Identity,
}

impl Activation {
    /// Apply the activation in place.
    pub fn forward_inplace(self, m: &mut Matrix) {
        if self == Activation::Relu {
            m.map_inplace(|v| v.max(0.0));
        }
    }

    /// Multiply `grad` in place by the activation derivative evaluated at
    /// the *post-activation* values `activated`.
    ///
    /// For ReLU the derivative is `1` where the output is positive, `0`
    /// elsewhere, so post-activation values are sufficient.
    pub fn backward_inplace(self, grad: &mut Matrix, activated: &Matrix) {
        if self == Activation::Relu {
            assert_eq!(grad.shape(), activated.shape(), "activation grad shape");
            for (g, &a) in grad.data_mut().iter_mut().zip(activated.data()) {
                if a <= 0.0 {
                    *g = 0.0;
                }
            }
        }
    }
}

/// A fully connected layer: `y = act(x · W + b)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix of shape `in_dim × out_dim`.
    pub weights: Matrix,
    /// Bias vector of length `out_dim`.
    pub bias: Vec<f32>,
    /// Activation applied after the affine transform.
    pub activation: Activation,
}

/// Cached forward state needed by backprop.
#[derive(Debug, Clone)]
pub struct DenseCache {
    /// The layer input (batch × in_dim).
    pub input: Matrix,
    /// The post-activation output (batch × out_dim).
    pub output: Matrix,
}

/// Gradients of a dense layer's parameters.
#[derive(Debug, Clone)]
pub struct DenseGrads {
    /// ∂L/∂W, same shape as the weights.
    pub weights: Matrix,
    /// ∂L/∂b, same length as the bias.
    pub bias: Vec<f32>,
}

impl DenseGrads {
    /// An empty gradient buffer; sized lazily by [`Dense::backward_into`].
    pub fn empty() -> Self {
        DenseGrads {
            weights: Matrix::zeros(0, 0),
            bias: Vec::new(),
        }
    }
}

impl Dense {
    /// A new dense layer with the given initialization (bias starts at 0).
    pub fn new(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        init: Init,
        rng: &mut StdRng,
    ) -> Self {
        Dense {
            weights: init.sample(in_dim, out_dim, rng),
            bias: vec![0.0; out_dim],
            activation,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }

    /// Forward pass; returns the output and the cache for backprop.
    ///
    /// # Panics
    ///
    /// Panics if `input.cols() != self.in_dim()`.
    pub fn forward(&self, input: &Matrix) -> (Matrix, DenseCache) {
        let mut out = input.matmul(&self.weights);
        out.add_row_bias(&self.bias);
        self.activation.forward_inplace(&mut out);
        let cache = DenseCache {
            input: input.clone(),
            output: out.clone(),
        };
        (out, cache)
    }

    /// Forward pass without caching (inference).
    pub fn forward_inference(&self, input: &Matrix) -> Matrix {
        let mut out = input.matmul(&self.weights);
        out.add_row_bias(&self.bias);
        self.activation.forward_inplace(&mut out);
        out
    }

    /// Forward pass writing the post-activation output into a reusable
    /// matrix. The values are bitwise identical to [`Self::forward`] /
    /// [`Self::forward_inference`]; no cache is produced — workspace
    /// callers keep the input and output buffers alive themselves and
    /// hand them back to [`Self::backward_into`].
    ///
    /// `out` must not alias `input`.
    ///
    /// # Panics
    ///
    /// Panics if `input.cols() != self.in_dim()`.
    pub fn forward_into(&self, input: &Matrix, out: &mut Matrix) {
        input.matmul_into(&self.weights, out);
        out.add_row_bias(&self.bias);
        self.activation.forward_inplace(out);
    }

    /// Backward pass.
    ///
    /// `grad_out` is ∂L/∂output (batch × out_dim). Returns the parameter
    /// gradients and ∂L/∂input for the previous layer.
    pub fn backward(&self, grad_out: &Matrix, cache: &DenseCache) -> (DenseGrads, Matrix) {
        let mut g = grad_out.clone();
        self.activation.backward_inplace(&mut g, &cache.output);
        // dW = xᵀ · g ; db = column sums of g ; dx = g · Wᵀ
        let d_weights = cache.input.t_matmul(&g);
        let d_bias = g.column_sums();
        let d_input = g.matmul_t(&self.weights);
        (
            DenseGrads {
                weights: d_weights,
                bias: d_bias,
            },
            d_input,
        )
    }

    /// Backward pass through preallocated buffers; bitwise identical to
    /// [`Self::backward`].
    ///
    /// `grad` arrives as ∂L/∂output and is consumed in place (the
    /// activation derivative is applied to it). `input` and `output` are
    /// the forward buffers that [`DenseCache`] would otherwise have
    /// cloned (`output` is the *pre-dropout* post-activation output).
    /// Parameter gradients land in `grads`; ∂L/∂input is written into
    /// `d_input` when provided (the first layer of a network can skip
    /// it). None of the buffers may alias each other.
    pub fn backward_into(
        &self,
        grad: &mut Matrix,
        input: &Matrix,
        output: &Matrix,
        grads: &mut DenseGrads,
        d_input: Option<&mut Matrix>,
    ) {
        self.activation.backward_inplace(grad, output);
        input.t_matmul_into(grad, &mut grads.weights);
        grad.column_sums_into(&mut grads.bias);
        if let Some(d) = d_input {
            grad.matmul_t_into(&self.weights, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn layer(in_dim: usize, out_dim: usize, act: Activation) -> Dense {
        let mut rng = StdRng::seed_from_u64(7);
        Dense::new(in_dim, out_dim, act, Init::HeUniform, &mut rng)
    }

    #[test]
    fn forward_shapes() {
        let l = layer(3, 5, Activation::Relu);
        let x = Matrix::zeros(4, 3);
        let (y, cache) = l.forward(&x);
        assert_eq!(y.shape(), (4, 5));
        assert_eq!(cache.input.shape(), (4, 3));
        assert_eq!(cache.output.shape(), (4, 5));
        assert_eq!(l.param_count(), 3 * 5 + 5);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut l = layer(1, 1, Activation::Relu);
        l.weights = Matrix::from_rows(&[vec![1.0]]);
        l.bias = vec![0.0];
        let x = Matrix::from_rows(&[vec![-2.0], vec![3.0]]);
        let y = l.forward_inference(&x);
        assert_eq!(y.data(), &[0.0, 3.0]);
    }

    #[test]
    fn identity_passes_through() {
        let mut l = layer(1, 1, Activation::Identity);
        l.weights = Matrix::from_rows(&[vec![2.0]]);
        l.bias = vec![1.0];
        let x = Matrix::from_rows(&[vec![-2.0]]);
        let y = l.forward_inference(&x);
        assert_eq!(y.data(), &[-3.0]);
    }

    #[test]
    fn backward_numeric_gradient_check() {
        // Compare analytic dW/db/dx to central finite differences on a
        // scalar loss L = sum(output).
        let mut l = layer(3, 2, Activation::Relu);
        let x = Matrix::from_rows(&[vec![0.5, -0.3, 0.8], vec![-0.1, 0.9, 0.2]]);
        let (y, cache) = l.forward(&x);
        let grad_out = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
        let (grads, d_input) = l.backward(&grad_out, &cache);

        let eps = 1e-3f32;
        let loss = |l: &Dense, x: &Matrix| -> f32 { l.forward_inference(x).data().iter().sum() };

        // Check a few weight entries.
        for (r, c) in [(0, 0), (1, 1), (2, 0)] {
            let orig = l.weights.get(r, c);
            l.weights.set(r, c, orig + eps);
            let up = loss(&l, &x);
            l.weights.set(r, c, orig - eps);
            let dn = loss(&l, &x);
            l.weights.set(r, c, orig);
            let numeric = (up - dn) / (2.0 * eps);
            let analytic = grads.weights.get(r, c);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "dW[{r},{c}]: numeric {numeric} vs analytic {analytic}"
            );
        }

        // Bias.
        for i in 0..2 {
            let orig = l.bias[i];
            l.bias[i] = orig + eps;
            let up = loss(&l, &x);
            l.bias[i] = orig - eps;
            let dn = loss(&l, &x);
            l.bias[i] = orig;
            let numeric = (up - dn) / (2.0 * eps);
            assert!((numeric - grads.bias[i]).abs() < 1e-2);
        }

        // Input gradient.
        let mut x2 = x.clone();
        for (r, c) in [(0, 0), (1, 2)] {
            let orig = x2.get(r, c);
            x2.set(r, c, orig + eps);
            let up = loss(&l, &x2);
            x2.set(r, c, orig - eps);
            let dn = loss(&l, &x2);
            x2.set(r, c, orig);
            let numeric = (up - dn) / (2.0 * eps);
            let analytic = d_input.get(r, c);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "dX[{r},{c}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn serde_round_trip() {
        let l = layer(2, 2, Activation::Relu);
        let s = serde_json::to_string(&l).unwrap();
        let back: Dense = serde_json::from_str(&s).unwrap();
        assert_eq!(l.weights, back.weights);
        assert_eq!(l.bias, back.bias);
        assert_eq!(l.activation, back.activation);
    }
}
