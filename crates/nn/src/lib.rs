//! Dense neural-network substrate for LEAPME.
//!
//! The LEAPME classifier (paper §IV-D) is a fully connected network with
//! two hidden layers of sizes 128 and 64, a two-neuron softmax output,
//! batch size 32, and a staged learning-rate schedule (10 epochs at 1e-3,
//! 5 at 1e-4, 5 at 1e-5). No mature pure-Rust ML stack is available
//! offline, so this crate implements the whole stack from scratch:
//!
//! * [`matrix::Matrix`] — row-major `f32` matrices with cache-friendly
//!   matmul,
//! * [`layers`] — dense layers with ReLU / identity activations,
//! * [`loss`] — softmax cross-entropy (+ numerically stable log-sum-exp),
//! * [`optim`] — SGD (with momentum), Adam, and AdaGrad,
//! * [`schedule`] — staged learning-rate schedules,
//! * [`network::Mlp`] — a multi-layer perceptron with a minibatch trainer.
//!
//! # Example: LEAPME's exact classifier configuration
//!
//! ```
//! use leapme_nn::network::{Mlp, TrainConfig};
//! use leapme_nn::schedule::LrSchedule;
//! use leapme_nn::matrix::Matrix;
//!
//! // A 4-feature toy problem: class = first feature > 0.5.
//! let x = Matrix::from_rows(&[
//!     vec![0.9, 0.1, 0.0, 0.2],
//!     vec![0.1, 0.8, 0.3, 0.1],
//!     vec![0.8, 0.3, 0.1, 0.0],
//!     vec![0.2, 0.9, 0.2, 0.3],
//! ]);
//! let y = vec![1, 0, 1, 0];
//!
//! let mut net = Mlp::leapme(4, 42);
//! let cfg = TrainConfig {
//!     batch_size: 2,
//!     schedule: LrSchedule::leapme(),
//!     ..TrainConfig::default()
//! };
//! net.fit(&x, &y, &cfg).unwrap();
//! let probs = net.predict_proba(&x);
//! assert!(probs[0] > 0.5 && probs[1] < 0.5);
//! ```

#![deny(missing_docs)]
// `deny` rather than `forbid`: exactly three scoped `allow(unsafe_code)`
// overrides exist — the debug-only `alloc-count` counting
// `#[global_allocator]` (whose `GlobalAlloc` impl is necessarily
// unsafe), the explicit SSE2 integer lane in `quant::sse2`, and the
// `container2::buffer` module (mmap FFI + aligned `&[u8]`→`&[f32]`
// reinterpretation behind the zero-copy v2 container), each justified
// inline per unsafe block.
#![deny(unsafe_code)]

#[cfg(feature = "alloc-count")]
pub mod alloc_count;
pub mod checkpoint;
pub mod container2;
pub mod init;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod network;
pub mod optim;
pub mod quant;
pub mod schedule;
pub mod threads;
pub mod workspace;

/// Errors produced by the neural-network substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Input dimensions are inconsistent (expected vs. actual).
    ShapeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it received.
        actual: String,
    },
    /// The training set is empty.
    EmptyTrainingSet,
    /// A label is outside the valid class range.
    InvalidLabel {
        /// The offending label.
        label: usize,
        /// Number of classes of the output layer.
        classes: usize,
    },
    /// An epoch produced a non-finite (NaN/∞) loss and the bounded
    /// checkpoint-rollback retries were exhausted
    /// (see [`network::TrainConfig::max_loss_retries`]).
    NonFiniteLoss {
        /// Epoch (schedule index) whose loss was non-finite.
        epoch: usize,
        /// Rollback retries attempted before giving up.
        retries: usize,
    },
    /// Training was cancelled cooperatively (deadline or signal); when a
    /// checkpoint path was configured, the state was persisted first.
    Cancelled,
    /// A checkpoint could not be written, read, or applied
    /// (see [`checkpoint::CheckpointError`] for the underlying cause).
    Checkpoint(String),
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            NnError::EmptyTrainingSet => write!(f, "training set is empty"),
            NnError::InvalidLabel { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::NonFiniteLoss { epoch, retries } => {
                write!(
                    f,
                    "non-finite training loss at epoch {epoch} after {retries} rollback retries"
                )
            }
            NnError::Cancelled => write!(f, "training cancelled"),
            NnError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for NnError {}
