//! Softmax + cross-entropy loss with numerically stable log-sum-exp.
//!
//! LEAPME's output layer has two neurons whose softmax gives the
//! positive-class probability used as the pair similarity score
//! (paper §IV-D), so the loss module also exposes [`softmax_rows`]
//! for inference.

use crate::matrix::Matrix;

/// Row-wise softmax of `logits`, returned as a new matrix.
///
/// Numerically stable: subtracts the row max before exponentiating.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    softmax_rows_inplace(&mut out);
    out
}

/// Row-wise softmax applied in place (same arithmetic as
/// [`softmax_rows`], no allocation).
pub fn softmax_rows_inplace(m: &mut Matrix) {
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &v| a.max(v));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Mean cross-entropy of `logits` against integer `labels`, plus the
/// gradient ∂L/∂logits (already averaged over the batch).
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(labels.len(), logits.rows(), "label count mismatch");
    let n = logits.rows().max(1);
    let probs = softmax_rows(logits);
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < logits.cols(), "label {label} out of range");
        let p = probs.get(r, label).max(1e-12);
        loss -= p.ln();
        grad.set(r, label, grad.get(r, label) - 1.0);
    }
    grad.scale_inplace(1.0 / n as f32);
    (loss / n as f32, grad)
}

/// Fused softmax + cross-entropy through a reusable gradient buffer.
///
/// Writes ∂L/∂logits (batch-averaged) into `grad` — reshaped to the
/// logits' shape, reusing its allocation — and returns the mean loss.
/// Loss and gradient are bitwise identical to [`softmax_cross_entropy`];
/// the only difference is that the softmax probabilities are
/// materialized once, in place, in `grad`, instead of in two fresh
/// matrices. `grad` must not alias `logits`.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn softmax_cross_entropy_into(logits: &Matrix, labels: &[usize], grad: &mut Matrix) -> f32 {
    assert_eq!(labels.len(), logits.rows(), "label count mismatch");
    let n = logits.rows().max(1);
    grad.copy_from(logits);
    softmax_rows_inplace(grad);
    let mut loss = 0.0f32;
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < logits.cols(), "label {label} out of range");
        let p = grad.get(r, label).max(1e-12);
        loss -= p.ln();
        grad.set(r, label, grad.get(r, label) - 1.0);
    }
    grad.scale_inplace(1.0 / n as f32);
    loss / n as f32
}

/// Mean cross-entropy only (no gradient), for validation monitoring.
pub fn cross_entropy(logits: &Matrix, labels: &[usize]) -> f32 {
    softmax_cross_entropy(logits, labels).0
}

/// Classification accuracy of `logits` against `labels`.
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        if pred == label {
            correct += 1;
        }
    }
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
        let p = softmax_rows(&logits);
        for r in 0..p.rows() {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_stable_with_huge_logits() {
        let logits = Matrix::from_rows(&[vec![1e4, 1e4 + 1.0]]);
        let p = softmax_rows(&logits);
        assert!(p.data().iter().all(|v| v.is_finite()));
        assert!(p.get(0, 1) > p.get(0, 0));
    }

    #[test]
    fn uniform_logits_give_ln_k_loss() {
        let logits = Matrix::zeros(3, 4);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_near_zero_loss() {
        let logits = Matrix::from_rows(&[vec![100.0, 0.0], vec![0.0, 100.0]]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Matrix::from_rows(&[vec![0.3, -0.2, 0.5], vec![1.0, 0.1, -1.0]]);
        let labels = vec![2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut up = logits.clone();
                up.set(r, c, logits.get(r, c) + eps);
                let mut dn = logits.clone();
                dn.set(r, c, logits.get(r, c) - eps);
                let numeric =
                    (cross_entropy(&up, &labels) - cross_entropy(&dn, &labels)) / (2.0 * eps);
                assert!(
                    (numeric - grad.get(r, c)).abs() < 1e-3,
                    "grad[{r},{c}] numeric {numeric} vs {}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        // Softmax CE gradient per row sums to zero (probabilities − one-hot).
        let logits = Matrix::from_rows(&[vec![0.1, 0.9], vec![2.0, -1.0]]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1, 0]);
        for r in 0..grad.rows() {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn accuracy_counts_argmax() {
        let logits = Matrix::from_rows(&[vec![0.9, 0.1], vec![0.2, 0.8], vec![0.6, 0.4]]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&Matrix::zeros(0, 2), &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn rejects_mismatched_labels() {
        softmax_cross_entropy(&Matrix::zeros(2, 2), &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_label() {
        softmax_cross_entropy(&Matrix::zeros(1, 2), &[5]);
    }

    proptest! {
        #[test]
        fn loss_nonnegative(vals in proptest::collection::vec(-10.0f32..10.0, 6)) {
            let logits = Matrix::from_vec(2, 3, vals);
            let (loss, _) = softmax_cross_entropy(&logits, &[0, 2]);
            prop_assert!(loss >= 0.0);
            prop_assert!(loss.is_finite());
        }

        #[test]
        fn softmax_invariant_to_shift(vals in proptest::collection::vec(-5.0f32..5.0, 3), shift in -50.0f32..50.0) {
            let a = Matrix::from_vec(1, 3, vals.clone());
            let b = Matrix::from_vec(1, 3, vals.iter().map(|v| v + shift).collect());
            let pa = softmax_rows(&a);
            let pb = softmax_rows(&b);
            for (x, y) in pa.data().iter().zip(pb.data()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}
