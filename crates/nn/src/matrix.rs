//! Row-major `f32` matrices sized for MLP workloads.
//!
//! The LEAPME feature vectors are wide (hundreds of components) but the
//! network is small, so a simple row-major dense matrix with an
//! ikj-ordered matmul (good cache behaviour, auto-vectorizable inner loop)
//! is sufficient and keeps the substrate dependency-free.

use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;

/// Backing storage of a [`Matrix`]: either an owned heap buffer (every
/// matrix constructed in-process) or a shared read-only view into a
/// larger buffer — typically a checksummed section of an mmapped v2
/// LEAPMECP container (see `container2`), letting a model's weights be
/// used without ever materializing per-tensor `Vec`s.
///
/// The enum is private to this module; all access funnels through
/// [`Storage::as_slice`] (reads) and [`Storage::make_mut`]
/// (copy-on-write: a shared view is promoted to an owned copy on first
/// mutation). Training and workspace matrices are always `Owned`, so
/// the promotion never fires on a hot path.
#[derive(Clone)]
enum Storage {
    Owned(Vec<f32>),
    Shared(Arc<dyn AsRef<[f32]> + Send + Sync>),
}

impl Storage {
    #[inline(always)]
    fn as_slice(&self) -> &[f32] {
        match self {
            Storage::Owned(v) => v,
            Storage::Shared(s) => s.as_ref().as_ref(),
        }
    }

    /// Copy-on-write access: promotes a shared view to an owned buffer.
    #[inline]
    fn make_mut(&mut self) -> &mut Vec<f32> {
        if let Storage::Shared(s) = self {
            *self = Storage::Owned(s.as_ref().as_ref().to_vec());
        }
        match self {
            Storage::Owned(v) => v,
            Storage::Shared(_) => unreachable!("promoted above"),
        }
    }
}

impl Default for Storage {
    fn default() -> Self {
        Storage::Owned(Vec::new())
    }
}

impl std::fmt::Debug for Storage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl PartialEq for Storage {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

// Serde delegates to `Vec<f32>` so the JSON shape (a plain sequence) is
// identical whether the storage is owned or shared; deserialization
// always produces owned storage.
impl Serialize for Storage {
    fn to_value(&self) -> Value {
        self.as_slice().to_vec().to_value()
    }
}

impl Deserialize for Storage {
    fn from_value(value: &Value) -> Result<Self, serde::de::DeError> {
        Vec::<f32>::from_value(value).map(Storage::Owned)
    }
}

/// A dense row-major matrix of `f32`.
///
/// `Default` is the empty `0 × 0` matrix — the lazily-sized initial state
/// of every workspace buffer.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Storage,
}

impl Matrix {
    /// An all-zeros matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: Storage::Owned(vec![0.0; rows * cols]),
        }
    }

    /// Build from a slice of equally long rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows: {} vs {}", r.len(), cols);
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data: Storage::Owned(data),
        }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Matrix {
            rows,
            cols,
            data: Storage::Owned(data),
        }
    }

    /// Build over a shared read-only buffer without copying — the
    /// zero-copy path for weights resident in an mmapped v2 container.
    /// The matrix reads directly from `shared`; the first mutating
    /// access (training, in-place ops) promotes it to an owned copy.
    ///
    /// # Panics
    ///
    /// Panics if `shared.as_ref().len() != rows * cols`.
    pub fn from_shared(
        rows: usize,
        cols: usize,
        shared: Arc<dyn AsRef<[f32]> + Send + Sync>,
    ) -> Self {
        assert_eq!(
            shared.as_ref().as_ref().len(),
            rows * cols,
            "shared buffer does not match shape"
        );
        Matrix {
            rows,
            cols,
            data: Storage::Shared(shared),
        }
    }

    /// Whether this matrix reads from shared (zero-copy) storage rather
    /// than an owned buffer.
    pub fn is_shared(&self) -> bool {
        matches!(self.data, Storage::Shared(_))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the flat row-major data.
    pub fn data(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Mutable view of the flat row-major data. Copy-on-write: shared
    /// (zero-copy) storage is promoted to an owned buffer first.
    pub fn data_mut(&mut self) -> &mut [f32] {
        self.data.make_mut()
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data.as_slice()[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        let idx = r * self.cols + c;
        self.data.make_mut()[idx] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data.as_slice()[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let cols = self.cols;
        &mut self.data.make_mut()[r * cols..(r + 1) * cols]
    }

    /// A new matrix keeping only the rows whose indices appear in `idx`
    /// (in `idx` order). Useful for minibatching.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        self.select_rows_into(idx, &mut out);
        out
    }

    /// [`Self::select_rows`] writing into a reusable matrix: `out` is
    /// reshaped to `idx.len() × self.cols` (reusing its allocation when
    /// capacity permits) and filled with the gathered rows. The result is
    /// identical to [`Self::select_rows`].
    pub fn select_rows_into(&self, idx: &[usize], out: &mut Matrix) {
        out.resize_zeroed(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
    }

    /// Reshape to `rows × cols` with every element set to `0.0`, reusing
    /// the existing allocation when it has enough capacity. This is the
    /// workspace primitive: after warmup no call allocates, because every
    /// steady-state shape fits the capacity established on first use.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        // A shared matrix being reset is abandoning its view anyway,
        // so drop it for a fresh owned buffer instead of copying it.
        if matches!(self.data, Storage::Shared(_)) {
            self.data = Storage::Owned(Vec::new());
        }
        let data = self.data.make_mut();
        data.clear();
        data.resize(rows * cols, 0.0);
    }

    /// Become a copy of `src` (shape and data), reusing the existing
    /// allocation when capacity permits.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        let data = self.data.make_mut();
        data.clear();
        data.extend_from_slice(src.data.as_slice());
    }

    /// Matrix product `self × rhs`.
    ///
    /// Large products (≥ [`PAR_MIN_FLOPS`] multiply–adds) are partitioned
    /// over output rows across [`threads::thread_count`] worker threads;
    /// smaller ones run serially on the calling thread. Each output
    /// element is always accumulated over `k` in ascending order, so the
    /// result is bitwise identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.matmul_with_threads(rhs, gated_threads(self.rows * self.cols * rhs.cols))
    }

    /// [`Self::matmul`] forced onto the calling thread.
    pub fn matmul_serial(&self, rhs: &Matrix) -> Matrix {
        self.matmul_with_threads(rhs, 1)
    }

    /// [`Self::matmul`] with an explicit worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul_with_threads(&self, rhs: &Matrix, threads: usize) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into_with_threads(rhs, &mut out, threads);
        out
    }

    /// [`Self::matmul`] writing into a reusable output matrix.
    ///
    /// `out` is reshaped to `self.rows × rhs.cols` (reusing its
    /// allocation when capacity permits); the values are bitwise
    /// identical to [`Self::matmul`]. `out` must not alias an operand.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.matmul_into_with_threads(rhs, out, gated_threads(self.rows * self.cols * rhs.cols));
    }

    /// [`Self::matmul_into`] with an explicit worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul_into_with_threads(&self, rhs: &Matrix, out: &mut Matrix, threads: usize) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} × {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.resize_zeroed(self.rows, rhs.cols);
        run_row_partitioned(self.rows, rhs.cols, out.data.make_mut(), threads, |start, chunk| {
            matmul_rows(self, rhs, start, chunk)
        });
    }

    /// `selfᵀ × rhs` without materializing the transpose.
    ///
    /// Threaded and deterministic under the same policy as
    /// [`Self::matmul`]: output rows are partitioned, and each element is
    /// reduced over the shared dimension in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        self.t_matmul_with_threads(rhs, gated_threads(self.rows * self.cols * rhs.cols))
    }

    /// [`Self::t_matmul`] forced onto the calling thread.
    pub fn t_matmul_serial(&self, rhs: &Matrix) -> Matrix {
        self.t_matmul_with_threads(rhs, 1)
    }

    /// [`Self::t_matmul`] with an explicit worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn t_matmul_with_threads(&self, rhs: &Matrix, threads: usize) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.t_matmul_into_with_threads(rhs, &mut out, threads);
        out
    }

    /// [`Self::t_matmul`] writing into a reusable output matrix; bitwise
    /// identical values. `out` must not alias an operand.
    pub fn t_matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.t_matmul_into_with_threads(rhs, out, gated_threads(self.rows * self.cols * rhs.cols));
    }

    /// [`Self::t_matmul_into`] with an explicit worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn t_matmul_into_with_threads(&self, rhs: &Matrix, out: &mut Matrix, threads: usize) {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul shape mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.resize_zeroed(self.cols, rhs.cols);
        run_row_partitioned(self.cols, rhs.cols, out.data.make_mut(), threads, |start, chunk| {
            t_matmul_rows(self, rhs, start, chunk)
        });
    }

    /// `self × rhsᵀ` without materializing the transpose.
    ///
    /// Threaded and deterministic under the same policy as
    /// [`Self::matmul`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        self.matmul_t_with_threads(rhs, gated_threads(self.rows * self.cols * rhs.rows))
    }

    /// [`Self::matmul_t`] forced onto the calling thread.
    pub fn matmul_t_serial(&self, rhs: &Matrix) -> Matrix {
        self.matmul_t_with_threads(rhs, 1)
    }

    /// [`Self::matmul_t`] with an explicit worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_t_with_threads(&self, rhs: &Matrix, threads: usize) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_t_into_with_threads(rhs, &mut out, threads);
        out
    }

    /// [`Self::matmul_t`] writing into a reusable output matrix; bitwise
    /// identical values. `out` must not alias an operand.
    pub fn matmul_t_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.matmul_t_into_with_threads(rhs, out, gated_threads(self.rows * self.cols * rhs.rows));
    }

    /// [`Self::matmul_t_into`] with an explicit worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_t_into_with_threads(&self, rhs: &Matrix, out: &mut Matrix, threads: usize) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t shape mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.resize_zeroed(self.rows, rhs.rows);
        run_row_partitioned(self.rows, rhs.rows, out.data.make_mut(), threads, |start, chunk| {
            matmul_t_rows(self, rhs, start, chunk)
        });
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Add `bias` (length = cols) to every row in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols`.
    pub fn add_row_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Sum over rows, producing a length-`cols` vector.
    pub fn column_sums(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.column_sums_into(&mut out);
        out
    }

    /// [`Self::column_sums`] writing into a reusable vector (cleared and
    /// refilled, reusing its allocation when capacity permits).
    pub fn column_sums_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.cols, 0.0);
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.data.make_mut() {
            *v = f(*v);
        }
    }

    /// Element-wise (Hadamard) product in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard_inplace(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        for (a, &b) in self.data.make_mut().iter_mut().zip(other.data.as_slice()) {
            *a *= b;
        }
    }

    /// `self += alpha * other` in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy_inplace(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.make_mut().iter_mut().zip(other.data.as_slice()) {
            *a += alpha * b;
        }
    }

    /// Scale all elements in place.
    pub fn scale_inplace(&mut self, alpha: f32) {
        for v in self.data.make_mut() {
            *v *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// Minimum multiply–add count before a product is worth fanning out to
/// worker threads; below this, spawn overhead dominates. 2²⁰ ≈ a
/// 32×637 × 637×128 training batch, the smallest shape where threading
/// pays off on the LEAPME workload.
pub const PAR_MIN_FLOPS: usize = 1 << 20;

fn gated_threads(flops: usize) -> usize {
    if flops < PAR_MIN_FLOPS {
        1
    } else {
        crate::threads::thread_count()
    }
}

/// Split `out` (a `rows × out_cols` row-major buffer) into contiguous
/// row chunks and run `kernel(first_row, chunk)` on each, in parallel
/// when `threads > 1`. Chunks never share output rows, so the kernels
/// write disjoint memory; determinism is up to each kernel's reduction
/// order, which all three kernels keep ascending.
fn run_row_partitioned<K>(rows: usize, out_cols: usize, out: &mut [f32], threads: usize, kernel: K)
where
    K: Fn(usize, &mut [f32]) + Sync,
{
    if out.is_empty() {
        return;
    }
    // Serial fast path: no chunk vector, no scope — the workspace paths
    // rely on this performing zero heap allocations.
    if threads <= 1 || rows <= 1 {
        kernel(0, out);
        return;
    }
    let chunks = crate::threads::partition(rows, threads);
    if chunks.len() <= 1 {
        kernel(0, out);
        return;
    }
    std::thread::scope(|scope| {
        let mut rest = out;
        for &(start, end) in &chunks {
            let (head, tail) = rest.split_at_mut((end - start) * out_cols);
            rest = tail;
            let kernel = &kernel;
            scope.spawn(move || kernel(start, head));
        }
    });
}

/// Register-block width (in `f32` elements) of the product kernel's
/// accumulator tile: 64 floats fit the SIMD register file, so a full
/// tile is summed entirely in registers and written back once instead
/// of being re-loaded and re-stored from L1 on every `k` step.
const REG_TILE: usize = 64;

/// ikj product kernel for output rows `[row_start, row_start + n)`,
/// where `n = out.len() / rhs.cols`. `k` ascends for every element, and
/// multiply and add stay separate IEEE operations, so the register
/// blocking leaves every output bitwise identical to the naive loop.
fn matmul_rows(a: &Matrix, rhs: &Matrix, row_start: usize, out: &mut [f32]) {
    let out_cols = rhs.cols;
    for (local, out_row) in out.chunks_mut(out_cols).enumerate() {
        let a_row = a.row(row_start + local);
        for jb in (0..out_cols).step_by(REG_TILE) {
            let je = (jb + REG_TILE).min(out_cols);
            let w = je - jb;
            let mut acc = [0f32; REG_TILE];
            if w == REG_TILE {
                // Fixed-width path: the compiler keeps `acc` in
                // registers across the whole `k` loop.
                let acc: &mut [f32; REG_TILE] = &mut acc;
                for (k, &a_ik) in a_row.iter().enumerate() {
                    let b_seg: &[f32; REG_TILE] =
                        rhs.row(k)[jb..je].try_into().expect("tile width");
                    for (o, &b_kj) in acc.iter_mut().zip(b_seg) {
                        *o += a_ik * b_kj;
                    }
                }
            } else {
                for (k, &a_ik) in a_row.iter().enumerate() {
                    let b_seg = &rhs.row(k)[jb..je];
                    for (o, &b_kj) in acc[..w].iter_mut().zip(b_seg) {
                        *o += a_ik * b_kj;
                    }
                }
            }
            out_row[jb..je].copy_from_slice(&acc[..w]);
        }
    }
}

/// `aᵀ × rhs` kernel for output rows `[row_start, row_start + n)`; the
/// output row index is a column of `a`. The reduction over `a.rows`
/// ascends for every element, matching the serial order exactly.
fn t_matmul_rows(a: &Matrix, rhs: &Matrix, row_start: usize, out: &mut [f32]) {
    let out_cols = rhs.cols;
    let n = out.len() / out_cols.max(1);
    for r in 0..a.rows {
        let a_row = a.row(r);
        let b_row = rhs.row(r);
        for local in 0..n {
            let a_ri = a_row[row_start + local];
            let out_row = &mut out[local * out_cols..(local + 1) * out_cols];
            for (o, &b_rj) in out_row.iter_mut().zip(b_row) {
                *o += a_ri * b_rj;
            }
        }
    }
}

/// `a × rhsᵀ` kernel: independent dot products per output element.
fn matmul_t_rows(a: &Matrix, rhs: &Matrix, row_start: usize, out: &mut [f32]) {
    let out_cols = rhs.rows;
    for (local, out_row) in out.chunks_mut(out_cols).enumerate() {
        let a_row = a.row(row_start + local);
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = rhs.row(j);
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *o = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])
    }

    #[test]
    fn construction_and_access() {
        let m = small();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn matmul_known() {
        let a = small();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_matmul() {
        let a = small();
        let id = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(a.matmul(&id), a);
        assert_eq!(id.matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn select_rows_for_batching() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.data(), &[3.0, 1.0]);
    }

    #[test]
    fn bias_and_sums() {
        let mut m = small();
        m.add_row_bias(&[10.0, 20.0]);
        assert_eq!(m.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(m.column_sums(), vec![24.0, 46.0]);
    }

    #[test]
    fn elementwise_ops() {
        let mut m = small();
        m.map_inplace(|v| v * 2.0);
        assert_eq!(m.data(), &[2.0, 4.0, 6.0, 8.0]);
        let other = small();
        m.hadamard_inplace(&other);
        assert_eq!(m.data(), &[2.0, 8.0, 18.0, 32.0]);
        m.axpy_inplace(-1.0, &m.clone());
        assert_eq!(m.data(), &[0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn serde_round_trip() {
        let m = small();
        let s = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&s).unwrap();
        assert_eq!(m, back);
    }

    proptest! {
        #[test]
        fn t_matmul_matches_explicit_transpose(
            a_rows in 1usize..5, a_cols in 1usize..5, b_cols in 1usize..5,
            seed in 0u64..1000,
        ) {
            let mut s = seed;
            let mut next = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / u32::MAX as f32) - 0.5
            };
            let a = Matrix::from_vec(a_rows, a_cols, (0..a_rows * a_cols).map(|_| next()).collect());
            let b = Matrix::from_vec(a_rows, b_cols, (0..a_rows * b_cols).map(|_| next()).collect());
            let fast = a.t_matmul(&b);
            let slow = a.transpose().matmul(&b);
            for (x, y) in fast.data().iter().zip(slow.data()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        #[test]
        fn matmul_t_matches_explicit_transpose(
            a_rows in 1usize..5, shared in 1usize..5, b_rows in 1usize..5,
            seed in 0u64..1000,
        ) {
            let mut s = seed.wrapping_add(7);
            let mut next = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / u32::MAX as f32) - 0.5
            };
            let a = Matrix::from_vec(a_rows, shared, (0..a_rows * shared).map(|_| next()).collect());
            let b = Matrix::from_vec(b_rows, shared, (0..b_rows * shared).map(|_| next()).collect());
            let fast = a.matmul_t(&b);
            let slow = a.matmul(&b.transpose());
            for (x, y) in fast.data().iter().zip(slow.data()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        #[test]
        fn transpose_is_involution(rows in 1usize..6, cols in 1usize..6) {
            let data: Vec<f32> = (0..rows * cols).map(|i| i as f32).collect();
            let m = Matrix::from_vec(rows, cols, data);
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn threaded_products_are_bitwise_serial(
            a_rows in 1usize..24, shared in 1usize..24, b_cols in 1usize..24,
            threads in 2usize..7, seed in 0u64..500,
        ) {
            let mut s = seed.wrapping_add(13);
            let mut next = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / u32::MAX as f32) - 0.5
            };
            let a = Matrix::from_vec(a_rows, shared, (0..a_rows * shared).map(|_| next()).collect());
            let b = Matrix::from_vec(shared, b_cols, (0..shared * b_cols).map(|_| next()).collect());

            // matmul: serial vs explicit thread counts, bit for bit.
            let serial = a.matmul_serial(&b);
            let par = a.matmul_with_threads(&b, threads);
            prop_assert_eq!(serial.data(), par.data());

            // t_matmul: aᵀ shares its row count with b.
            let at = a.transpose();
            let serial = at.t_matmul_serial(&b);
            let par = at.t_matmul_with_threads(&b, threads);
            prop_assert_eq!(serial.data(), par.data());

            // matmul_t: b fed transposed so the shared dims line up.
            let bt = b.transpose();
            let serial = a.matmul_t_serial(&bt);
            let par = a.matmul_t_with_threads(&bt, threads);
            prop_assert_eq!(serial.data(), par.data());
        }

        #[test]
        fn thread_count_exceeding_rows_is_safe(rows in 1usize..4, cols in 1usize..4) {
            let data: Vec<f32> = (0..rows * cols).map(|i| i as f32 + 1.0).collect();
            let a = Matrix::from_vec(rows, cols, data);
            let b = a.transpose();
            let serial = a.matmul_serial(&b);
            let par = a.matmul_with_threads(&b, 64);
            prop_assert_eq!(serial.data(), par.data());
        }
    }

    #[test]
    fn empty_products_do_not_panic() {
        let empty = Matrix::zeros(0, 0);
        assert_eq!(empty.matmul(&empty).shape(), (0, 0));
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        assert_eq!(a.matmul(&b).shape(), (3, 2));
        assert_eq!(a.matmul_with_threads(&b, 4).shape(), (3, 2));
    }

    #[test]
    fn zero_entries_contribute_like_any_other_value() {
        // Regression for the removed `a_ik == 0.0` skip branches: products
        // where one operand is mostly zeros must match the dense math,
        // including signed-zero and subnormal interactions.
        let a = Matrix::from_rows(&[vec![0.0, -0.0, 2.0], vec![0.0, 0.0, 0.0]]);
        let b = Matrix::from_rows(&[vec![1.0, -1.0], vec![f32::MIN_POSITIVE, 3.0], vec![0.5, 0.25]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[1.0, 0.5, 0.0, 0.0]);
        let explicit = a.transpose().t_matmul(&b);
        assert_eq!(explicit.data(), c.data());
    }
}
