//! Multi-layer perceptron with a minibatch trainer.
//!
//! [`Mlp::leapme`] builds the paper's exact architecture: input →
//! Dense(128, ReLU) → Dense(64, ReLU) → Dense(2, identity) → softmax.
//! Training shuffles each epoch, uses minibatches (paper: 32), and follows
//! a staged [`crate::schedule::LrSchedule`].

use crate::init::Init;
use crate::layers::{Activation, Dense, DenseCache};
use crate::loss::{accuracy, softmax_cross_entropy, softmax_cross_entropy_into, softmax_rows};
use crate::matrix::Matrix;
use crate::optim::{Optimizer, ParamState};
use crate::schedule::LrSchedule;
use crate::workspace::{self, ScoreWorkspace, TrainWorkspace};
use crate::NnError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A feed-forward network of dense layers ending in raw logits
/// (softmax is applied by the loss / inference helpers).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    pub(crate) layers: Vec<Dense>,
    #[serde(skip)]
    pub(crate) states: Vec<LayerState>,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct LayerState {
    pub(crate) weights: ParamState,
    pub(crate) bias: ParamState,
}

/// Configuration for [`Mlp::fit`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Minibatch size (paper: 32).
    pub batch_size: usize,
    /// Learning-rate schedule (paper: [`LrSchedule::leapme`]).
    pub schedule: LrSchedule,
    /// Optimizer (default: Adam).
    pub optimizer: Optimizer,
    /// Seed for epoch shuffling (and dropout masks).
    pub shuffle_seed: u64,
    /// If set, record the epoch losses here after training.
    pub verbose: bool,
    /// Inverted-dropout probability applied to hidden activations during
    /// training (`0.0` — the paper's setting — disables it; exposed for
    /// the ablation benches).
    #[serde(default)]
    pub dropout: f32,
    /// L2 weight decay coefficient added to the weight gradients
    /// (`0.0` — the paper's setting — disables it).
    #[serde(default)]
    pub weight_decay: f32,
    /// Fraction of the training rows held out for early stopping
    /// (`0.0` — the paper's setting — disables early stopping).
    #[serde(default)]
    pub validation_fraction: f32,
    /// Early-stopping patience: stop after this many epochs without
    /// validation-loss improvement and restore the best weights.
    /// Only used when `validation_fraction > 0`.
    #[serde(default = "default_patience")]
    pub patience: usize,
    /// Maximum checkpoint-rollback retries across a fit when an epoch
    /// produces a non-finite loss; `0` fails fast on the first poisoned
    /// epoch with [`NnError::NonFiniteLoss`].
    #[serde(default = "default_loss_retries")]
    pub max_loss_retries: usize,
    /// Learning-rate multiplier applied after each non-finite-loss
    /// rollback; the scale persists for the rest of the fit.
    #[serde(default = "default_lr_backoff")]
    pub lr_backoff: f32,
}

fn default_patience() -> usize {
    3
}

fn default_loss_retries() -> usize {
    3
}

fn default_lr_backoff() -> f32 {
    0.1
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            batch_size: 32,
            schedule: LrSchedule::leapme(),
            optimizer: Optimizer::adam(),
            shuffle_seed: 0xC0FFEE,
            verbose: false,
            dropout: 0.0,
            weight_decay: 0.0,
            validation_fraction: 0.0,
            patience: 3,
            max_loss_retries: 3,
            lr_backoff: 0.1,
        }
    }
}

/// Durability and cancellation controls for [`Mlp::fit_durable`].
///
/// The default control (no checkpoint path, no cancellation) makes
/// `fit_durable` behave exactly — bitwise — like [`Mlp::fit`].
#[derive(Default)]
pub struct FitControl<'a> {
    /// Where to persist mid-schedule training state; `None` disables
    /// checkpointing (a cancellation then exits without saving).
    pub checkpoint_path: Option<&'a std::path::Path>,
    /// Write a checkpoint at every Nth epoch boundary; `0` writes only
    /// when a cancellation is honored.
    pub checkpoint_every: usize,
    /// Restore from `checkpoint_path` when the file exists.
    pub resume: bool,
    /// Cooperative cancellation, polled at every epoch boundary; return
    /// `true` to checkpoint (if configured) and stop with
    /// [`NnError::Cancelled`].
    pub cancel: Option<&'a (dyn Fn() -> bool + Sync)>,
}

impl std::fmt::Debug for FitControl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FitControl")
            .field("checkpoint_path", &self.checkpoint_path)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("resume", &self.resume)
            .field("cancel", &self.cancel.is_some())
            .finish()
    }
}

/// Per-epoch training telemetry returned by [`Mlp::fit`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean minibatch loss of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation losses per epoch (empty unless early stopping is on).
    pub validation_losses: Vec<f32>,
    /// Whether training stopped before exhausting the schedule.
    pub stopped_early: bool,
    /// Training-set accuracy after the final epoch.
    pub final_accuracy: f64,
    /// Non-finite-loss rollbacks performed during the fit.
    #[serde(default)]
    pub recoveries: usize,
}

impl Mlp {
    /// Build an MLP from layer sizes; all hidden layers use ReLU and He
    /// init, the output layer is linear with Xavier init.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for w in sizes.windows(2) {
            let is_output = layers.len() == sizes.len() - 2;
            let (act, init) = if is_output {
                (Activation::Identity, Init::XavierUniform)
            } else {
                (Activation::Relu, Init::HeUniform)
            };
            layers.push(Dense::new(w[0], w[1], act, init, &mut rng));
        }
        let states = layers.iter().map(|_| LayerState::default()).collect();
        Mlp { layers, states }
    }

    /// The paper's architecture: `input → 128 → 64 → 2`.
    pub fn leapme(input_dim: usize, seed: u64) -> Self {
        Mlp::new(&[input_dim, 128, 64, 2], seed)
    }

    /// Rebuild a network from decoded layers (checkpoint loading);
    /// optimizer state starts fresh, as after deserialization.
    pub(crate) fn from_layers(layers: Vec<Dense>) -> Self {
        let states = layers.iter().map(|_| LayerState::default()).collect();
        Mlp { layers, states }
    }

    /// Rebuild a network from externally decoded layers (e.g. the v2
    /// zero-copy container loader in `leapme-core`), validating that
    /// consecutive layer shapes chain. Optimizer state starts fresh.
    pub fn try_from_layers(layers: Vec<Dense>) -> Result<Self, NnError> {
        if layers.is_empty() {
            return Err(NnError::ShapeMismatch {
                expected: "at least one layer".into(),
                actual: "0 layers".into(),
            });
        }
        for pair in layers.windows(2) {
            if pair[0].out_dim() != pair[1].in_dim() {
                return Err(NnError::ShapeMismatch {
                    expected: format!("next layer input of {}", pair[0].out_dim()),
                    actual: format!("{}", pair[1].in_dim()),
                });
            }
        }
        Ok(Mlp::from_layers(layers))
    }

    /// Input dimensionality expected by the first layer.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map(Dense::in_dim).unwrap_or(0)
    }

    /// Number of output classes.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map(Dense::out_dim).unwrap_or(0)
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// The dense layers (read-only).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Forward pass producing raw logits (no softmax).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.input_dim()`.
    pub fn logits(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.input_dim(), "input width mismatch");
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward_inference(&h);
        }
        h
    }

    /// Forward pass producing raw logits through a reusable workspace;
    /// bitwise identical to [`Self::logits`] but allocation-free once
    /// the workspace buffers are warm. The returned reference points at
    /// the workspace's final-layer activation buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.input_dim()` or the network has no
    /// layers.
    pub fn logits_into<'w>(&self, x: &Matrix, ws: &'w mut ScoreWorkspace) -> &'w Matrix {
        assert_eq!(x.cols(), self.input_dim(), "input width mismatch");
        assert!(!self.layers.is_empty(), "network has no layers");
        ws.ensure_layers(self.layers.len());
        for (idx, layer) in self.layers.iter().enumerate() {
            let (before, rest) = ws.act.split_at_mut(idx);
            let input = if idx == 0 { x } else { &before[idx - 1] };
            layer.forward_into(input, &mut rest[0]);
        }
        ws.act.last().expect("network has layers")
    }

    /// Append the probability of class 1 for each row of `x` to `out`,
    /// reusing workspace buffers; bitwise identical to
    /// [`Self::predict_proba`]. Appending (rather than overwriting) lets
    /// streaming callers accumulate scores across fixed-size chunks.
    ///
    /// # Panics
    ///
    /// Panics if the network does not have ≥ 2 output classes.
    pub fn predict_proba_into(&self, x: &Matrix, ws: &mut ScoreWorkspace, out: &mut Vec<f32>) {
        assert!(self.output_dim() >= 2, "need ≥2 classes for positive prob");
        self.logits_into(x, ws);
        let last = ws.act.last_mut().expect("network has layers");
        crate::loss::softmax_rows_inplace(last);
        out.reserve(last.rows());
        for r in 0..last.rows() {
            out.push(last.get(r, 1));
        }
    }

    /// Row-wise class probabilities.
    pub fn predict_proba_matrix(&self, x: &Matrix) -> Matrix {
        softmax_rows(&self.logits(x))
    }

    /// Probability of class 1 ("match") for each row — LEAPME's similarity
    /// score (paper §IV-D).
    ///
    /// # Panics
    ///
    /// Panics if the network does not have ≥ 2 output classes.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert!(self.output_dim() >= 2, "need ≥2 classes for positive prob");
        let p = self.predict_proba_matrix(x);
        (0..p.rows()).map(|r| p.get(r, 1)).collect()
    }

    /// Argmax class predictions.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        let p = self.logits(x);
        (0..p.rows())
            .map(|r| {
                p.row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Train with minibatch gradient descent per the config's schedule.
    ///
    /// Returns per-epoch telemetry. Errors if `x` is empty, label counts
    /// mismatch, a label is out of range, or the input width is wrong.
    /// An epoch whose loss or parameters turn non-finite is rolled back
    /// to its start checkpoint and replayed at `lr × lr_backoff`, at most
    /// `max_loss_retries` times across the fit; exhausting the budget
    /// yields [`NnError::NonFiniteLoss`] instead of propagating NaN
    /// weights.
    ///
    /// This is the workspace-backed fast path: all per-batch buffers live
    /// in a [`TrainWorkspace`] created once per call, so the steady-state
    /// training step performs zero heap allocations. Results are bitwise
    /// identical to the allocating [`Self::fit_reference`]. To amortize
    /// the warm-up allocations across repeated fits, create the workspace
    /// yourself and call [`Self::fit_with_workspace`].
    pub fn fit(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        cfg: &TrainConfig,
    ) -> Result<TrainReport, NnError> {
        let mut ws = TrainWorkspace::new();
        self.fit_with_workspace(x, labels, cfg, &mut ws)
    }

    /// [`Self::fit`] with a caller-provided workspace, reusing its
    /// buffers across calls.
    pub fn fit_with_workspace(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        cfg: &TrainConfig,
        ws: &mut TrainWorkspace,
    ) -> Result<TrainReport, NnError> {
        self.check_fit_inputs(x, labels)?;
        if self.states.len() != self.layers.len() {
            self.states = self.layers.iter().map(|_| LayerState::default()).collect();
        }
        ws.ensure_layers(self.layers.len());
        ws.checkpoint_valid = false;

        let batch = cfg.batch_size.max(1);
        let mut rng = StdRng::seed_from_u64(cfg.shuffle_seed);
        let mut report = TrainReport::default();

        // Optional validation split for early stopping. The rng is
        // consumed in exactly the reference order (full shuffle, then
        // per-epoch shuffles, then dropout masks) so every downstream
        // draw matches bitwise.
        let mut all: Vec<usize> = (0..x.rows()).collect();
        all.shuffle(&mut rng);
        let val_fraction = cfg.validation_fraction.clamp(0.0, 0.5);
        let n_val = if val_fraction > 0.0 {
            ((x.rows() as f32 * val_fraction) as usize).min(x.rows().saturating_sub(1))
        } else {
            0
        };
        let (val_idx, train_idx) = all.split_at(n_val);
        let has_val = !val_idx.is_empty();
        if has_val {
            x.select_rows_into(val_idx, &mut ws.val_x);
        }
        let val_y: Vec<usize> = val_idx.iter().map(|&i| labels[i]).collect();
        let mut order: Vec<usize> = train_idx.to_vec();

        let mut best_val = f32::INFINITY;
        let mut since_best = 0usize;

        // Non-finite-loss recovery: before each epoch, checkpoint the
        // weights, optimizer moments, rng, and batch order (pre-shuffle,
        // so a rolled-back epoch replays the exact same shuffle and
        // dropout draws at the stepped-down rate). When every loss stays
        // finite the checkpoints are never read and `lr_scale` stays
        // exactly 1.0, keeping this path bitwise identical to
        // [`Self::fit_reference`].
        let stages: Vec<(usize, f32)> = cfg.schedule.iter().collect();
        let mut lr_scale: f32 = 1.0;
        let mut retries_left = cfg.max_loss_retries;
        let mut good_layers: Vec<Dense> = Vec::new();
        let mut good_states: Vec<LayerState> = Vec::new();
        let mut good_order: Vec<usize> = Vec::new();

        let mut stage = 0usize;
        while stage < stages.len() {
            let (epoch, base_lr) = stages[stage];
            workspace::copy_layers_into(&mut good_layers, &self.layers);
            good_states.clone_from(&self.states);
            good_order.clone_from(&order);
            let good_rng = rng.clone();

            order.shuffle(&mut rng);
            let lr = base_lr * lr_scale;
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(batch) {
                x.select_rows_into(chunk, &mut ws.batch_x);
                ws.batch_y.clear();
                ws.batch_y.extend(chunk.iter().map(|&i| labels[i]));
                #[allow(unused_mut)]
                let mut loss = self.train_step_ws(lr, cfg, &mut rng, ws);
                #[cfg(feature = "faults")]
                if leapme_faults::fires(leapme_faults::sites::NN_LOSS)
                    == Some(leapme_faults::FaultKind::Nan)
                {
                    loss = f32::NAN;
                }
                epoch_loss += loss;
                batches += 1;
                if !epoch_loss.is_finite() {
                    // The weights are already poisoned; finishing the
                    // epoch would only deepen the damage.
                    break;
                }
            }
            // The loss clamps probabilities at 1e-12 before the log
            // (and `f32::max(NaN, x)` is `x`), so a poisoned network can
            // still report a finite loss — also scan the parameters.
            if !epoch_loss.is_finite() || !self.params_finite() {
                if retries_left == 0 {
                    return Err(NnError::NonFiniteLoss {
                        epoch,
                        retries: cfg.max_loss_retries,
                    });
                }
                retries_left -= 1;
                report.recoveries += 1;
                workspace::copy_layers_into(&mut self.layers, &good_layers);
                self.states.clone_from(&good_states);
                order.clone_from(&good_order);
                rng = good_rng;
                lr_scale *= cfg.lr_backoff.clamp(0.0, 1.0);
                continue;
            }
            report.epoch_losses.push(epoch_loss / batches.max(1) as f32);

            if has_val {
                let val_loss = {
                    let TrainWorkspace {
                        val_x,
                        val_grad,
                        score,
                        ..
                    } = &mut *ws;
                    let logits = self.logits_into(val_x, score);
                    softmax_cross_entropy_into(logits, &val_y, val_grad)
                };
                report.validation_losses.push(val_loss);
                if val_loss < best_val {
                    best_val = val_loss;
                    workspace::copy_layers_into(&mut ws.checkpoint, &self.layers);
                    ws.checkpoint_valid = true;
                    since_best = 0;
                } else {
                    since_best += 1;
                    if since_best >= cfg.patience.max(1) {
                        report.stopped_early = true;
                        break;
                    }
                }
            }
            stage += 1;
        }
        if ws.checkpoint_valid {
            workspace::copy_layers_into(&mut self.layers, &ws.checkpoint);
        }
        report.final_accuracy = {
            let logits = self.logits_into(x, &mut ws.score);
            accuracy(logits, labels)
        };
        Ok(report)
    }

    /// Train like [`Self::fit`], with durability: periodic resumable
    /// checkpoints, resume-from-checkpoint, and cooperative cancellation
    /// at every epoch boundary.
    ///
    /// With a default [`FitControl`] this is bitwise identical to
    /// [`Self::fit`]. When `ctl.checkpoint_path` is set, the complete
    /// training state — weights, optimizer moments, RNG state, epoch
    /// order, LR-stage position, and telemetry so far — is persisted
    /// atomically every `checkpoint_every` epochs (and on cancellation),
    /// so a killed run resumed with `ctl.resume` finishes with a model
    /// bitwise identical to an uninterrupted run. The checkpoint file is
    /// deleted once training completes.
    ///
    /// Cancellation returns [`NnError::Cancelled`] after writing the
    /// checkpoint (when a path is configured). A checkpoint recorded for
    /// different inputs, seed, schedule, or architecture is rejected
    /// with [`NnError::Checkpoint`] instead of silently training the
    /// wrong run.
    pub fn fit_durable(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        cfg: &TrainConfig,
        ctl: &FitControl<'_>,
    ) -> Result<TrainReport, NnError> {
        use crate::checkpoint::{labels_crc, TrainFingerprint, TrainState};

        let mut ws = TrainWorkspace::new();
        self.check_fit_inputs(x, labels)?;
        if self.states.len() != self.layers.len() {
            self.states = self.layers.iter().map(|_| LayerState::default()).collect();
        }
        ws.ensure_layers(self.layers.len());
        ws.checkpoint_valid = false;

        let batch = cfg.batch_size.max(1);
        let mut rng = StdRng::seed_from_u64(cfg.shuffle_seed);
        let mut report = TrainReport::default();

        // Deterministic prefix: identical to `fit_with_workspace`, and
        // re-derived on resume too (the initial full shuffle and the
        // validation split depend only on `cfg.shuffle_seed`), after
        // which the saved RNG/order state overwrite the fresh ones.
        let mut all: Vec<usize> = (0..x.rows()).collect();
        all.shuffle(&mut rng);
        let val_fraction = cfg.validation_fraction.clamp(0.0, 0.5);
        let n_val = if val_fraction > 0.0 {
            ((x.rows() as f32 * val_fraction) as usize).min(x.rows().saturating_sub(1))
        } else {
            0
        };
        let (val_idx, train_idx) = all.split_at(n_val);
        let has_val = !val_idx.is_empty();
        if has_val {
            x.select_rows_into(val_idx, &mut ws.val_x);
        }
        let val_y: Vec<usize> = val_idx.iter().map(|&i| labels[i]).collect();
        let mut order: Vec<usize> = train_idx.to_vec();

        let mut best_val = f32::INFINITY;
        let mut since_best = 0usize;

        let stages: Vec<(usize, f32)> = cfg.schedule.iter().collect();
        let mut lr_scale: f32 = 1.0;
        let mut retries_left = cfg.max_loss_retries;
        let mut good_layers: Vec<Dense> = Vec::new();
        let mut good_states: Vec<LayerState> = Vec::new();
        let mut good_order: Vec<usize> = Vec::new();
        let mut stage = 0usize;

        let fingerprint = TrainFingerprint {
            rows: x.rows() as u64,
            cols: x.cols() as u64,
            labels_crc: labels_crc(labels),
            shuffle_seed: cfg.shuffle_seed,
            total_epochs: stages.len() as u64,
            batch: batch as u64,
        };

        if ctl.resume {
            if let Some(path) = ctl.checkpoint_path.filter(|p| p.exists()) {
                let st = TrainState::load(path).map_err(|e| NnError::Checkpoint(e.to_string()))?;
                if st.fingerprint != fingerprint {
                    return Err(NnError::Checkpoint(
                        "checkpoint does not match this run (data, seed, schedule, or batch size changed)"
                            .into(),
                    ));
                }
                let shapes = |ls: &[Dense]| -> Vec<(usize, usize)> {
                    ls.iter().map(|l| (l.in_dim(), l.out_dim())).collect()
                };
                if shapes(&st.layers) != shapes(&self.layers) {
                    return Err(NnError::Checkpoint(
                        "checkpoint network architecture does not match".into(),
                    ));
                }
                self.layers = st.layers;
                self.states = st
                    .states
                    .into_iter()
                    .map(|(weights, bias)| LayerState { weights, bias })
                    .collect();
                rng = StdRng::from_state(st.rng);
                order = st.order.iter().map(|&i| i as usize).collect();
                stage = st.stage as usize;
                lr_scale = st.lr_scale;
                retries_left = st.retries_left as usize;
                report.epoch_losses = st.epoch_losses;
                report.validation_losses = st.validation_losses;
                report.recoveries = st.recoveries as usize;
                best_val = st.best_val;
                since_best = st.since_best as usize;
                if let Some(best) = st.best_layers {
                    ws.checkpoint = best;
                    ws.checkpoint_valid = true;
                }
            }
        }

        while stage < stages.len() {
            // Epoch boundary: persist (periodically, or before honoring a
            // cancellation) and then bail out cleanly if asked to stop.
            // The snapshot is taken pre-shuffle, so a resumed run replays
            // this epoch's shuffle and dropout draws exactly.
            let stop = ctl.cancel.map(|c| c()).unwrap_or(false);
            if let Some(path) = ctl.checkpoint_path {
                let periodic = ctl.checkpoint_every > 0 && stage.is_multiple_of(ctl.checkpoint_every);
                if stop || periodic {
                    let st = TrainState {
                        fingerprint: fingerprint.clone(),
                        stage: stage as u64,
                        lr_scale,
                        retries_left: retries_left as u64,
                        rng: rng.state(),
                        order: order.iter().map(|&i| i as u64).collect(),
                        epoch_losses: report.epoch_losses.clone(),
                        validation_losses: report.validation_losses.clone(),
                        recoveries: report.recoveries as u64,
                        best_val,
                        since_best: since_best as u64,
                        layers: self.layers.clone(),
                        states: self
                            .states
                            .iter()
                            .map(|s| (s.weights.clone(), s.bias.clone()))
                            .collect(),
                        best_layers: ws.checkpoint_valid.then(|| ws.checkpoint.clone()),
                    };
                    st.save(path).map_err(|e| NnError::Checkpoint(e.to_string()))?;
                }
            }
            if stop {
                return Err(NnError::Cancelled);
            }

            let (epoch, base_lr) = stages[stage];
            workspace::copy_layers_into(&mut good_layers, &self.layers);
            good_states.clone_from(&self.states);
            good_order.clone_from(&order);
            let good_rng = rng.clone();

            order.shuffle(&mut rng);
            let lr = base_lr * lr_scale;
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(batch) {
                x.select_rows_into(chunk, &mut ws.batch_x);
                ws.batch_y.clear();
                ws.batch_y.extend(chunk.iter().map(|&i| labels[i]));
                #[allow(unused_mut)]
                let mut loss = self.train_step_ws(lr, cfg, &mut rng, &mut ws);
                #[cfg(feature = "faults")]
                if leapme_faults::fires(leapme_faults::sites::NN_LOSS)
                    == Some(leapme_faults::FaultKind::Nan)
                {
                    loss = f32::NAN;
                }
                epoch_loss += loss;
                batches += 1;
                if !epoch_loss.is_finite() {
                    break;
                }
            }
            if !epoch_loss.is_finite() || !self.params_finite() {
                if retries_left == 0 {
                    return Err(NnError::NonFiniteLoss {
                        epoch,
                        retries: cfg.max_loss_retries,
                    });
                }
                retries_left -= 1;
                report.recoveries += 1;
                workspace::copy_layers_into(&mut self.layers, &good_layers);
                self.states.clone_from(&good_states);
                order.clone_from(&good_order);
                rng = good_rng;
                lr_scale *= cfg.lr_backoff.clamp(0.0, 1.0);
                continue;
            }
            report.epoch_losses.push(epoch_loss / batches.max(1) as f32);

            if has_val {
                let val_loss = {
                    let TrainWorkspace {
                        val_x,
                        val_grad,
                        score,
                        ..
                    } = &mut ws;
                    let logits = self.logits_into(val_x, score);
                    softmax_cross_entropy_into(logits, &val_y, val_grad)
                };
                report.validation_losses.push(val_loss);
                if val_loss < best_val {
                    best_val = val_loss;
                    workspace::copy_layers_into(&mut ws.checkpoint, &self.layers);
                    ws.checkpoint_valid = true;
                    since_best = 0;
                } else {
                    since_best += 1;
                    if since_best >= cfg.patience.max(1) {
                        report.stopped_early = true;
                        break;
                    }
                }
            }
            stage += 1;
        }
        if ws.checkpoint_valid {
            workspace::copy_layers_into(&mut self.layers, &ws.checkpoint);
        }
        report.final_accuracy = {
            let logits = self.logits_into(x, &mut ws.score);
            accuracy(logits, labels)
        };
        // The run completed; the mid-schedule state is now stale.
        if let Some(path) = ctl.checkpoint_path.filter(|p| p.exists()) {
            let _ = std::fs::remove_file(path);
        }
        Ok(report)
    }

    /// One allocation-free forward/backward/update step on the minibatch
    /// currently gathered in the workspace (`batch_x`/`batch_y`); returns
    /// the loss. Bitwise identical to the reference `train_step`.
    fn train_step_ws(
        &mut self,
        lr: f32,
        cfg: &TrainConfig,
        rng: &mut StdRng,
        ws: &mut TrainWorkspace,
    ) -> f32 {
        use rand::Rng;
        let opt = &cfg.optimizer;
        let n_layers = self.layers.len();
        let keep = 1.0 - cfg.dropout.clamp(0.0, 0.95);
        let dropout_at = |idx: usize| cfg.dropout > 0.0 && idx + 1 < n_layers;
        let TrainWorkspace {
            batch_x,
            batch_y,
            act,
            dropped,
            d_act,
            masks,
            grads,
            ..
        } = &mut *ws;

        // Forward: post-activation outputs land in `act[idx]`; when
        // dropout is on, the masked copy lands in `dropped[idx]` so the
        // pre-dropout output survives for the ReLU backward pass (the
        // role `DenseCache.output` plays in the reference path).
        for (idx, layer) in self.layers.iter().enumerate() {
            let (before, rest) = act.split_at_mut(idx);
            let out = &mut rest[0];
            let input: &Matrix = if idx == 0 {
                batch_x
            } else if dropout_at(idx - 1) {
                &dropped[idx - 1]
            } else {
                &before[idx - 1]
            };
            layer.forward_into(input, out);
            if dropout_at(idx) {
                let mask = &mut masks[idx];
                mask.resize_zeroed(out.rows(), out.cols());
                for v in mask.data_mut() {
                    *v = if rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 };
                }
                let drop = &mut dropped[idx];
                drop.copy_from(out);
                drop.hadamard_inplace(mask);
            }
        }

        // Fused loss + gradient straight into the last gradient buffer
        // (dropout never applies to the output layer).
        let last = n_layers - 1;
        let loss = softmax_cross_entropy_into(&act[last], batch_y, &mut d_act[last]);

        // Backward and update layer by layer (output → input). The
        // gradient arriving at layer `idx` in `d_act[idx]` is
        // ∂L/∂(dropped output); undo the mask to get ∂L/∂output before
        // the layer's own backward pass. ∂L/∂input is written into
        // `d_act[idx − 1]` before this layer's weights are updated.
        for (idx, layer) in self.layers.iter_mut().enumerate().rev() {
            let (d_before, d_rest) = d_act.split_at_mut(idx);
            let g = &mut d_rest[0];
            if dropout_at(idx) {
                g.hadamard_inplace(&masks[idx]);
            }
            let input: &Matrix = if idx == 0 {
                batch_x
            } else if dropout_at(idx - 1) {
                &dropped[idx - 1]
            } else {
                &act[idx - 1]
            };
            let gr = &mut grads[idx];
            let d_input = if idx > 0 {
                Some(&mut d_before[idx - 1])
            } else {
                None
            };
            layer.backward_into(g, input, &act[idx], gr, d_input);
            if cfg.weight_decay > 0.0 {
                gr.weights.axpy_inplace(cfg.weight_decay, &layer.weights);
            }
            let state = &mut self.states[idx];
            state
                .weights
                .update(opt, lr, layer.weights.data_mut(), gr.weights.data());
            state.bias.update(opt, lr, &mut layer.bias, &gr.bias);
        }
        loss
    }

    /// Whether every weight and bias is finite (NaN/∞ free).
    fn params_finite(&self) -> bool {
        self.layers.iter().all(|l| {
            l.weights.data().iter().all(|v| v.is_finite()) && l.bias.iter().all(|v| v.is_finite())
        })
    }

    /// Validate `fit` inputs against the network's shape.
    fn check_fit_inputs(&self, x: &Matrix, labels: &[usize]) -> Result<(), NnError> {
        if x.rows() == 0 {
            return Err(NnError::EmptyTrainingSet);
        }
        if labels.len() != x.rows() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} labels", x.rows()),
                actual: format!("{} labels", labels.len()),
            });
        }
        if x.cols() != self.input_dim() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} columns", self.input_dim()),
                actual: format!("{} columns", x.cols()),
            });
        }
        let classes = self.output_dim();
        if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
            return Err(NnError::InvalidLabel {
                label: bad,
                classes,
            });
        }
        Ok(())
    }

    /// The original allocating trainer, kept verbatim as the equivalence
    /// oracle for [`Self::fit`] — the proptest suite asserts both paths
    /// produce bitwise-identical weights, reports, and predictions.
    pub fn fit_reference(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        cfg: &TrainConfig,
    ) -> Result<TrainReport, NnError> {
        self.check_fit_inputs(x, labels)?;
        if self.states.len() != self.layers.len() {
            self.states = self.layers.iter().map(|_| LayerState::default()).collect();
        }

        let batch = cfg.batch_size.max(1);
        let mut rng = StdRng::seed_from_u64(cfg.shuffle_seed);
        let mut report = TrainReport::default();

        // Optional validation split for early stopping.
        let mut all: Vec<usize> = (0..x.rows()).collect();
        all.shuffle(&mut rng);
        let val_fraction = cfg.validation_fraction.clamp(0.0, 0.5);
        let n_val = if val_fraction > 0.0 {
            ((x.rows() as f32 * val_fraction) as usize).min(x.rows().saturating_sub(1))
        } else {
            0
        };
        let (val_idx, train_idx) = all.split_at(n_val);
        let val_x = (!val_idx.is_empty()).then(|| x.select_rows(val_idx));
        let val_y: Vec<usize> = val_idx.iter().map(|&i| labels[i]).collect();
        let mut order: Vec<usize> = train_idx.to_vec();

        let mut best_val = f32::INFINITY;
        let mut best_layers: Option<Vec<Dense>> = None;
        let mut since_best = 0usize;

        for (_epoch, lr) in cfg.schedule.iter() {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(batch) {
                let bx = x.select_rows(chunk);
                let by: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                epoch_loss += self.train_step(&bx, &by, lr, cfg, &mut rng);
                batches += 1;
            }
            report.epoch_losses.push(epoch_loss / batches.max(1) as f32);

            if let Some(vx) = &val_x {
                let val_loss = crate::loss::cross_entropy(&self.logits(vx), &val_y);
                report.validation_losses.push(val_loss);
                if val_loss < best_val {
                    best_val = val_loss;
                    best_layers = Some(self.layers.clone());
                    since_best = 0;
                } else {
                    since_best += 1;
                    if since_best >= cfg.patience.max(1) {
                        report.stopped_early = true;
                        break;
                    }
                }
            }
        }
        if let Some(best) = best_layers {
            self.layers = best;
        }
        report.final_accuracy = accuracy(&self.logits(x), labels);
        Ok(report)
    }

    /// One forward/backward/update step on a minibatch; returns the loss.
    fn train_step(
        &mut self,
        bx: &Matrix,
        by: &[usize],
        lr: f32,
        cfg: &TrainConfig,
        rng: &mut StdRng,
    ) -> f32 {
        use rand::Rng;
        let opt = &cfg.optimizer;
        let n_layers = self.layers.len();
        let keep = 1.0 - cfg.dropout.clamp(0.0, 0.95);

        // Forward with caches; inverted dropout on hidden activations.
        let mut caches: Vec<DenseCache> = Vec::with_capacity(n_layers);
        let mut masks: Vec<Option<Matrix>> = vec![None; n_layers];
        let mut h = bx.clone();
        for (idx, layer) in self.layers.iter().enumerate() {
            let (mut out, cache) = layer.forward(&h);
            caches.push(cache);
            if cfg.dropout > 0.0 && idx + 1 < n_layers {
                let mut mask = Matrix::zeros(out.rows(), out.cols());
                for v in mask.data_mut() {
                    *v = if rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 };
                }
                out.hadamard_inplace(&mask);
                masks[idx] = Some(mask);
            }
            h = out;
        }
        let (loss, mut grad) = softmax_cross_entropy(&h, by);

        // Backward and update layer by layer (output → input). `grad`
        // arriving at layer `idx` is ∂L/∂(dropped output); undo the mask
        // to get ∂L/∂output before the layer's own backward pass.
        for (idx, layer) in self.layers.iter_mut().enumerate().rev() {
            if let Some(mask) = &masks[idx] {
                grad.hadamard_inplace(mask);
            }
            let (mut grads, d_input) = layer.backward(&grad, &caches[idx]);
            if cfg.weight_decay > 0.0 {
                grads.weights.axpy_inplace(cfg.weight_decay, &layer.weights);
            }
            let state = &mut self.states[idx];
            state
                .weights
                .update(opt, lr, layer.weights.data_mut(), grads.weights.data());
            state.bias.update(opt, lr, &mut layer.bias, &grads.bias);
            grad = d_input;
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression tests for the tentpole claim: once the workspace is
    /// warm, a training step and a scoring pass touch the heap zero
    /// times. Shapes are kept far below `PAR_MIN_FLOPS` so every matmul
    /// stays on the calling thread (spawning workers allocates).
    #[cfg(feature = "alloc-count")]
    mod alloc_free {
        use super::*;
        use crate::alloc_count::allocation_count;
        use crate::workspace::{ScoreWorkspace, TrainWorkspace};

        fn fill(m: &mut Matrix, rows: usize, cols: usize) {
            m.resize_zeroed(rows, cols);
            for (i, v) in m.data_mut().iter_mut().enumerate() {
                *v = ((i % 7) as f32) * 0.25 - 0.5;
            }
        }

        #[test]
        fn steady_state_train_step_is_allocation_free() {
            let mut net = Mlp::new(&[12, 10, 6, 2], 9);
            // Dropout and weight decay on, so the mask-fill and decay
            // branches are exercised too.
            let cfg = TrainConfig {
                dropout: 0.2,
                weight_decay: 0.01,
                ..TrainConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(33);
            let mut ws = TrainWorkspace::new();
            ws.ensure_layers(net.layers.len());
            fill(&mut ws.batch_x, 16, 12);
            ws.batch_y.clear();
            ws.batch_y.extend((0..16).map(|i| i % 2));

            // Warm-up: the first steps grow the activation/gradient
            // buffers and the optimizer's lazily-created moment vectors.
            for _ in 0..3 {
                net.train_step_ws(1e-3, &cfg, &mut rng, &mut ws);
            }

            let before = allocation_count();
            let loss = net.train_step_ws(1e-3, &cfg, &mut rng, &mut ws);
            let allocated = allocation_count() - before;
            assert!(loss.is_finite());
            assert_eq!(allocated, 0, "steady-state train_step hit the heap");
        }

        #[test]
        fn steady_state_scoring_is_allocation_free() {
            let net = Mlp::new(&[12, 10, 6, 2], 9);
            let mut x = Matrix::zeros(0, 0);
            fill(&mut x, 16, 12);
            let mut ws = ScoreWorkspace::new();
            let mut out = Vec::new();
            net.predict_proba_into(&x, &mut ws, &mut out);

            out.clear();
            let before = allocation_count();
            net.predict_proba_into(&x, &mut ws, &mut out);
            let allocated = allocation_count() - before;
            assert_eq!(out.len(), 16);
            assert_eq!(allocated, 0, "steady-state scoring hit the heap");
        }
    }

    fn xor_data() -> (Matrix, Vec<usize>) {
        // XOR with slight feature redundancy so the 2-layer net solves it fast.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            for _ in 0..8 {
                rows.push(vec![a, b]);
                labels.push(((a as i32) ^ (b as i32)) as usize);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn leapme_architecture_shape() {
        let net = Mlp::leapme(637, 1);
        assert_eq!(net.input_dim(), 637);
        assert_eq!(net.output_dim(), 2);
        let dims: Vec<(usize, usize)> = net
            .layers()
            .iter()
            .map(|l| (l.in_dim(), l.out_dim()))
            .collect();
        assert_eq!(dims, vec![(637, 128), (128, 64), (64, 2)]);
        assert_eq!(net.param_count(), 637 * 128 + 128 + 128 * 64 + 64 + 64 * 2 + 2);
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut net = Mlp::new(&[2, 16, 8, 2], 3);
        let cfg = TrainConfig {
            batch_size: 8,
            schedule: LrSchedule::new(vec![(200, 0.01)]),
            ..TrainConfig::default()
        };
        let report = net.fit(&x, &y, &cfg).unwrap();
        assert!(
            report.final_accuracy > 0.95,
            "XOR accuracy {}",
            report.final_accuracy
        );
        // Loss should broadly decrease.
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(last < first * 0.5, "loss {first} → {last}");
    }

    #[test]
    fn probabilities_are_valid() {
        let (x, y) = xor_data();
        let mut net = Mlp::new(&[2, 8, 2], 4);
        net.fit(&x, &y, &TrainConfig::default()).unwrap();
        let probs = net.predict_proba(&x);
        assert_eq!(probs.len(), x.rows());
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn deterministic_given_seeds() {
        let (x, y) = xor_data();
        let run = || {
            let mut net = Mlp::new(&[2, 8, 2], 5);
            net.fit(&x, &y, &TrainConfig::default()).unwrap();
            net.predict_proba(&x)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn errors_on_empty_training_set() {
        let mut net = Mlp::new(&[2, 4, 2], 0);
        let err = net
            .fit(&Matrix::zeros(0, 2), &[], &TrainConfig::default())
            .unwrap_err();
        assert_eq!(err, NnError::EmptyTrainingSet);
    }

    #[test]
    fn errors_on_label_mismatch() {
        let mut net = Mlp::new(&[2, 4, 2], 0);
        let err = net
            .fit(&Matrix::zeros(3, 2), &[0, 1], &TrainConfig::default())
            .unwrap_err();
        assert!(matches!(err, NnError::ShapeMismatch { .. }));
    }

    #[test]
    fn errors_on_bad_label() {
        let mut net = Mlp::new(&[2, 4, 2], 0);
        let err = net
            .fit(&Matrix::zeros(2, 2), &[0, 7], &TrainConfig::default())
            .unwrap_err();
        assert_eq!(
            err,
            NnError::InvalidLabel {
                label: 7,
                classes: 2
            }
        );
    }

    #[test]
    fn errors_on_wrong_width() {
        let mut net = Mlp::new(&[3, 4, 2], 0);
        let err = net
            .fit(&Matrix::zeros(2, 2), &[0, 1], &TrainConfig::default())
            .unwrap_err();
        assert!(matches!(err, NnError::ShapeMismatch { .. }));
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let (x, y) = xor_data();
        let mut net = Mlp::new(&[2, 8, 2], 6);
        net.fit(&x, &y, &TrainConfig::default()).unwrap();
        let json = serde_json::to_string(&net).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        assert_eq!(net.predict_proba(&x), back.predict_proba(&x));
    }

    #[test]
    fn dropout_still_learns() {
        let (x, y) = xor_data();
        let mut net = Mlp::new(&[2, 32, 16, 2], 8);
        let report = net
            .fit(
                &x,
                &y,
                &TrainConfig {
                    batch_size: 8,
                    schedule: LrSchedule::new(vec![(250, 0.01)]),
                    dropout: 0.2,
                    ..TrainConfig::default()
                },
            )
            .unwrap();
        assert!(
            report.final_accuracy > 0.9,
            "dropout run accuracy {}",
            report.final_accuracy
        );
    }

    #[test]
    fn dropout_is_deterministic_given_seed() {
        let (x, y) = xor_data();
        let run = || {
            let mut net = Mlp::new(&[2, 8, 2], 9);
            net.fit(
                &x,
                &y,
                &TrainConfig {
                    dropout: 0.3,
                    ..TrainConfig::default()
                },
            )
            .unwrap();
            net.predict_proba(&x)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let (x, y) = xor_data();
        let norm_after = |decay: f32| {
            let mut net = Mlp::new(&[2, 16, 2], 10);
            net.fit(
                &x,
                &y,
                &TrainConfig {
                    schedule: LrSchedule::new(vec![(100, 0.01)]),
                    weight_decay: decay,
                    ..TrainConfig::default()
                },
            )
            .unwrap();
            net.layers()
                .iter()
                .map(|l| l.weights.frobenius_norm())
                .sum::<f32>()
        };
        let free = norm_after(0.0);
        let decayed = norm_after(0.05);
        assert!(
            decayed < free,
            "weight decay should shrink weights: {decayed} vs {free}"
        );
    }

    #[test]
    fn early_stopping_halts_on_unlearnable_validation() {
        // Random labels on random inputs: the network memorizes the
        // training subset while validation loss worsens → early stop.
        let mut s: u64 = 42;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / u32::MAX as f32 * 2.0) - 1.0
        };
        let rows: Vec<Vec<f32>> = (0..60).map(|_| vec![next(), next()]).collect();
        let labels: Vec<usize> = (0..60).map(|_| usize::from(next() > 0.0)).collect();
        let x = Matrix::from_rows(&rows);

        let mut net = Mlp::new(&[2, 64, 32, 2], 11);
        let report = net
            .fit(
                &x,
                &labels,
                &TrainConfig {
                    batch_size: 8,
                    schedule: LrSchedule::new(vec![(400, 0.02)]),
                    validation_fraction: 0.25,
                    patience: 5,
                    ..TrainConfig::default()
                },
            )
            .unwrap();
        assert!(report.stopped_early, "expected early stop");
        assert!(report.epoch_losses.len() < 400);
        assert_eq!(report.validation_losses.len(), report.epoch_losses.len());
        // Best weights were restored: final validation loss equals the
        // minimum observed, within re-evaluation tolerance.
        let min_val = report
            .validation_losses
            .iter()
            .cloned()
            .fold(f32::INFINITY, f32::min);
        assert!(min_val.is_finite());
    }

    #[test]
    fn train_config_deserializes_old_format() {
        // Configs serialized before dropout/weight-decay/early-stopping
        // existed must still load (new fields default).
        let old = r#"{
            "batch_size": 32,
            "schedule": {"stages": [[10, 0.001]]},
            "optimizer": {"Adam": {"beta1": 0.9, "beta2": 0.999, "eps": 1e-8}},
            "shuffle_seed": 1,
            "verbose": false
        }"#;
        let cfg: TrainConfig = serde_json::from_str(old).unwrap();
        assert_eq!(cfg.dropout, 0.0);
        assert_eq!(cfg.weight_decay, 0.0);
        assert_eq!(cfg.validation_fraction, 0.0);
        assert_eq!(cfg.patience, 3);
        assert_eq!(cfg.max_loss_retries, 3);
        assert_eq!(cfg.lr_backoff, 0.1);
    }

    #[test]
    fn train_report_deserializes_old_format() {
        // Reports serialized before recovery telemetry existed must
        // still load (the counter defaults to zero).
        let old = r#"{
            "epoch_losses": [0.7, 0.5],
            "validation_losses": [],
            "stopped_early": false,
            "final_accuracy": 0.9
        }"#;
        let report: TrainReport = serde_json::from_str(old).unwrap();
        assert_eq!(report.recoveries, 0);
    }

    #[test]
    fn nonfinite_loss_exhausts_retries_and_errors() {
        // An absurd learning rate blows the weights up after the first
        // minibatch; the second batch's gradients overflow and poison
        // the weights with NaN (the clamped loss stays finite, so the
        // parameter scan is what must catch it). Stepping the rate down
        // by 0.1 three times (1e30 → 1e27) cannot save it, so every
        // rollback re-poisons and the retry budget runs out at epoch 0.
        let (x, y) = xor_data();
        let mut net = Mlp::new(&[2, 16, 8, 2], 3);
        let cfg = TrainConfig {
            batch_size: 8,
            schedule: LrSchedule::new(vec![(5, 1e30)]),
            ..TrainConfig::default()
        };
        let err = net.fit(&x, &y, &cfg).unwrap_err();
        assert_eq!(
            err,
            NnError::NonFiniteLoss {
                epoch: 0,
                retries: 3
            }
        );
    }

    #[test]
    fn zero_retries_fails_fast_on_poisoned_epoch() {
        let (x, y) = xor_data();
        let mut net = Mlp::new(&[2, 16, 8, 2], 3);
        let cfg = TrainConfig {
            batch_size: 8,
            schedule: LrSchedule::new(vec![(5, 1e30)]),
            max_loss_retries: 0,
            ..TrainConfig::default()
        };
        let err = net.fit(&x, &y, &cfg).unwrap_err();
        assert_eq!(
            err,
            NnError::NonFiniteLoss {
                epoch: 0,
                retries: 0
            }
        );
    }

    #[test]
    fn no_validation_means_no_early_stop() {
        let (x, y) = xor_data();
        let mut net = Mlp::new(&[2, 8, 2], 12);
        let report = net
            .fit(
                &x,
                &y,
                &TrainConfig {
                    schedule: LrSchedule::new(vec![(5, 1e-3)]),
                    ..TrainConfig::default()
                },
            )
            .unwrap();
        assert!(!report.stopped_early);
        assert!(report.validation_losses.is_empty());
        assert_eq!(report.epoch_losses.len(), 5);
    }

    #[test]
    fn workspace_fit_matches_reference_bitwise() {
        let (x, y) = xor_data();
        for cfg in [
            TrainConfig::default(),
            TrainConfig {
                dropout: 0.3,
                ..TrainConfig::default()
            },
            TrainConfig {
                batch_size: 7,
                validation_fraction: 0.25,
                patience: 2,
                weight_decay: 0.01,
                ..TrainConfig::default()
            },
        ] {
            let mut a = Mlp::new(&[2, 8, 4, 2], 21);
            let mut b = a.clone();
            let ra = a.fit(&x, &y, &cfg).unwrap();
            let rb = b.fit_reference(&x, &y, &cfg).unwrap();
            assert_eq!(ra.epoch_losses, rb.epoch_losses);
            assert_eq!(ra.validation_losses, rb.validation_losses);
            assert_eq!(ra.stopped_early, rb.stopped_early);
            assert_eq!(ra.final_accuracy, rb.final_accuracy);
            assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
            for (la, lb) in a.layers().iter().zip(b.layers()) {
                assert_eq!(la.weights, lb.weights);
                assert_eq!(la.bias, lb.bias);
            }
        }
    }

    #[test]
    fn logits_into_matches_logits() {
        let (x, y) = xor_data();
        let mut net = Mlp::new(&[2, 8, 2], 13);
        net.fit(&x, &y, &TrainConfig::default()).unwrap();
        let mut ws = crate::workspace::ScoreWorkspace::new();
        let reference = net.logits(&x);
        let streamed = net.logits_into(&x, &mut ws);
        assert_eq!(reference, *streamed);
        let mut out = Vec::new();
        net.predict_proba_into(&x, &mut ws, &mut out);
        assert_eq!(out, net.predict_proba(&x));
        // Appending semantics: a second call extends instead of clobbering.
        net.predict_proba_into(&x, &mut ws, &mut out);
        assert_eq!(out.len(), 2 * x.rows());
    }

    #[test]
    fn workspace_reuse_across_fits_is_clean() {
        // A stale checkpoint or buffer from a previous fit must not leak
        // into the next one, even across different configs.
        let (x, y) = xor_data();
        let cfg_es = TrainConfig {
            validation_fraction: 0.25,
            patience: 1,
            schedule: LrSchedule::new(vec![(30, 0.01)]),
            ..TrainConfig::default()
        };
        let mut ws = TrainWorkspace::new();
        let mut warm = Mlp::new(&[2, 8, 2], 14);
        warm.fit_with_workspace(&x, &y, &cfg_es, &mut ws).unwrap();
        // Now run a no-validation fit through the same workspace.
        let mut a = Mlp::new(&[2, 8, 2], 15);
        let mut b = a.clone();
        let cfg = TrainConfig::default();
        a.fit_with_workspace(&x, &y, &cfg, &mut ws).unwrap();
        b.fit_reference(&x, &y, &cfg).unwrap();
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn workspace_fit_matches_reference_across_thread_counts() {
        // Shapes chosen so the first-layer matmul crosses PAR_MIN_FLOPS
        // (64 × 96 × 192 ≈ 1.2 M multiply–adds) and the kernels actually
        // consult the LEAPME_THREADS override; training must stay bitwise
        // identical no matter how many workers the matmuls fan out to.
        let _guard = crate::threads::ENV_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let prev = std::env::var(crate::threads::THREADS_ENV).ok();

        let mut rng = StdRng::seed_from_u64(99);
        let x = random_matrix(64, 96, &mut rng);
        let y: Vec<usize> = (0..64).map(|i| i % 2).collect();
        let cfg = TrainConfig {
            batch_size: 64,
            schedule: LrSchedule::new(vec![(2, 1e-3)]),
            ..TrainConfig::default()
        };

        let mut baseline: Option<Mlp> = None;
        for threads in [1usize, 2, 3] {
            std::env::set_var(crate::threads::THREADS_ENV, threads.to_string());
            let mut net = Mlp::new(&[96, 192, 2], 5);
            net.fit(&x, &y, &cfg).unwrap();
            match &baseline {
                None => baseline = Some(net),
                Some(b) => {
                    for (la, lb) in net.layers().iter().zip(b.layers()) {
                        assert_eq!(la.weights, lb.weights, "threads={threads}");
                        assert_eq!(la.bias, lb.bias, "threads={threads}");
                    }
                }
            }
        }

        match prev {
            Some(v) => std::env::set_var(crate::threads::THREADS_ENV, v),
            None => std::env::remove_var(crate::threads::THREADS_ENV),
        }
    }

    fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        use rand::Rng;
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen::<f32>() - 0.5).collect();
        Matrix::from_vec(rows, cols, data)
    }

    mod equivalence_proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// The workspace trainer is bitwise-identical to the
            /// allocating reference over random shapes, batch sizes,
            /// dropout rates, and early-stopping splits.
            #[test]
            fn fit_matches_reference(
                rows in 4usize..24,
                cols in 1usize..8,
                hidden in 1usize..10,
                batch_size in 1usize..12,
                dropout_on in 0usize..2,
                validation_on in 0usize..2,
                seed in 0u64..1_000,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let x = random_matrix(rows, cols, &mut rng);
                let y: Vec<usize> = (0..rows).map(|i| (i + seed as usize) % 2).collect();
                let cfg = TrainConfig {
                    batch_size,
                    schedule: LrSchedule::new(vec![(3, 1e-3)]),
                    shuffle_seed: seed ^ 0xABCD,
                    dropout: if dropout_on == 1 { 0.25 } else { 0.0 },
                    weight_decay: 0.01,
                    validation_fraction: if validation_on == 1 { 0.25 } else { 0.0 },
                    patience: 1,
                    ..TrainConfig::default()
                };
                let mut a = Mlp::new(&[cols, hidden, 2], seed.wrapping_add(1));
                let mut b = a.clone();
                let ra = a.fit(&x, &y, &cfg).unwrap();
                let rb = b.fit_reference(&x, &y, &cfg).unwrap();
                prop_assert_eq!(ra.epoch_losses, rb.epoch_losses);
                prop_assert_eq!(ra.validation_losses, rb.validation_losses);
                prop_assert_eq!(ra.stopped_early, rb.stopped_early);
                prop_assert_eq!(ra.final_accuracy, rb.final_accuracy);
                prop_assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
                for (la, lb) in a.layers().iter().zip(b.layers()) {
                    prop_assert_eq!(&la.weights, &lb.weights);
                    prop_assert_eq!(&la.bias, &lb.bias);
                }
            }

            /// Workspace scoring equals the allocating path for random
            /// shapes, including when one workspace is reused across
            /// differently-shaped batches.
            #[test]
            fn scoring_matches_reference(
                rows_a in 1usize..20,
                rows_b in 1usize..20,
                cols in 1usize..10,
                hidden in 1usize..12,
                seed in 0u64..1_000,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let net = Mlp::new(&[cols, hidden, 2], seed.wrapping_add(7));
                let mut ws = crate::workspace::ScoreWorkspace::new();
                for rows in [rows_a, rows_b] {
                    let x = random_matrix(rows, cols, &mut rng);
                    prop_assert_eq!(&net.logits(&x), net.logits_into(&x, &mut ws));
                    let mut out = Vec::new();
                    net.predict_proba_into(&x, &mut ws, &mut out);
                    prop_assert_eq!(out, net.predict_proba(&x));
                }
            }
        }
    }

    mod durable {
        use super::*;
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicUsize, Ordering};

        fn tmp(name: &str) -> PathBuf {
            let dir = std::env::temp_dir().join("leapme_nn_durable_tests");
            std::fs::create_dir_all(&dir).unwrap();
            dir.join(name)
        }

        fn assert_same_net(a: &Mlp, b: &Mlp) {
            for (la, lb) in a.layers().iter().zip(b.layers()) {
                assert_eq!(la.weights, lb.weights);
                assert_eq!(la.bias, lb.bias);
            }
        }

        #[test]
        fn durable_fit_matches_fit_bitwise() {
            let (x, y) = xor_data();
            for cfg in [
                TrainConfig::default(),
                TrainConfig {
                    dropout: 0.3,
                    validation_fraction: 0.25,
                    patience: 2,
                    ..TrainConfig::default()
                },
            ] {
                let mut a = Mlp::new(&[2, 8, 4, 2], 31);
                let mut b = a.clone();
                let ra = a.fit(&x, &y, &cfg).unwrap();
                let rb = b.fit_durable(&x, &y, &cfg, &FitControl::default()).unwrap();
                assert_eq!(ra.epoch_losses, rb.epoch_losses);
                assert_eq!(ra.validation_losses, rb.validation_losses);
                assert_eq!(ra.final_accuracy, rb.final_accuracy);
                assert_same_net(&a, &b);
            }
        }

        #[test]
        fn checkpointing_does_not_change_the_model() {
            let (x, y) = xor_data();
            let cfg = TrainConfig::default();
            let path = tmp("every_epoch.ckpt");
            let mut a = Mlp::new(&[2, 8, 2], 32);
            let mut b = a.clone();
            a.fit(&x, &y, &cfg).unwrap();
            b.fit_durable(
                &x,
                &y,
                &cfg,
                &FitControl {
                    checkpoint_path: Some(&path),
                    checkpoint_every: 1,
                    ..FitControl::default()
                },
            )
            .unwrap();
            assert_same_net(&a, &b);
            assert!(!path.exists(), "checkpoint must be removed on completion");
        }

        #[test]
        fn cancel_then_resume_is_bitwise_identical() {
            let (x, y) = xor_data();
            // Exercise the full state surface: dropout (RNG mid-stream),
            // early-stopping bookkeeping, and the staged schedule.
            let cfg = TrainConfig {
                dropout: 0.2,
                validation_fraction: 0.25,
                patience: 50,
                schedule: LrSchedule::new(vec![(8, 1e-3), (6, 1e-4)]),
                ..TrainConfig::default()
            };
            let mut reference = Mlp::new(&[2, 8, 4, 2], 33);
            let fresh = reference.clone();
            let ref_report = reference.fit(&x, &y, &cfg).unwrap();

            for cancel_after in [1usize, 3, 7, 11] {
                let path = tmp(&format!("cancel_at_{cancel_after}.ckpt"));
                std::fs::remove_file(&path).ok();
                let mut net = fresh.clone();
                let seen = AtomicUsize::new(0);
                let cancel = move || seen.fetch_add(1, Ordering::SeqCst) >= cancel_after;
                let err = net
                    .fit_durable(
                        &x,
                        &y,
                        &cfg,
                        &FitControl {
                            checkpoint_path: Some(&path),
                            checkpoint_every: 0,
                            resume: false,
                            cancel: Some(&cancel),
                        },
                    )
                    .unwrap_err();
                assert_eq!(err, NnError::Cancelled);
                assert!(path.exists(), "cancellation must persist a checkpoint");

                let mut resumed = fresh.clone();
                let report = resumed
                    .fit_durable(
                        &x,
                        &y,
                        &cfg,
                        &FitControl {
                            checkpoint_path: Some(&path),
                            resume: true,
                            ..FitControl::default()
                        },
                    )
                    .unwrap();
                assert_same_net(&reference, &resumed);
                assert_eq!(report.epoch_losses, ref_report.epoch_losses);
                assert_eq!(report.validation_losses, ref_report.validation_losses);
                assert!(!path.exists());
            }
        }

        #[test]
        fn mismatched_checkpoint_is_rejected() {
            let (x, y) = xor_data();
            let cfg = TrainConfig::default();
            let path = tmp("mismatch.ckpt");
            std::fs::remove_file(&path).ok();
            let mut net = Mlp::new(&[2, 8, 2], 34);
            let cancel = || true;
            let err = net
                .fit_durable(
                    &x,
                    &y,
                    &cfg,
                    &FitControl {
                        checkpoint_path: Some(&path),
                        cancel: Some(&cancel),
                        ..FitControl::default()
                    },
                )
                .unwrap_err();
            assert_eq!(err, NnError::Cancelled);

            // Different shuffle seed → different run identity.
            let other = TrainConfig {
                shuffle_seed: cfg.shuffle_seed ^ 1,
                ..cfg.clone()
            };
            let mut resumed = Mlp::new(&[2, 8, 2], 34);
            let err = resumed
                .fit_durable(
                    &x,
                    &y,
                    &other,
                    &FitControl {
                        checkpoint_path: Some(&path),
                        resume: true,
                        ..FitControl::default()
                    },
                )
                .unwrap_err();
            assert!(matches!(err, NnError::Checkpoint(_)), "got {err:?}");

            // Different architecture with the same data/config.
            let mut wrong_arch = Mlp::new(&[2, 16, 2], 34);
            let err = wrong_arch
                .fit_durable(
                    &x,
                    &y,
                    &cfg,
                    &FitControl {
                        checkpoint_path: Some(&path),
                        resume: true,
                        ..FitControl::default()
                    },
                )
                .unwrap_err();
            assert!(matches!(err, NnError::Checkpoint(_)), "got {err:?}");
            std::fs::remove_file(&path).ok();
        }

        #[test]
        fn resume_without_checkpoint_trains_from_scratch() {
            let (x, y) = xor_data();
            let cfg = TrainConfig::default();
            let path = tmp("never_written.ckpt");
            std::fs::remove_file(&path).ok();
            let mut a = Mlp::new(&[2, 8, 2], 35);
            let mut b = a.clone();
            a.fit(&x, &y, &cfg).unwrap();
            b.fit_durable(
                &x,
                &y,
                &cfg,
                &FitControl {
                    checkpoint_path: Some(&path),
                    resume: true,
                    ..FitControl::default()
                },
            )
            .unwrap();
            assert_same_net(&a, &b);
        }

        #[test]
        fn corrupt_checkpoint_is_typed_error_on_resume() {
            let (x, y) = xor_data();
            let cfg = TrainConfig::default();
            let path = tmp("corrupt.ckpt");
            let mut net = Mlp::new(&[2, 8, 2], 36);
            let cancel = || true;
            net.fit_durable(
                &x,
                &y,
                &cfg,
                &FitControl {
                    checkpoint_path: Some(&path),
                    cancel: Some(&cancel),
                    ..FitControl::default()
                },
            )
            .unwrap_err();
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            let mut resumed = Mlp::new(&[2, 8, 2], 36);
            let err = resumed
                .fit_durable(
                    &x,
                    &y,
                    &cfg,
                    &FitControl {
                        checkpoint_path: Some(&path),
                        resume: true,
                        ..FitControl::default()
                    },
                )
                .unwrap_err();
            assert!(matches!(err, NnError::Checkpoint(_)), "got {err:?}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn staged_schedule_runs_all_epochs() {
        let (x, y) = xor_data();
        let mut net = Mlp::new(&[2, 8, 2], 7);
        let report = net
            .fit(
                &x,
                &y,
                &TrainConfig {
                    schedule: LrSchedule::leapme(),
                    ..TrainConfig::default()
                },
            )
            .unwrap();
        assert_eq!(report.epoch_losses.len(), 20);
    }
}
