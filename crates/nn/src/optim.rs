//! First-order optimizers: SGD (with momentum), Adam, AdaGrad.
//!
//! The paper trains its network with a staged learning rate but does not
//! name the optimizer; Adam is the de-facto default for small dense
//! networks and is what we use for LEAPME, while AdaGrad is required by the
//! GloVe trainer in `leapme-embedding`, which reuses this module's math
//! via its own per-parameter implementation. SGD is kept for ablations.

use serde::{Deserialize, Serialize};

/// Optimizer selection and hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Optimizer {
    /// Stochastic gradient descent with optional momentum.
    Sgd {
        /// Momentum coefficient in `[0, 1)`; `0.0` disables momentum.
        momentum: f32,
    },
    /// Adam (Kingma & Ba 2015).
    Adam {
        /// First-moment decay (default `0.9`).
        beta1: f32,
        /// Second-moment decay (default `0.999`).
        beta2: f32,
        /// Division-by-zero guard (default `1e-8`).
        eps: f32,
    },
    /// AdaGrad (Duchi et al. 2011).
    Adagrad {
        /// Division-by-zero guard (default `1e-8`).
        eps: f32,
    },
}

impl Optimizer {
    /// Adam with standard hyper-parameters.
    pub fn adam() -> Self {
        Optimizer::Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Plain SGD (no momentum).
    pub fn sgd() -> Self {
        Optimizer::Sgd { momentum: 0.0 }
    }

    /// AdaGrad with the standard epsilon.
    pub fn adagrad() -> Self {
        Optimizer::Adagrad { eps: 1e-8 }
    }
}

/// Per-parameter-tensor optimizer state.
///
/// One `ParamState` is kept per weight matrix / bias vector; it lazily
/// allocates the moment buffers on first update.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamState {
    m: Vec<f32>,
    v: Vec<f32>,
    step: u64,
}

impl ParamState {
    /// Fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply one update: `params ← params − lr · direction(grads)`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grads.len()`, or if state was previously
    /// used with a different-size tensor.
    pub fn update(&mut self, opt: &Optimizer, lr: f32, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        match *opt {
            Optimizer::Sgd { momentum } => {
                if momentum == 0.0 {
                    for (p, &g) in params.iter_mut().zip(grads) {
                        *p -= lr * g;
                    }
                } else {
                    self.ensure_m(params.len());
                    for ((p, &g), m) in params.iter_mut().zip(grads).zip(&mut self.m) {
                        *m = momentum * *m + g;
                        *p -= lr * *m;
                    }
                }
            }
            Optimizer::Adam { beta1, beta2, eps } => {
                self.ensure_m(params.len());
                self.ensure_v(params.len());
                self.step += 1;
                let t = self.step as f32;
                let bc1 = 1.0 - beta1.powf(t);
                let bc2 = 1.0 - beta2.powf(t);
                for (((p, &g), m), v) in params
                    .iter_mut()
                    .zip(grads)
                    .zip(&mut self.m)
                    .zip(&mut self.v)
                {
                    *m = beta1 * *m + (1.0 - beta1) * g;
                    *v = beta2 * *v + (1.0 - beta2) * g * g;
                    let m_hat = *m / bc1;
                    let v_hat = *v / bc2;
                    *p -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
            Optimizer::Adagrad { eps } => {
                self.ensure_v(params.len());
                for ((p, &g), v) in params.iter_mut().zip(grads).zip(&mut self.v) {
                    *v += g * g;
                    *p -= lr * g / (v.sqrt() + eps);
                }
            }
        }
    }

    /// The raw moment buffers and step counter `(m, v, step)`, for
    /// checkpoint persistence.
    pub fn parts(&self) -> (&[f32], &[f32], u64) {
        (&self.m, &self.v, self.step)
    }

    /// Rebuild state from buffers previously returned by [`Self::parts`].
    pub fn from_parts(m: Vec<f32>, v: Vec<f32>, step: u64) -> Self {
        ParamState { m, v, step }
    }

    fn ensure_m(&mut self, len: usize) {
        if self.m.is_empty() {
            self.m = vec![0.0; len];
        }
        assert_eq!(self.m.len(), len, "optimizer state reused with new shape");
    }

    fn ensure_v(&mut self, len: usize) {
        if self.v.is_empty() {
            self.v = vec![0.0; len];
        }
        assert_eq!(self.v.len(), len, "optimizer state reused with new shape");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x-3)² starting from 0 and check convergence.
    fn minimize(opt: Optimizer, lr: f32, steps: usize) -> f32 {
        let mut x = [0.0f32];
        let mut state = ParamState::new();
        for _ in 0..steps {
            let g = [2.0 * (x[0] - 3.0)];
            state.update(&opt, lr, &mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = minimize(Optimizer::sgd(), 0.1, 200);
        assert!((x - 3.0).abs() < 1e-3, "got {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let x = minimize(Optimizer::Sgd { momentum: 0.9 }, 0.02, 400);
        assert!((x - 3.0).abs() < 1e-2, "got {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = minimize(Optimizer::adam(), 0.1, 600);
        assert!((x - 3.0).abs() < 1e-2, "got {x}");
    }

    #[test]
    fn adagrad_makes_progress() {
        let x = minimize(Optimizer::adagrad(), 1.0, 500);
        assert!((x - 3.0).abs() < 0.1, "got {x}");
    }

    #[test]
    fn adam_step_size_bounded_by_lr() {
        // Adam's first step is ≈ lr regardless of gradient scale.
        let mut x = [0.0f32];
        let mut state = ParamState::new();
        state.update(&Optimizer::adam(), 0.001, &mut x, &[1e6]);
        assert!(x[0].abs() < 0.0011, "got {}", x[0]);
    }

    #[test]
    fn zero_gradient_is_noop_for_sgd() {
        let mut x = [5.0f32];
        let mut state = ParamState::new();
        state.update(&Optimizer::sgd(), 0.1, &mut x, &[0.0]);
        assert_eq!(x[0], 5.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        let mut x = [0.0f32; 2];
        ParamState::new().update(&Optimizer::sgd(), 0.1, &mut x, &[0.0]);
    }

    #[test]
    #[should_panic(expected = "new shape")]
    fn rejects_shape_change() {
        let mut state = ParamState::new();
        let mut a = [0.0f32; 2];
        state.update(&Optimizer::adam(), 0.1, &mut a, &[1.0, 1.0]);
        let mut b = [0.0f32; 3];
        state.update(&Optimizer::adam(), 0.1, &mut b, &[1.0, 1.0, 1.0]);
    }
}
