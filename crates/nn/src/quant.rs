//! Opt-in int8 quantized inference for trained [`Mlp`]s.
//!
//! The f32 scoring path is the reference: training, checkpoint resume,
//! and the default CLI all stay on it, bitwise reproducible. This
//! module trades that exactness for throughput when the caller opts in:
//! weights are quantized once per network to symmetric int8 with one
//! scale per *output column* (so each output neuron keeps its own
//! dynamic range), activations are quantized per *input row* at score
//! time, and the affine transform accumulates in i32 — integer
//! arithmetic, so the accumulation order cannot perturb the result.
//! Dequantization, bias, ReLU, and the final softmax run in f32.
//!
//! Quantization error is bounded, not zero: callers gate the path with
//! [`QuantizedMlp::max_abs_error`] on a calibration batch against
//! [`DEFAULT_TOLERANCE`] (the `leapme-core` scorer falls back to f32
//! when the gate fails, so an ill-conditioned network can never
//! silently degrade scores).
//!
//! On x86-64 the inner i8·i8→i32 dot product runs on SSE2
//! `_mm_madd_epi16` lanes when the CPU has them; because the lane and
//! scalar paths do the same exact integer arithmetic, their outputs are
//! bitwise identical (pinned by tests), keeping quantized scores
//! independent of the host's SIMD support.

use crate::layers::Activation;
use crate::matrix::Matrix;
use crate::network::Mlp;

/// Default gate for quantized scoring: the largest acceptable absolute
/// difference between quantized and f32 class-1 probabilities on a
/// calibration batch. Probabilities live in `[0, 1]`, so `0.05` keeps
/// ranking-quality degradation negligible while tolerating int8
/// rounding through several layers.
pub const DEFAULT_TOLERANCE: f32 = 0.05;

/// One dense layer with int8 weights.
///
/// Weights are stored transposed relative to [`crate::layers::Dense`]
/// (`out_dim` contiguous rows of `in_dim` each) so the per-output dot
/// product walks both operand slices forward.
struct QuantizedDense {
    /// `out_dim × in_dim`, row per output neuron.
    weights: Vec<i8>,
    /// Per-output-column symmetric scale: `w ≈ q · scale`.
    scales: Vec<f32>,
    bias: Vec<f32>,
    activation: Activation,
    in_dim: usize,
    out_dim: usize,
}

impl QuantizedDense {
    fn from_dense(layer: &crate::layers::Dense) -> Self {
        let (in_dim, out_dim) = (layer.in_dim(), layer.out_dim());
        let mut weights = vec![0i8; in_dim * out_dim];
        let mut scales = vec![0.0f32; out_dim];
        for j in 0..out_dim {
            let mut amax = 0.0f32;
            for i in 0..in_dim {
                amax = amax.max(layer.weights.get(i, j).abs());
            }
            if amax == 0.0 {
                continue; // all-zero column: q = 0, scale 0
            }
            let scale = amax / 127.0;
            scales[j] = scale;
            let inv = 127.0 / amax;
            for i in 0..in_dim {
                let q = (layer.weights.get(i, j) * inv).round();
                weights[j * in_dim + i] = q.clamp(-127.0, 127.0) as i8;
            }
        }
        QuantizedDense {
            weights,
            scales,
            bias: layer.bias.clone(),
            activation: layer.activation,
            in_dim,
            out_dim,
        }
    }

    /// One input row → one output row, through row-quantized int8.
    fn forward_row(&self, x: &[f32], qx: &mut Vec<i8>, out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.in_dim);
        debug_assert_eq!(out.len(), self.out_dim);
        // Per-row symmetric activation quantization.
        let mut amax = 0.0f32;
        for &v in x {
            amax = amax.max(v.abs());
        }
        qx.clear();
        if amax == 0.0 {
            out.copy_from_slice(&self.bias);
        } else {
            let x_scale = amax / 127.0;
            let inv = 127.0 / amax;
            qx.extend(x.iter().map(|&v| (v * inv).round().clamp(-127.0, 127.0) as i8));
            for (j, o) in out.iter_mut().enumerate() {
                let w = &self.weights[j * self.in_dim..(j + 1) * self.in_dim];
                let acc = dot_i8(qx, w);
                *o = x_scale * self.scales[j] * acc as f32 + self.bias[j];
            }
        }
        if self.activation == Activation::Relu {
            for v in out.iter_mut() {
                *v = v.max(0.0);
            }
        }
    }
}

/// Exact i8·i8→i32 dot product; SSE2 lanes when available, scalar
/// otherwise — same integer sum either way.
#[inline]
fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    #[cfg(target_arch = "x86_64")]
    if let Some(d) = sse2::try_dot_i8(a, b) {
        return d;
    }
    dot_i8_scalar(a, b)
}

/// The portable reference dot product (also the oracle the SSE2 lane is
/// pinned against).
fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| i32::from(x) * i32::from(y))
        .sum()
}

/// Explicit SSE2 integer lane for the quantized dot product — one of
/// the crate's two scoped `allow(unsafe_code)` sites (see the crate
/// lint note).
///
/// i8 operands are sign-extended to i16 and fed to `_mm_madd_epi16`
/// (8 exact i16 products, adjacent pairs summed into 4 i32 lanes),
/// with the lanes reduced after the loop. `|q| ≤ 127` keeps every
/// product ≤ 16129, so neither the madd pair-sums nor the i32
/// accumulators can wrap for any realistic layer width — integer
/// addition is associative, making the lane bitwise identical to
/// [`dot_i8_scalar`].
#[cfg(target_arch = "x86_64")]
mod sse2 {
    #![allow(unsafe_code)]

    use core::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_cmpgt_epi8, _mm_cvtsi128_si32, _mm_loadu_si128,
        _mm_madd_epi16, _mm_setzero_si128, _mm_shuffle_epi32, _mm_unpackhi_epi8,
        _mm_unpacklo_epi8,
    };

    /// Lane width: one `__m128i` of i8.
    const W: usize = 16;

    /// [`super::dot_i8_scalar`] on SSE2 lanes, or `None` when SSE2 is
    /// unavailable.
    pub fn try_dot_i8(a: &[i8], b: &[i8]) -> Option<i32> {
        debug_assert_eq!(a.len(), b.len());
        if !std::arch::is_x86_feature_detected!("sse2") {
            return None;
        }
        // SAFETY: SSE2 availability was just confirmed.
        Some(unsafe { dot_i8(a, b) })
    }

    #[target_feature(enable = "sse2")]
    unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len() / W * W;
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        // SAFETY (whole loop): i + W ≤ len of both equal-length slices;
        // loads are unaligned-tolerant.
        unsafe {
            let zero = _mm_setzero_si128();
            let mut acc = zero;
            for i in (0..n).step_by(W) {
                let va = _mm_loadu_si128(ap.add(i).cast::<__m128i>());
                let vb = _mm_loadu_si128(bp.add(i).cast::<__m128i>());
                // Sign-extend i8 → i16: interleave with the sign mask
                // (0xFF where the byte is negative).
                let sa = _mm_cmpgt_epi8(zero, va);
                let sb = _mm_cmpgt_epi8(zero, vb);
                let a_lo = _mm_unpacklo_epi8(va, sa);
                let a_hi = _mm_unpackhi_epi8(va, sa);
                let b_lo = _mm_unpacklo_epi8(vb, sb);
                let b_hi = _mm_unpackhi_epi8(vb, sb);
                acc = _mm_add_epi32(acc, _mm_madd_epi16(a_lo, b_lo));
                acc = _mm_add_epi32(acc, _mm_madd_epi16(a_hi, b_hi));
            }
            // Horizontal reduction of the 4 i32 lanes.
            let hi = _mm_shuffle_epi32(acc, 0b00_01_10_11);
            let acc = _mm_add_epi32(acc, hi);
            let hi = _mm_shuffle_epi32(acc, 0b00_00_00_01);
            let mut dot = _mm_cvtsi128_si32(_mm_add_epi32(acc, hi));
            for i in n..a.len() {
                dot += i32::from(*a.get_unchecked(i)) * i32::from(*b.get_unchecked(i));
            }
            dot
        }
    }
}

/// Reusable buffers for [`QuantizedMlp`] scoring: two ping-pong f32
/// activation rows plus the quantized-input row. Steady-state scoring
/// performs no heap allocations once these are warm.
#[derive(Default)]
pub struct QuantWorkspace {
    act_a: Vec<f32>,
    act_b: Vec<f32>,
    qx: Vec<i8>,
}

impl QuantWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// An [`Mlp`] snapshot quantized to int8 for opt-in fast inference.
pub struct QuantizedMlp {
    layers: Vec<QuantizedDense>,
}

impl QuantizedMlp {
    /// Quantize a trained network's weights (the network itself is
    /// untouched — the f32 path stays available for fallback).
    ///
    /// # Panics
    ///
    /// Panics if the network has no layers.
    pub fn from_mlp(net: &Mlp) -> Self {
        assert!(!net.layers().is_empty(), "network has no layers");
        QuantizedMlp {
            layers: net.layers().iter().map(QuantizedDense::from_dense).collect(),
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Output dimensionality (class count).
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("network has layers").out_dim
    }

    /// Append the quantized probability of class 1 for each row of `x`
    /// to `out` (the int8 analog of [`Mlp::predict_proba_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.input_dim()` or the network does not
    /// have ≥ 2 output classes.
    pub fn predict_proba_into(&self, x: &Matrix, ws: &mut QuantWorkspace, out: &mut Vec<f32>) {
        assert_eq!(x.cols(), self.input_dim(), "input width mismatch");
        assert!(self.output_dim() >= 2, "need ≥2 classes for positive prob");
        out.reserve(x.rows());
        for r in 0..x.rows() {
            // Strict ping-pong: even layers write `act_a`, odd write
            // `act_b`, so each layer's input and output buffers are
            // always distinct fields.
            for (idx, layer) in self.layers.iter().enumerate() {
                if idx % 2 == 0 {
                    let input: &[f32] = if idx == 0 { x.row(r) } else { &ws.act_b };
                    ws.act_a.clear();
                    ws.act_a.resize(layer.out_dim, 0.0);
                    layer.forward_row(input, &mut ws.qx, &mut ws.act_a);
                } else {
                    let input: &[f32] = &ws.act_a;
                    ws.act_b.clear();
                    ws.act_b.resize(layer.out_dim, 0.0);
                    layer.forward_row(input, &mut ws.qx, &mut ws.act_b);
                }
            }
            let logits: &[f32] = if (self.layers.len() - 1).is_multiple_of(2) {
                &ws.act_a
            } else {
                &ws.act_b
            };
            out.push(softmax_prob1(logits));
        }
    }

    /// Quantized probability of class 1 for each row of `x`.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        let mut out = Vec::with_capacity(x.rows());
        self.predict_proba_into(x, &mut QuantWorkspace::new(), &mut out);
        out
    }

    /// Largest absolute difference between this quantized network's
    /// class-1 probabilities and the f32 reference on a calibration
    /// batch — the bounded-error oracle callers compare against
    /// [`DEFAULT_TOLERANCE`] before trusting the quantized path.
    pub fn max_abs_error(&self, net: &Mlp, calibration: &Matrix) -> f32 {
        let reference = net.predict_proba(calibration);
        let quantized = self.predict_proba(calibration);
        reference
            .iter()
            .zip(&quantized)
            .map(|(&r, &q)| (r - q).abs())
            .fold(0.0f32, f32::max)
    }
}

/// Numerically-stable two-plus-class softmax probability of class 1.
fn softmax_prob1(logits: &[f32]) -> f32 {
    let m = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let mut denom = 0.0f32;
    for &l in logits {
        denom += (l - m).exp();
    }
    (logits[1] - m).exp() / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_inputs(rows: usize, cols: usize, seed: u32) -> Matrix {
        let gen = |i: usize| -> f32 {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
            ((h % 2001) as f32 - 1000.0) / 250.0
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(gen).collect())
    }

    #[test]
    fn scalar_dot_known_values() {
        assert_eq!(dot_i8_scalar(&[], &[]), 0);
        assert_eq!(dot_i8_scalar(&[1, -2, 3], &[4, 5, -6]), 4 - 10 - 18);
        assert_eq!(dot_i8_scalar(&[127; 40], &[127; 40]), 127 * 127 * 40);
        assert_eq!(dot_i8_scalar(&[-127; 40], &[127; 40]), -127 * 127 * 40);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_dot_matches_scalar_at_all_tail_widths() {
        if !std::arch::is_x86_feature_detected!("sse2") {
            return;
        }
        for len in 0..67 {
            let a: Vec<i8> = (0..len)
                .map(|i| (((i as u32).wrapping_mul(2654435761) % 255) as i32 - 127) as i8)
                .collect();
            let b: Vec<i8> = (0..len)
                .map(|i| (((i as u32).wrapping_mul(40503).wrapping_add(7) % 255) as i32 - 127) as i8)
                .collect();
            assert_eq!(
                sse2::try_dot_i8(&a, &b),
                Some(dot_i8_scalar(&a, &b)),
                "len {len}"
            );
        }
        // Saturation-adjacent extremes.
        assert_eq!(
            sse2::try_dot_i8(&[-127i8; 33], &[127i8; 33]),
            Some(-127 * 127 * 33)
        );
    }

    #[test]
    fn quantized_probs_track_f32_reference() {
        for (sizes, seed) in [
            (vec![10usize, 8, 2], 7u64),
            (vec![45, 128, 64, 2], 42),
            (vec![3, 4, 2], 1),
        ] {
            let net = Mlp::new(&sizes, seed);
            let q = QuantizedMlp::from_mlp(&net);
            let x = toy_inputs(64, sizes[0], seed as u32);
            let err = q.max_abs_error(&net, &x);
            assert!(
                err <= DEFAULT_TOLERANCE,
                "sizes {sizes:?}: max abs error {err} above tolerance"
            );
            // Probabilities stay valid probabilities.
            for p in q.predict_proba(&x) {
                assert!((0.0..=1.0).contains(&p), "prob {p} out of range");
            }
        }
    }

    #[test]
    fn quantized_scores_are_deterministic() {
        let net = Mlp::new(&[12, 16, 2], 3);
        let q = QuantizedMlp::from_mlp(&net);
        let x = toy_inputs(32, 12, 9);
        let a = q.predict_proba(&x);
        let b = q.predict_proba(&x);
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn zero_input_rows_score_from_bias() {
        let net = Mlp::new(&[6, 4, 2], 11);
        let q = QuantizedMlp::from_mlp(&net);
        let x = Matrix::zeros(2, 6);
        let probs = q.predict_proba(&x);
        let reference = net.predict_proba(&x);
        for (p, r) in probs.iter().zip(&reference) {
            assert!((p - r).abs() <= DEFAULT_TOLERANCE);
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh() {
        let net = Mlp::new(&[9, 7, 2], 5);
        let q = QuantizedMlp::from_mlp(&net);
        let mut ws = QuantWorkspace::new();
        let mut out = Vec::new();
        let x1 = toy_inputs(8, 9, 21);
        let x2 = toy_inputs(8, 9, 22);
        q.predict_proba_into(&x1, &mut ws, &mut out);
        q.predict_proba_into(&x2, &mut ws, &mut out);
        assert_eq!(out.len(), 16);
        let fresh = q.predict_proba(&x2);
        assert_eq!(
            out[8..].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            fresh.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }
}
