//! Staged learning-rate schedules.
//!
//! LEAPME (paper §IV-D) trains for 10 epochs at learning rate 1e-3, then
//! 5 at 1e-4, then 5 at 1e-5. [`LrSchedule`] generalizes this to any
//! sequence of `(epochs, lr)` stages.

use serde::{Deserialize, Serialize};

/// A piecewise-constant learning-rate schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LrSchedule {
    stages: Vec<(usize, f32)>,
}

impl LrSchedule {
    /// Build from `(epochs, learning_rate)` stages.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty, any stage has zero epochs, or any
    /// learning rate is non-positive or non-finite.
    pub fn new(stages: Vec<(usize, f32)>) -> Self {
        assert!(!stages.is_empty(), "schedule needs at least one stage");
        for &(epochs, lr) in &stages {
            assert!(epochs > 0, "stage with zero epochs");
            assert!(lr > 0.0 && lr.is_finite(), "invalid learning rate {lr}");
        }
        LrSchedule { stages }
    }

    /// The paper's exact schedule: 10 epochs @ 1e-3, 5 @ 1e-4, 5 @ 1e-5.
    pub fn leapme() -> Self {
        LrSchedule::new(vec![(10, 1e-3), (5, 1e-4), (5, 1e-5)])
    }

    /// A constant learning rate for `epochs` epochs.
    pub fn constant(epochs: usize, lr: f32) -> Self {
        LrSchedule::new(vec![(epochs, lr)])
    }

    /// Total number of epochs across all stages.
    pub fn total_epochs(&self) -> usize {
        self.stages.iter().map(|&(e, _)| e).sum()
    }

    /// Learning rate for a zero-based epoch index.
    ///
    /// Epochs past the end of the schedule keep the final stage's rate.
    pub fn lr_for_epoch(&self, epoch: usize) -> f32 {
        let mut remaining = epoch;
        for &(epochs, lr) in &self.stages {
            if remaining < epochs {
                return lr;
            }
            remaining -= epochs;
        }
        self.stages.last().expect("non-empty").1
    }

    /// Iterate `(epoch_index, lr)` over the whole schedule.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f32)> + '_ {
        (0..self.total_epochs()).map(move |e| (e, self.lr_for_epoch(e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leapme_schedule_matches_paper() {
        let s = LrSchedule::leapme();
        assert_eq!(s.total_epochs(), 20);
        assert_eq!(s.lr_for_epoch(0), 1e-3);
        assert_eq!(s.lr_for_epoch(9), 1e-3);
        assert_eq!(s.lr_for_epoch(10), 1e-4);
        assert_eq!(s.lr_for_epoch(14), 1e-4);
        assert_eq!(s.lr_for_epoch(15), 1e-5);
        assert_eq!(s.lr_for_epoch(19), 1e-5);
    }

    #[test]
    fn epochs_past_end_keep_final_rate() {
        let s = LrSchedule::leapme();
        assert_eq!(s.lr_for_epoch(100), 1e-5);
    }

    #[test]
    fn iter_covers_all_epochs_in_order() {
        let s = LrSchedule::new(vec![(2, 0.1), (1, 0.01)]);
        let v: Vec<(usize, f32)> = s.iter().collect();
        assert_eq!(v, vec![(0, 0.1), (1, 0.1), (2, 0.01)]);
    }

    #[test]
    fn constant_schedule() {
        let s = LrSchedule::constant(3, 0.5);
        assert_eq!(s.total_epochs(), 3);
        assert!(s.iter().all(|(_, lr)| lr == 0.5));
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn rejects_empty() {
        LrSchedule::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "zero epochs")]
    fn rejects_zero_epochs() {
        LrSchedule::new(vec![(0, 0.1)]);
    }

    #[test]
    #[should_panic(expected = "invalid learning rate")]
    fn rejects_negative_lr() {
        LrSchedule::new(vec![(1, -0.1)]);
    }
}
