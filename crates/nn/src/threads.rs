//! Thread-count policy for the parallel math kernels.
//!
//! The effective worker count comes from `std::thread::available_parallelism`
//! and can be overridden with the `LEAPME_THREADS` environment variable
//! (values < 1 are ignored). The variable is re-read on every call so a
//! process can switch between serial and parallel execution at runtime —
//! the benchmark harness relies on this to measure both modes in one run.

/// Environment variable overriding the worker thread count.
pub const THREADS_ENV: &str = "LEAPME_THREADS";

/// Serializes tests that mutate [`THREADS_ENV`] — the environment is
/// process-global, so concurrent test threads would otherwise race.
#[cfg(test)]
pub(crate) static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Number of worker threads to use for parallel kernels.
///
/// Reads [`THREADS_ENV`] on every call (no caching); falls back to
/// `available_parallelism`, and to 1 if that is unavailable.
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Split `items` into at most `threads` contiguous chunks of near-equal
/// size, returned as `(start, end)` index pairs. Never returns empty
/// chunks; returns a single chunk when `items` or `threads` is small.
pub fn partition(items: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.max(1).min(items.max(1));
    let base = items / threads;
    let extra = items % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < extra);
        if len == 0 {
            break;
        }
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_range_without_gaps() {
        for items in [0usize, 1, 2, 7, 64, 1000] {
            for threads in [1usize, 2, 3, 8, 64] {
                let chunks = partition(items, threads);
                let mut expected_start = 0;
                for &(s, e) in &chunks {
                    assert_eq!(s, expected_start);
                    assert!(e > s, "empty chunk for {items} items / {threads} threads");
                    expected_start = e;
                }
                assert_eq!(expected_start, items);
                assert!(chunks.len() <= threads.max(1));
            }
        }
    }

    #[test]
    fn env_override_wins() {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::env::var(THREADS_ENV).ok();
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(thread_count(), 3);
        std::env::set_var(THREADS_ENV, "0"); // invalid → fallback
        assert!(thread_count() >= 1);
        std::env::set_var(THREADS_ENV, "junk"); // invalid → fallback
        assert!(thread_count() >= 1);
        match prev {
            Some(v) => std::env::set_var(THREADS_ENV, v),
            None => std::env::remove_var(THREADS_ENV),
        }
    }
}
