//! Reusable buffer workspaces for allocation-free training and scoring.
//!
//! The LEAPME hot loop runs the same small network over millions of
//! minibatches and pair blocks; re-allocating every activation, cache,
//! gradient, and dropout-mask matrix per step dominated the allocator
//! profile. A [`TrainWorkspace`] (for `Mlp::fit`) or [`ScoreWorkspace`]
//! (for inference) owns every buffer the step needs; buffers are sized
//! lazily on first use and reused afterwards, so a steady-state
//! `train_step` / `predict_proba_into` performs **zero heap
//! allocations** (see the `alloc-count`-gated regression test).
//!
//! # Buffer lifetimes and aliasing
//!
//! All `_into` methods (`Matrix::matmul_into`, `Dense::forward_into`,
//! `Dense::backward_into`, `softmax_cross_entropy_into`) require that
//! the output buffer does not alias any input operand. The workspaces
//! guarantee this structurally: each layer index owns disjoint
//! activation (`act`), post-dropout (`dropped`), gradient (`d_act`),
//! mask, and parameter-gradient buffers, and the layer-`idx` step only
//! ever writes buffer `idx` while reading buffer `idx − 1` (forward) or
//! `idx − 1`/`idx` (backward).

use crate::layers::{Dense, DenseGrads};
use crate::matrix::Matrix;

/// Preallocated buffers for one training loop (`Mlp::fit`).
///
/// Create once and pass to `Mlp::fit_with_workspace` — or let `Mlp::fit`
/// create one internally — and reuse across calls to amortize the very
/// first allocation too. The workspace holds, per layer: the
/// post-activation output, the post-dropout output, the output gradient,
/// the inverted-dropout mask, and the parameter gradients; plus the
/// gathered minibatch (`batch_x`/`batch_y`), the validation split, the
/// fused-loss gradient buffer, and the persistent early-stopping
/// checkpoint.
#[derive(Debug, Default)]
pub struct TrainWorkspace {
    /// Gathered minibatch rows (`Matrix::select_rows_into` target).
    pub(crate) batch_x: Matrix,
    /// Gathered minibatch labels.
    pub(crate) batch_y: Vec<usize>,
    /// Per-layer post-activation outputs (pre-dropout).
    pub(crate) act: Vec<Matrix>,
    /// Per-layer post-dropout outputs (used only when dropout is on).
    pub(crate) dropped: Vec<Matrix>,
    /// Per-layer output gradients (∂L/∂ layer output).
    pub(crate) d_act: Vec<Matrix>,
    /// Per-layer inverted-dropout masks.
    pub(crate) masks: Vec<Matrix>,
    /// Per-layer parameter gradients.
    pub(crate) grads: Vec<DenseGrads>,
    /// Persistent early-stopping checkpoint of the best layers.
    pub(crate) checkpoint: Vec<Dense>,
    /// Whether `checkpoint` holds a valid snapshot for the current fit.
    pub(crate) checkpoint_valid: bool,
    /// Gathered validation rows (early stopping only).
    pub(crate) val_x: Matrix,
    /// Fused-loss gradient buffer for the validation loss.
    pub(crate) val_grad: Matrix,
    /// Inference buffers for the validation forward pass.
    pub(crate) score: ScoreWorkspace,
}

impl TrainWorkspace {
    /// An empty workspace; every buffer is sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resize the per-layer buffer vectors to `n` layers. The matrices
    /// themselves stay empty until the first step sizes them.
    pub(crate) fn ensure_layers(&mut self, n: usize) {
        self.act.resize_with(n, || Matrix::zeros(0, 0));
        self.dropped.resize_with(n, || Matrix::zeros(0, 0));
        self.d_act.resize_with(n, || Matrix::zeros(0, 0));
        self.masks.resize_with(n, || Matrix::zeros(0, 0));
        self.grads.resize_with(n, DenseGrads::empty);
        self.score.ensure_layers(n);
    }
}

/// Preallocated per-layer activation buffers for inference
/// (`Mlp::logits_into` / `Mlp::predict_proba_into`).
///
/// Create once per scoring loop (or thread) and reuse across blocks;
/// after the first block no call allocates.
#[derive(Debug, Default)]
pub struct ScoreWorkspace {
    /// Per-layer post-activation outputs.
    pub(crate) act: Vec<Matrix>,
}

impl ScoreWorkspace {
    /// An empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resize the per-layer buffer vector to `n` layers.
    pub(crate) fn ensure_layers(&mut self, n: usize) {
        self.act.resize_with(n, || Matrix::zeros(0, 0));
    }
}

/// Copy `src` layers into `dst`, reusing `dst`'s buffers when the layer
/// count matches (the steady-state case for early-stopping checkpoints:
/// only the first snapshot allocates, later improvements just copy).
pub(crate) fn copy_layers_into(dst: &mut Vec<Dense>, src: &[Dense]) {
    if dst.len() != src.len() {
        dst.clear();
        dst.extend(src.iter().cloned());
        return;
    }
    for (d, s) in dst.iter_mut().zip(src) {
        d.weights.copy_from(&s.weights);
        d.bias.clear();
        d.bias.extend_from_slice(&s.bias);
        d.activation = s.activation;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::layers::Activation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn copy_layers_reuses_buffers_when_shapes_match() {
        let mut rng = StdRng::seed_from_u64(1);
        let src = vec![
            Dense::new(3, 4, Activation::Relu, Init::HeUniform, &mut rng),
            Dense::new(4, 2, Activation::Identity, Init::XavierUniform, &mut rng),
        ];
        let mut dst = Vec::new();
        copy_layers_into(&mut dst, &src);
        assert_eq!(dst.len(), 2);
        assert_eq!(dst[0].weights, src[0].weights);
        // Mutate source, copy again into the existing buffers.
        let src2 = vec![
            Dense::new(3, 4, Activation::Relu, Init::HeUniform, &mut rng),
            Dense::new(4, 2, Activation::Identity, Init::XavierUniform, &mut rng),
        ];
        copy_layers_into(&mut dst, &src2);
        assert_eq!(dst[1].weights, src2[1].weights);
        assert_eq!(dst[1].bias, src2[1].bias);
    }

    #[test]
    fn ensure_layers_is_idempotent_and_shrinks() {
        let mut ws = TrainWorkspace::new();
        ws.ensure_layers(3);
        assert_eq!(ws.act.len(), 3);
        assert_eq!(ws.grads.len(), 3);
        ws.ensure_layers(2);
        assert_eq!(ws.act.len(), 2);
        ws.ensure_layers(2);
        assert_eq!(ws.d_act.len(), 2);
    }
}
