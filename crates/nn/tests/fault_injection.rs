//! Fault-injection tests for the NN trainer.
//!
//! These live in their own integration-test binary (not in the lib's
//! unit tests) because `leapme_faults::with_plan` installs a
//! process-wide plan: in the unit-test process it could fire inside a
//! concurrently-running bitwise-equivalence proptest and poison its
//! `fit` while leaving `fit_reference` clean.
#![cfg(feature = "faults")]

use leapme_nn::matrix::Matrix;
use leapme_nn::network::{Mlp, TrainConfig};
use leapme_nn::schedule::LrSchedule;
use leapme_nn::NnError;

fn xor_data() -> (Matrix, Vec<usize>) {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
        for _ in 0..8 {
            rows.push(vec![a, b]);
            labels.push(((a as i32) ^ (b as i32)) as usize);
        }
    }
    (Matrix::from_rows(&rows), labels)
}

#[test]
fn injected_nan_loss_rolls_back_and_training_converges() {
    let (x, y) = xor_data();
    // Exactly one batch loss is poisoned (prob 1, capped at #1): the
    // epoch rolls back to its checkpoint and replays at lr × 0.1.
    let report = leapme_faults::with_plan("seed=7;nn.loss:nan@1.0#1", || {
        let mut net = Mlp::new(&[2, 16, 8, 2], 3);
        let cfg = TrainConfig {
            batch_size: 8,
            schedule: LrSchedule::new(vec![(300, 0.05)]),
            ..TrainConfig::default()
        };
        net.fit(&x, &y, &cfg).unwrap()
    });
    assert_eq!(report.recoveries, 1);
    assert_eq!(report.epoch_losses.len(), 300);
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    assert!(
        report.final_accuracy > 0.9,
        "post-recovery accuracy {}",
        report.final_accuracy
    );
}

#[test]
fn persistent_nan_loss_surfaces_structured_error() {
    let (x, y) = xor_data();
    // Every batch loss is poisoned: rollbacks cannot help, and the
    // retry budget must convert the fault into a structured error
    // rather than NaN weights or a panic.
    let err = leapme_faults::with_plan("seed=7;nn.loss:nan@1.0", || {
        let mut net = Mlp::new(&[2, 16, 8, 2], 3);
        let cfg = TrainConfig {
            batch_size: 8,
            schedule: LrSchedule::new(vec![(5, 0.01)]),
            max_loss_retries: 2,
            ..TrainConfig::default()
        };
        net.fit(&x, &y, &cfg).unwrap_err()
    });
    assert_eq!(
        err,
        NnError::NonFiniteLoss {
            epoch: 0,
            retries: 2
        }
    );
}
