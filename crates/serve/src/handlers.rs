//! Request handlers: routing, strict JSON/CSV parsing with typed 400s,
//! deadline-aware scoring with partial results, and the
//! `integrate-source` mutation.
//!
//! Every scoring endpoint goes through the same streaming score path as
//! the batch CLI ([`LeapmeModel::score_pairs_cancellable`]), chunked so
//! a deadline expiry mid-score keeps the chunks already finished: the
//! PR3 fail-soft contract — serve what you have, say it's degraded.

use crate::http::{Request, Response};
use crate::state::{Engine, FlightRole, ServeState, SingleEngine};
use leapme_core::cancel::CancelToken;
use leapme_core::incremental::integrate_source;
use leapme_core::pipeline::LeapmeModel;
use leapme_core::registry::{Domain, ModelRegistry, RegistryError};
use leapme_core::sampling;
use leapme_core::simgraph::SimilarityGraph;
use leapme_core::CoreError;
use leapme_data::io::read_instances_lenient;
use leapme_data::model::{Dataset, PropertyKey, PropertyPair, SourceId};
use leapme_features::vectorizer::PropertyFeatureStore;
use leapme_nn::checkpoint::crc64;
use serde::{Deserialize, Serialize};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Pairs per scoring chunk. Small enough that a deadline is honored
/// promptly, large enough to amortize the streaming-score setup.
const SCORE_CHUNK: usize = 2048;

/// Fault hook for `serve.handler` (`kind: panic`): proves the worker
/// pool's panic isolation under the chaos suite.
#[cfg(feature = "faults")]
fn injected_handler_panic() {
    leapme_faults::maybe_panic(leapme_faults::sites::SERVE_HANDLER);
}

#[cfg(not(feature = "faults"))]
fn injected_handler_panic() {}

/// Parse the per-request deadline: the `x-leapme-deadline-ms` header
/// overrides the configured default, clamped to the configured maximum.
pub fn request_deadline(state: &ServeState, req: &Request) -> Result<Duration, Response> {
    match req.header("x-leapme-deadline-ms") {
        None => Ok(state.config.request_timeout),
        Some(v) => {
            let ms: u64 = v.parse().map_err(|_| {
                Response::error(
                    400,
                    "bad-deadline",
                    &format!("x-leapme-deadline-ms must be a non-negative integer, got {v:?}"),
                )
            })?;
            Ok(Duration::from_millis(ms).min(state.config.max_deadline))
        }
    }
}

/// Route one parsed request. Called inside the worker's
/// `catch_unwind`, so a panic here (injected or real) is isolated.
pub fn handle(state: &ServeState, req: &Request, token: &CancelToken) -> Response {
    injected_handler_panic();
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, "{\"status\":\"ok\"}".to_string()),
        ("GET", "/readyz") => readyz(state),
        ("GET", "/metrics") => metrics(state),
        ("POST", "/score") => score(state, req, token),
        ("POST", "/match") => match_all(state, req, token),
        ("POST", "/integrate-source") => integrate(state, req, token),
        ("POST", "/reload") => reload(state, req),
        (_, "/healthz" | "/readyz" | "/metrics") => {
            Response::error(405, "method-not-allowed", "use GET")
        }
        (_, "/score" | "/match" | "/integrate-source" | "/reload") => {
            Response::error(405, "method-not-allowed", "use POST")
        }
        (_, path) => Response::error(404, "not-found", &format!("no route for {path}")),
    }
}

/// `GET /metrics`: the server counters, plus a `registry` object with
/// per-domain stats (resident flag, generation, bytes mapped, open_ms,
/// hit/miss counts, evictions) when running in registry mode.
fn metrics(state: &ServeState) -> Response {
    let mut body = state
        .metrics
        .to_json(0, state.draining.load(Ordering::SeqCst));
    if let Some(registry) = state.registry() {
        let stats =
            serde_json::to_string(&registry.stats()).expect("registry stats serialize");
        // Splice the registry object into the flat counter body.
        body.pop();
        body.push_str(",\"registry\":");
        body.push_str(&stats);
        body.push('}');
    }
    Response::json(200, body)
}

/// Validate a model selector's shape: 1–64 chars of `[A-Za-z0-9._-]`.
/// Anything else is a typed 400 `bad-model` — distinct from the 404
/// `unknown-model` a well-formed but absent name earns.
fn validate_selector(name: &str) -> Result<(), Response> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-');
    if !ok {
        return Err(Response::error(
            400,
            "bad-model",
            &format!("model selector {name:?} must be 1-64 characters of [A-Za-z0-9._-]"),
        ));
    }
    Ok(())
}

/// Resolve the request's domain in registry mode. The selector comes
/// from the JSON `model` body field or the `x-leapme-model` header
/// (the body field wins); a missing selector is a 400 `bad-model`, an
/// unknown one a 404 `unknown-model`.
fn resolve_domain(
    registry: &Arc<ModelRegistry>,
    body_model: Option<&str>,
    req: &Request,
) -> Result<Arc<Domain>, Response> {
    let Some(name) = body_model.or_else(|| req.header("x-leapme-model")) else {
        return Err(Response::error(
            400,
            "bad-model",
            "registry mode requires a model selector: body field \"model\" or x-leapme-model header",
        ));
    };
    validate_selector(name)?;
    match registry.get(name) {
        Ok(domain) => Ok(domain),
        Err(RegistryError::UnknownModel(n)) => Err(Response::error(
            404,
            "unknown-model",
            &format!("no domain {n:?} in the registry"),
        )),
        Err(e) => Err(Response::error(500, "model-load-failed", &e.to_string())),
    }
}

/// In single-model mode a model selector is a contract violation, not
/// something to silently ignore — typed 400 `bad-model`.
fn reject_selector_in_single_mode(
    body_model: Option<&str>,
    req: &Request,
) -> Result<(), Response> {
    if body_model.is_some() || req.header("x-leapme-model").is_some() {
        return Err(Response::error(
            400,
            "bad-model",
            "this server runs a single model; remove the model selector",
        ));
    }
    Ok(())
}

/// `GET /readyz`: 200 while serving, 503 once drain has begun — the
/// signal a load balancer needs to stop routing here before shutdown.
fn readyz(state: &ServeState) -> Response {
    if state.draining.load(Ordering::SeqCst) {
        return Response::error(503, "draining", "server is draining; not accepting new work");
    }
    match &state.engine {
        Engine::Single(engine) => {
            let resident = engine.resident.read().unwrap_or_else(|e| e.into_inner());
            let body = serde_json::to_string(&ReadyBody {
                status: "ready".to_string(),
                properties: resident.store.len(),
                sources: resident.dataset.sources().len(),
                graph_edges: resident.graph.len(),
                generation: resident.generation,
                input_dim: engine.model.input_dim(),
                threshold: engine.model.threshold(),
            })
            .expect("ready body serializes");
            Response::json(200, body)
        }
        Engine::Registry(registry) => {
            let stats = registry.stats();
            let body = serde_json::to_string(&RegistryReadyBody {
                status: "ready".to_string(),
                domains: registry.domains(),
                resident: stats.domains.iter().filter(|d| d.resident).count(),
                resident_bytes: stats.resident_bytes,
                budget_bytes: stats.budget_bytes,
                evictions: stats.evictions,
            })
            .expect("ready body serializes");
            Response::json(200, body)
        }
    }
}

/// `GET /readyz` body.
#[derive(Serialize)]
struct ReadyBody {
    status: String,
    properties: usize,
    sources: usize,
    graph_edges: usize,
    generation: u64,
    input_dim: usize,
    threshold: f32,
}

/// `GET /readyz` body in registry mode.
#[derive(Serialize)]
struct RegistryReadyBody {
    status: String,
    domains: Vec<String>,
    resident: usize,
    resident_bytes: u64,
    budget_bytes: Option<u64>,
    evictions: u64,
}

/// `POST /score` body.
#[derive(Deserialize)]
struct ScoreRequest {
    /// `[source_id, property, source_id, property]` quadruples.
    pairs: Vec<(u16, String, u16, String)>,
    /// Registry-mode domain selector (alternative to the
    /// `x-leapme-model` header).
    #[serde(default)]
    model: Option<String>,
}

/// `POST /score` response.
#[derive(Serialize)]
struct ScoreResponse {
    scores: Vec<f32>,
    requested: usize,
    scored: usize,
    degraded: bool,
    threshold: f32,
}

/// Score an explicit pair list through the streaming score path,
/// honoring the deadline between chunks: expiry returns the chunks
/// already scored with `degraded: true` instead of discarding them.
fn score(state: &ServeState, req: &Request, token: &CancelToken) -> Response {
    let parsed: ScoreRequest = match parse_json_body(&req.body) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    match &state.engine {
        Engine::Single(engine) => {
            if let Err(resp) = reject_selector_in_single_mode(parsed.model.as_deref(), req) {
                return resp;
            }
            let resident = engine.resident.read().unwrap_or_else(|e| e.into_inner());
            score_against(
                &engine.model,
                &resident.dataset,
                &resident.store,
                &parsed.pairs,
                token,
            )
        }
        Engine::Registry(registry) => {
            let domain = match resolve_domain(registry, parsed.model.as_deref(), req) {
                Ok(d) => d,
                Err(resp) => return resp,
            };
            score_against(
                &domain.model,
                &domain.dataset,
                &domain.store,
                &parsed.pairs,
                token,
            )
        }
    }
}

/// The engine-independent half of `POST /score`: validate the pair
/// list against one dataset + store, score it chunked, and render the
/// response.
fn score_against(
    model: &LeapmeModel,
    dataset: &Dataset,
    store: &PropertyFeatureStore,
    raw_pairs: &[(u16, String, u16, String)],
    token: &CancelToken,
) -> Response {
    let mut pairs = Vec::with_capacity(raw_pairs.len());
    for (i, (sa, pa, sb, pb)) in raw_pairs.iter().enumerate() {
        let n_sources = dataset.sources().len();
        for sid in [*sa, *sb] {
            if usize::from(sid) >= n_sources {
                return Response::error(
                    400,
                    "unknown-source",
                    &format!("pair {i}: source id {sid} out of range ({n_sources} sources)"),
                );
            }
        }
        let a = PropertyKey::new(SourceId(*sa), pa.clone());
        let b = PropertyKey::new(SourceId(*sb), pb.clone());
        for key in [&a, &b] {
            if store.property_vector(key).is_none() {
                return Response::error(
                    400,
                    "unknown-property",
                    &format!("pair {i}: property {:?} of source {} is not resident", key.name, key.source.0),
                );
            }
        }
        pairs.push(PropertyPair::new(a, b));
    }

    let check = token.checker();
    let (scores, degraded) = match score_chunked(model, store, &pairs, &check) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let scored = scores.len();
    let body = serde_json::to_string(&ScoreResponse {
        scores,
        requested: pairs.len(),
        scored,
        degraded,
        threshold: model.threshold(),
    })
    .expect("score response serializes");
    let mut resp = Response::json(200, body);
    resp.degraded = degraded;
    resp
}

/// Chunked scoring shared by `score` and `match`: returns the scores
/// accumulated so far plus whether the deadline cut the run short.
fn score_chunked(
    model: &LeapmeModel,
    store: &PropertyFeatureStore,
    pairs: &[PropertyPair],
    check: &(impl Fn() -> bool + Sync),
) -> Result<(Vec<f32>, bool), Response> {
    let mut scores = Vec::with_capacity(pairs.len());
    let mut degraded = false;
    for chunk in pairs.chunks(SCORE_CHUNK) {
        if check() {
            degraded = true;
            break;
        }
        match model.score_pairs_cancellable(store, chunk, SCORE_CHUNK, Some(check)) {
            Ok(s) => scores.extend(s),
            Err(CoreError::Cancelled) => {
                degraded = true;
                break;
            }
            Err(e) => {
                return Err(Response::error(500, "score-failed", &e.to_string()));
            }
        }
    }
    Ok((scores, degraded))
}

/// `POST /match`: score every cross-source pair of the resident dataset
/// into a similarity graph — the warm equivalent of the batch
/// `match --model` path, byte-identical on an undegraded run because it
/// streams the same pairs through the same scorer and serializes with
/// the same pretty printer.
///
/// Identical concurrent requests coalesce: one leader computes per
/// resident generation, followers share its response body.
fn match_all(state: &ServeState, req: &Request, token: &CancelToken) -> Response {
    match &state.engine {
        Engine::Single(engine) => {
            if let Err(resp) = reject_selector_in_single_mode(None, req) {
                return resp;
            }
            match_single(state, engine, token)
        }
        Engine::Registry(registry) => {
            // Resolve (and fault in) the domain before joining the
            // flight: the flight key pins the domain *and* generation,
            // so a `/reload` hot-swap mid-computation never shares a
            // stale graph with post-swap requests.
            let domain = match resolve_domain(registry, None, req) {
                Ok(d) => d,
                Err(resp) => return resp,
            };
            let key =
                crc64(format!("{}@{}", domain.name, domain.generation).as_bytes());
            match_domain(state, &domain, key, token)
        }
    }
}

/// Single-model `POST /match`: keyed by the resident generation, which
/// `integrate-source` bumps on every swap.
fn match_single(state: &ServeState, engine: &SingleEngine, token: &CancelToken) -> Response {
    loop {
        let generation = {
            let resident = engine.resident.read().unwrap_or_else(|e| e.into_inner());
            resident.generation
        };
        let wait = token.remaining().unwrap_or(state.config.request_timeout);
        match state.singleflight.join_or_lead(generation, wait) {
            FlightRole::Follower(body) => {
                state.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
                return Response::json(200, (*body).clone());
            }
            FlightRole::TimedOut => {
                state.metrics.deadline_rejects.fetch_add(1, Ordering::Relaxed);
                return Response::error(
                    503,
                    "deadline-expired",
                    "deadline expired while waiting for the in-flight match computation",
                );
            }
            FlightRole::Retry => continue,
            FlightRole::Leader => {
                let resident = engine.resident.read().unwrap_or_else(|e| e.into_inner());
                return match_lead(
                    state,
                    generation,
                    &engine.model,
                    &resident.dataset,
                    &resident.store,
                    token,
                );
            }
        }
    }
}

/// Registry-mode `POST /match` against one pinned domain.
fn match_domain(
    state: &ServeState,
    domain: &Domain,
    key: u64,
    token: &CancelToken,
) -> Response {
    loop {
        let wait = token.remaining().unwrap_or(state.config.request_timeout);
        match state.singleflight.join_or_lead(key, wait) {
            FlightRole::Follower(body) => {
                state.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
                return Response::json(200, (*body).clone());
            }
            FlightRole::TimedOut => {
                state.metrics.deadline_rejects.fetch_add(1, Ordering::Relaxed);
                return Response::error(
                    503,
                    "deadline-expired",
                    "deadline expired while waiting for the in-flight match computation",
                );
            }
            FlightRole::Retry => continue,
            FlightRole::Leader => {
                return match_lead(
                    state,
                    key,
                    &domain.model,
                    &domain.dataset,
                    &domain.store,
                    token,
                );
            }
        }
    }
}

/// The leader's half of a coalesced match: score every cross-source
/// pair into a graph and publish (or, degraded, keep) the body.
fn match_lead(
    state: &ServeState,
    flight_key: u64,
    model: &LeapmeModel,
    dataset: &Dataset,
    store: &PropertyFeatureStore,
    token: &CancelToken,
) -> Response {
    let candidates = sampling::test_pairs(dataset, &[]);
    let check = token.checker();
    let (scores, degraded) = match score_chunked(model, store, &candidates, &check) {
        Ok(v) => v,
        Err(resp) => {
            state.singleflight.abandon(flight_key);
            return resp;
        }
    };
    let mut graph = SimilarityGraph::new();
    for (pair, score) in candidates.iter().zip(scores.iter()) {
        graph.add(pair.clone(), *score);
    }
    let body = serde_json::to_string_pretty(&graph).expect("similarity graph serializes");
    if degraded {
        // A partial graph is this request's to keep — never shared
        // through the single-flight table.
        state.singleflight.abandon(flight_key);
        let mut resp = Response::json(200, body);
        resp.degraded = true;
        return resp;
    }
    let shared = Arc::new(body);
    state.singleflight.complete(flight_key, Arc::clone(&shared));
    Response::json(200, (*shared).clone())
}

/// `POST /reload` body.
#[derive(Deserialize)]
struct ReloadRequest {
    /// Domain to hot-swap (alternative to the `x-leapme-model` header).
    #[serde(default)]
    model: Option<String>,
}

/// `POST /reload` response.
#[derive(Serialize)]
struct ReloadResponse {
    model: String,
    generation: u64,
    open_path: String,
    open_ms: u64,
    bytes: u64,
}

/// `POST /reload`: re-open one domain's artifacts from disk and swap
/// them in atomically with a bumped generation — the registry-mode
/// hot-swap. In-flight requests finish against the old mapping.
fn reload(state: &ServeState, req: &Request) -> Response {
    let Some(registry) = state.registry() else {
        return Response::error(
            400,
            "registry-mode",
            "POST /reload requires registry mode (serve --models)",
        );
    };
    let parsed: ReloadRequest = if req.body.is_empty() {
        ReloadRequest { model: None }
    } else {
        match parse_json_body(&req.body) {
            Ok(p) => p,
            Err(resp) => return resp,
        }
    };
    let Some(name) = parsed
        .model
        .as_deref()
        .or_else(|| req.header("x-leapme-model"))
    else {
        return Response::error(
            400,
            "bad-model",
            "reload requires a model selector: body field \"model\" or x-leapme-model header",
        );
    };
    if let Err(resp) = validate_selector(name) {
        return resp;
    }
    match registry.reload(name) {
        Ok(domain) => {
            state.metrics.reloads.fetch_add(1, Ordering::Relaxed);
            state.journal_event(&ReloadEvent {
                event: "reload",
                model: domain.name.clone(),
                generation: domain.generation,
            });
            let body = serde_json::to_string(&ReloadResponse {
                model: domain.name.clone(),
                generation: domain.generation,
                open_path: domain.model_open_path.label().to_string(),
                open_ms: domain.open_ms,
                bytes: domain.bytes,
            })
            .expect("reload response serializes");
            Response::json(200, body)
        }
        Err(RegistryError::UnknownModel(n)) => Response::error(
            404,
            "unknown-model",
            &format!("no domain {n:?} in the registry"),
        ),
        Err(e) => Response::error(500, "reload-failed", &e.to_string()),
    }
}

/// Journal record for a completed reload.
#[derive(Serialize)]
struct ReloadEvent {
    event: &'static str,
    model: String,
    generation: u64,
}

/// `POST /integrate-source` response.
#[derive(Serialize)]
struct IntegrateResponse {
    sources: Vec<String>,
    scored_pairs: usize,
    attached: usize,
    novel: usize,
    imported_rows: usize,
    skipped_rows: usize,
    generation: u64,
}

/// Journal record for a completed integration.
#[derive(Serialize)]
struct IntegrateEvent {
    event: &'static str,
    sources: Vec<String>,
    scored_pairs: usize,
    attached: usize,
    novel: usize,
    generation: u64,
}

/// `POST /integrate-source`: body is `source,property,entity,value` CSV
/// (with header) for one or more *new* sources. All-or-nothing: the
/// merged dataset, rebuilt feature store, and updated graph are
/// prepared off to the side and swapped in atomically; a deadline
/// expiry mid-way changes nothing.
fn integrate(state: &ServeState, req: &Request, token: &CancelToken) -> Response {
    let Engine::Single(engine) = &state.engine else {
        return Response::error(
            400,
            "registry-mode",
            "integrate-source mutates the single-model resident state; not available with --models",
        );
    };
    let csv = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return Response::error(400, "bad-encoding", "body must be UTF-8 CSV"),
    };

    // Snapshot the resident state under the read lock; the expensive
    // rebuild below runs without holding any lock.
    let (name, mut sources, old_instances, alignment, mut graph, old_generation) = {
        let resident = engine.resident.read().unwrap_or_else(|e| e.into_inner());
        (
            resident.dataset.name().to_string(),
            resident.dataset.sources().to_vec(),
            resident.dataset.instances().to_vec(),
            resident.dataset.alignment().clone(),
            resident.graph.clone(),
            resident.generation,
        )
    };
    let n_old = sources.len();

    let (new_instances, report) =
        match read_instances_lenient(std::io::Cursor::new(csv.as_bytes()), &mut sources) {
            Ok(v) => v,
            Err(e) => return Response::error(400, "malformed-csv", &e.to_string()),
        };
    if new_instances.is_empty() {
        return Response::error(
            400,
            "empty-upload",
            &format!("no importable rows ({})", report.summary()),
        );
    }
    if new_instances.iter().any(|i| usize::from(i.source.0) < n_old) {
        return Response::error(
            400,
            "existing-source",
            "uploaded rows reference already-resident sources; only new sources can be integrated",
        );
    }
    let new_ids: Vec<SourceId> = (n_old..sources.len()).map(|i| SourceId(i as u16)).collect();

    let mut instances = old_instances;
    instances.extend(new_instances);
    let merged = match Dataset::new(name, sources, instances, alignment) {
        Ok(d) => d,
        Err(e) => return Response::error(400, "inconsistent-dataset", &e.to_string()),
    };

    let check = token.checker();
    let store = match PropertyFeatureStore::try_build_cancellable(
        &merged,
        &engine.embeddings,
        leapme_features::worker_threads(),
        Some(&check),
    ) {
        Ok(s) => s,
        Err(leapme_features::vectorizer::FeatureError::Cancelled) => {
            state.metrics.deadline_rejects.fetch_add(1, Ordering::Relaxed);
            return Response::error(
                503,
                "deadline-expired",
                "deadline expired while featurizing the upload; no change was applied",
            );
        }
        Err(e) => return Response::error(500, "featurize-failed", &e.to_string()),
    };

    let mut total = (0usize, 0usize, 0usize); // scored, attached, novel
    for sid in &new_ids {
        match integrate_source(&engine.model, &store, &merged, &mut graph, *sid) {
            Ok(outcome) => {
                total.0 += outcome.scored_pairs;
                total.1 += outcome.attached.len();
                total.2 += outcome.novel.len();
            }
            Err(CoreError::Cancelled) => {
                state.metrics.deadline_rejects.fetch_add(1, Ordering::Relaxed);
                return Response::error(
                    503,
                    "deadline-expired",
                    "deadline expired while integrating; no change was applied",
                );
            }
            Err(CoreError::EmptySource(id)) => {
                // The caller's mistake, not a server fault: a source
                // that contributes zero properties after parsing.
                return Response::error(
                    400,
                    "empty-source",
                    &format!("uploaded source {id} contributes no properties"),
                );
            }
            Err(e) => return Response::error(500, "integrate-failed", &e.to_string()),
        }
    }

    let new_names: Vec<String> = {
        let s = merged.sources();
        new_ids.iter().map(|id| s[usize::from(id.0)].clone()).collect()
    };

    // Swap-in under the write lock. A concurrent integration that won
    // the race invalidates this one (same optimistic-concurrency rule a
    // compare-and-swap would give): retrying is the client's call.
    // While holding the lock, the new generation is persisted to the
    // snapshot file *before* the in-memory swap: the atomic container
    // write means a SIGKILL at any instant leaves either the old or the
    // new generation on disk — never a torn hybrid — and a snapshot
    // failure (injected via `continual.snapshot` or real) refuses the
    // swap so disk and memory never disagree.
    {
        let mut resident = engine.resident.write().unwrap_or_else(|e| e.into_inner());
        if resident.generation != old_generation {
            return Response::error(
                503,
                "conflict",
                "another integration landed first; re-read state and retry",
            );
        }
        if let Some(path) = &state.config.snapshot_path {
            let snap = crate::snapshot::ResidentSnapshot {
                dataset: merged.clone(),
                graph: graph.clone(),
                generation: old_generation + 1,
            };
            if let Err(e) = crate::snapshot::save(path, &snap) {
                state.metrics.write_failures.fetch_add(1, Ordering::Relaxed);
                return Response::error(
                    500,
                    "snapshot-failed",
                    &format!("could not persist the resident snapshot; no change was applied: {e}"),
                );
            }
        }
        resident.dataset = merged;
        resident.store = store;
        resident.graph = graph;
        resident.generation += 1;
    }
    state.metrics.integrations.fetch_add(1, Ordering::Relaxed);
    state.journal_event(&IntegrateEvent {
        event: "integrate",
        sources: new_names.clone(),
        scored_pairs: total.0,
        attached: total.1,
        novel: total.2,
        generation: old_generation + 1,
    });

    let body = serde_json::to_string(&IntegrateResponse {
        sources: new_names,
        scored_pairs: total.0,
        attached: total.1,
        novel: total.2,
        imported_rows: report.imported,
        skipped_rows: report.skipped,
        generation: old_generation + 1,
    })
    .expect("integrate response serializes");
    Response::json(200, body)
}

/// Strict JSON body parsing with a typed 400 on failure.
fn parse_json_body<T: Deserialize>(body: &[u8]) -> Result<T, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::error(400, "bad-encoding", "body must be UTF-8 JSON"))?;
    serde_json::from_str(text)
        .map_err(|e| Response::error(400, "malformed-json", &e.to_string()))
}
