//! Minimal HTTP/1.1 request/response codec over `std::net`, built for
//! hostile clients.
//!
//! Strictness is the point: every limit is enforced while *reading*, so
//! a slow-loris client runs into the socket read timeout, an oversized
//! body is rejected at the `Content-Length` header (before a single
//! body byte is buffered), and a header section that never terminates
//! stops at [`HttpLimits::max_head_bytes`]. Connections default to
//! `Connection: close`; clients that send an explicit
//! `Connection: keep-alive` get a bounded number of requests per
//! connection (the per-request socket timeouts and drain semantics
//! apply to every exchange on the connection, so a slow-loris second
//! request dies to the same read timeout as a first).

use std::io::{Read, Write};
use std::net::TcpStream;

/// Read-side limits enforced while parsing a request.
#[derive(Debug, Clone)]
pub struct HttpLimits {
    /// Cap on the request line + headers, in bytes.
    pub max_head_bytes: usize,
    /// Cap on the declared `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// Maximum number of request headers accepted.
const MAX_HEADERS: usize = 64;

/// How reading a request can fail. Each variant maps to a specific
/// response (or, for [`HttpError::Disconnected`], to none at all).
#[derive(Debug)]
pub enum HttpError {
    /// Structurally invalid request → `400` with a typed error body.
    BadRequest(String),
    /// Declared body exceeds the limit → `413`.
    PayloadTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The socket read timed out mid-request (slow-loris) → `408`.
    Timeout,
    /// The client vanished before completing the request; there is no
    /// one left to answer.
    Disconnected,
    /// A genuine transport failure.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::PayloadTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::Timeout => write!(f, "read timed out mid-request"),
            HttpError::Disconnected => write!(f, "client disconnected mid-request"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (query string included verbatim).
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Classify a raw socket error: timeouts get their own variant because
/// they get their own status code (408), reset/broken-pipe means the
/// client is gone.
fn classify(e: std::io::Error) -> HttpError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => HttpError::Timeout,
        ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted | ErrorKind::BrokenPipe => {
            HttpError::Disconnected
        }
        _ => HttpError::Io(e),
    }
}

/// Fault hook for `serve.read`: `io` fails the read outright, `torn`
/// pretends the client vanished mid-request.
#[cfg(feature = "faults")]
fn injected_read_fault() -> Option<HttpError> {
    use leapme_faults::{fires, sites, FaultKind};
    match fires(sites::SERVE_READ)? {
        FaultKind::Io => Some(HttpError::Io(std::io::Error::other(
            "injected fault: socket read",
        ))),
        FaultKind::Torn => Some(HttpError::Disconnected),
        _ => None,
    }
}

#[cfg(not(feature = "faults"))]
fn injected_read_fault() -> Option<HttpError> {
    None
}

/// Read and parse one request off `stream`, honoring `limits`. The
/// stream's read timeout must already be configured by the caller; a
/// timeout mid-head or mid-body surfaces as [`HttpError::Timeout`].
pub fn read_request(stream: &mut TcpStream, limits: &HttpLimits) -> Result<Request, HttpError> {
    if let Some(e) = injected_read_fault() {
        return Err(e);
    }

    // ---- head: read until the blank line, never past the cap ----
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(p) = find_head_end(&buf) {
            break p;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::BadRequest(format!(
                "request head exceeds {} bytes",
                limits.max_head_bytes
            )));
        }
        let n = stream.read(&mut chunk).map_err(classify)?;
        if n == 0 {
            // EOF without a complete head: nothing-at-all is a probe
            // (or a coalescing client giving up); a partial head is a
            // mid-request disconnect. Neither can be answered.
            return Err(HttpError::Disconnected);
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol {version:?}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::BadRequest(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };

    // ---- body: length-delimited, rejected before buffering ----
    let content_length = match request.header("content-length") {
        Some(v) => v.parse::<usize>().map_err(|_| {
            HttpError::BadRequest(format!("unparseable content-length {v:?}"))
        })?,
        None if request.method == "POST" || request.method == "PUT" => {
            return Err(HttpError::BadRequest(
                "POST requires a content-length header".into(),
            ))
        }
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::PayloadTooLarge {
            declared: content_length,
            limit: limits.max_body_bytes,
        });
    }

    // Bytes past the head terminator already read belong to the body.
    let leftover_start = head_end + 4;
    let mut body: Vec<u8> = buf.get(leftover_start..).unwrap_or(&[]).to_vec();
    if body.len() > content_length {
        return Err(HttpError::BadRequest(
            "body longer than its declared content-length".into(),
        ));
    }
    while body.len() < content_length {
        if let Some(e) = injected_read_fault() {
            return Err(e);
        }
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want]).map_err(classify)?;
        if n == 0 {
            return Err(HttpError::Disconnected);
        }
        body.extend_from_slice(&chunk[..n]);
    }
    request.body = body;
    Ok(request)
}

/// Offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One response. `Connection: close` unless the connection loop grants
/// keep-alive for this exchange.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (JSON for every endpoint).
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Optional `Retry-After` seconds (set on load-shed 503s).
    pub retry_after: Option<u32>,
    /// Whether this response carries partial results after a deadline
    /// expiry; rendered as an `x-leapme-degraded: true` header.
    pub degraded: bool,
    /// Whether the server will keep the connection open for another
    /// request. Set by the connection loop (never by handlers): only
    /// when the client sent an explicit `Connection: keep-alive`, the
    /// per-connection request budget has room, and the server is not
    /// draining.
    pub keep_alive: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            body,
            content_type: "application/json",
            retry_after: None,
            degraded: false,
            keep_alive: false,
        }
    }

    /// A typed JSON error body: `{"error": code, "detail": detail}`.
    pub fn error(status: u16, code: &str, detail: &str) -> Self {
        let body = serde_json::to_string(&ErrorBody {
            error: code.to_string(),
            detail: detail.to_string(),
        })
        .unwrap_or_else(|_| format!("{{\"error\":{code:?}}}"));
        Response::json(status, body)
    }

    /// The load-shed response: `503` + `Retry-After`.
    pub fn shed(retry_after_secs: u32) -> Self {
        let mut r = Response::error(
            503,
            "overloaded",
            "admission queue is full; retry after the indicated delay",
        );
        r.retry_after = Some(retry_after_secs);
        r
    }

    /// Serialize head + body to the wire.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let connection = if self.keep_alive { "keep-alive" } else { "close" };
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("retry-after: {secs}\r\n"));
        }
        if self.degraded {
            head.push_str("x-leapme-degraded: true\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// Typed error body shared by every non-2xx response.
#[derive(serde::Serialize)]
struct ErrorBody {
    error: String,
    detail: String,
}

/// Reason phrase for the handful of status codes the service emits.
fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Lingering close for responses written *before* the request was fully
/// read (shed 503s, 413s, parse 400s): closing a socket with unread
/// bytes in its receive buffer makes the kernel send RST, which can
/// destroy the in-flight response before the client reads it. Half-close
/// the write side, then drain and discard what the client already sent —
/// bounded in both bytes and time so a hostile peer cannot pin us here.
pub fn drain_then_close(stream: &mut TcpStream, max_bytes: usize, timeout: std::time::Duration) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(timeout));
    let mut buf = [0u8; 4096];
    let mut drained = 0usize;
    while drained < max_bytes {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// Map a read-side failure to the response owed to the client, if any.
/// `Disconnected` yields `None` — there is no one to answer — and the
/// caller just drops the connection.
pub fn error_response(e: &HttpError) -> Option<Response> {
    match e {
        HttpError::BadRequest(m) => Some(Response::error(400, "bad-request", m)),
        HttpError::PayloadTooLarge { declared, limit } => Some(Response::error(
            413,
            "payload-too-large",
            &format!("declared body of {declared} bytes exceeds the {limit}-byte cap"),
        )),
        HttpError::Timeout => Some(Response::error(
            408,
            "request-timeout",
            "socket read timed out before the request completed",
        )),
        HttpError::Disconnected => None,
        HttpError::Io(e) => Some(Response::error(400, "bad-request", &e.to_string())),
    }
}
