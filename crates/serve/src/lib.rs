//! Resident LEAPME matching service: `leapme serve`.
//!
//! A robustness-first daemon that loads a trained `.lmp` model and a
//! persisted feature cache once, keeps them resident, and serves
//! scoring, matching, and source integration over a hand-rolled
//! HTTP/1.1 transport (`std::net` only — the vendored-offline policy
//! rules out any framework). The design budget goes to failure
//! handling, in four layers:
//!
//! 1. **Strict parsing** ([`http`]): limits enforced *while reading* —
//!    oversized bodies rejected at the `Content-Length` header,
//!    slow-loris clients cut off by socket timeouts, malformed input
//!    answered with typed 400s.
//! 2. **Admission control** ([`queue`]): one fixed-capacity queue
//!    between accept and the workers; overflow is shed with
//!    `503 + Retry-After`, never buffered, so memory stays bounded.
//! 3. **Deadlines** ([`handlers`]): every request carries a
//!    [`CancelToken`](leapme_core::cancel::CancelToken) deadline
//!    (`x-leapme-deadline-ms` header); scoring is chunked so expiry
//!    returns the chunks already finished, flagged degraded.
//! 4. **Graceful drain** ([`server`]): SIGTERM/SIGINT stops the accept
//!    loop, the queue drains, in-flight requests finish or cancel at
//!    their deadline, and the shutdown is journaled.
//!
//! Worker threads run handlers under `catch_unwind`: a panicking
//! request (chaos-injected via the `serve.handler` fault site or real)
//! costs one 500 response, never a worker or the process.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod handlers;
pub mod http;
pub mod queue;
pub mod server;
pub mod snapshot;
pub mod state;

pub use http::{HttpError, HttpLimits, Request, Response};
pub use queue::{Bounded, Pop};
pub use server::{start, DrainReport, ServerHandle};
pub use snapshot::{ResidentSnapshot, SnapshotError};
pub use state::{Engine, Metrics, Resident, ServeConfig, ServeState, SingleEngine};
