//! Bounded admission queue: the only buffer between `accept` and the
//! worker pool.
//!
//! Fixed capacity, `try_push` only — when the queue is full the caller
//! sheds load (503 + `Retry-After`) instead of buffering, so memory
//! stays bounded no matter how hard clients push. Closing the queue
//! wakes every worker; they drain the remaining items and exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Outcome of a blocking pop.
#[derive(Debug)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The wait timed out with the queue still open — poll shutdown
    /// state and come back.
    Empty,
    /// The queue is closed and fully drained; the worker should exit.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue with explicit rejection on overflow.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// Create a queue admitting at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Bounded {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admit `item`, or hand it back when the queue is full or closed —
    /// the caller owns the rejection (shed vs. drop-on-drain).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue, waiting up to `timeout`. Returns [`Pop::Closed`] only
    /// once the queue is both closed *and* empty, so every admitted
    /// item is processed before workers exit.
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Pop::Item(item);
            }
            if inner.closed {
                return Pop::Closed;
            }
            let (next, result) = self
                .ready
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|e| e.into_inner());
            inner = next;
            if result.timed_out() {
                return match inner.items.pop_front() {
                    Some(item) => Pop::Item(item),
                    None if inner.closed => Pop::Closed,
                    None => Pop::Empty,
                };
            }
        }
    }

    /// Stop admitting and wake every waiter; already-admitted items
    /// remain poppable until drained.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn overflow_is_rejected_not_buffered() {
        let q = Bounded::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "third item is shed");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_remaining_items_then_reports_closed() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert!(q.try_push(3).is_err(), "no admission after close");
        assert!(matches!(q.pop_timeout(Duration::from_millis(10)), Pop::Item(1)));
        assert!(matches!(q.pop_timeout(Duration::from_millis(10)), Pop::Item(2)));
        assert!(matches!(q.pop_timeout(Duration::from_millis(10)), Pop::Closed));
    }

    #[test]
    fn empty_timeout_lets_workers_poll_shutdown() {
        let q: Bounded<u32> = Bounded::new(1);
        assert!(matches!(q.pop_timeout(Duration::from_millis(5)), Pop::Empty));
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(Bounded::new(8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut pushed = 0u64;
                for i in 0..50u64 {
                    if q.try_push(t * 1000 + i).is_ok() {
                        pushed += 1;
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
                pushed
            }));
        }
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = 0u64;
                loop {
                    match q.pop_timeout(Duration::from_millis(20)) {
                        Pop::Item(_) => got += 1,
                        Pop::Empty => {}
                        Pop::Closed => break,
                    }
                }
                got
            })
        };
        let pushed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(pushed, got, "every admitted item is drained exactly once");
    }
}
