//! The accept loop, panic-isolated worker pool, and graceful drain.
//!
//! One accept thread owns the (nonblocking) listener: it polls the
//! shutdown flag between accepts, sheds with a `503 + Retry-After`
//! when the bounded queue is full, and on shutdown flips the draining
//! flag, closes the queue, and drops the listener. A fixed pool of
//! worker threads pops connections, parses with socket timeouts, runs
//! the handler under `catch_unwind`, and keeps serving after any panic
//! — a poisoned request never takes a worker (or the process) down.

use crate::handlers::{self, request_deadline};
use crate::http::{drain_then_close, error_response, read_request, HttpError, Response};
use crate::queue::{Bounded, Pop};
use crate::state::ServeState;
use leapme_core::cancel::CancelToken;
use serde::Serialize;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often idle threads poll the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Lingering-close budget for responses sent before the request was
/// fully read: drain at most this many client bytes…
const LINGER_MAX_BYTES: usize = 64 * 1024;
/// …for at most this long, so a trickling client cannot pin a thread.
const LINGER_TIMEOUT: Duration = Duration::from_millis(100);

/// One admitted connection, waiting for a worker.
struct Job {
    stream: TcpStream,
}

/// What the drain left behind; `clean` means every in-flight request
/// completed (possibly degraded) rather than being cut off.
#[derive(Debug, Clone, Serialize)]
pub struct DrainReport {
    /// Requests answered over the server's lifetime.
    pub completed: u64,
    /// Requests shed with `503 Retry-After`.
    pub shed: u64,
    /// Responses flagged degraded (partial results at deadline).
    pub degraded: u64,
    /// Requests rejected because their deadline expired before work ran.
    pub deadline_rejects: u64,
    /// Handler panics absorbed by the worker pool.
    pub worker_panics: u64,
    /// Queued connections dropped unanswered at shutdown (should be 0:
    /// the queue drains before workers exit).
    pub dropped_at_shutdown: u64,
    /// `true` when nothing was dropped — the drain honored every
    /// admitted request.
    pub clean: bool,
}

/// Journal record for server lifecycle events.
#[derive(Serialize)]
struct LifecycleEvent {
    event: &'static str,
    addr: String,
    workers: usize,
    queue_depth: usize,
}

/// Journal record for the shutdown summary.
#[derive(Serialize)]
struct ShutdownEvent {
    event: &'static str,
    completed: u64,
    shed: u64,
    degraded: u64,
    worker_panics: u64,
    clean: bool,
}

/// A running server. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::shutdown`] then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    state: Arc<ServeState>,
    queue: Arc<Bounded<Job>>,
}

impl ServerHandle {
    /// The bound address (useful with `:0` port requests).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Begin the drain: stop accepting, let in-flight work finish.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Block until the accept thread and every worker have exited,
    /// then report what the drain left behind. Call after
    /// [`ServerHandle::shutdown`] (or an external flag) fired.
    pub fn join(mut self) -> DrainReport {
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Anything still queued after the workers exited was admitted
        // but never served — with Pop::Closed semantics this stays 0.
        let dropped = self.queue.len() as u64;
        let m = &self.state.metrics;
        let report = DrainReport {
            completed: m.completed.load(Ordering::Relaxed),
            shed: m.shed.load(Ordering::Relaxed),
            degraded: m.degraded.load(Ordering::Relaxed),
            deadline_rejects: m.deadline_rejects.load(Ordering::Relaxed),
            worker_panics: m.worker_panics.load(Ordering::Relaxed),
            dropped_at_shutdown: dropped,
            clean: dropped == 0,
        };
        self.state.journal_event(&ShutdownEvent {
            event: "serve.shutdown",
            completed: report.completed,
            shed: report.shed,
            degraded: report.degraded,
            worker_panics: report.worker_panics,
            clean: report.clean,
        });
        report
    }
}

/// Bind, spawn the accept thread and worker pool, and return a handle.
///
/// `external_shutdown` (e.g. the CLI's SIGINT/SIGTERM flag) is polled
/// alongside the handle's own flag; either one starts the drain.
pub fn start(
    state: Arc<ServeState>,
    external_shutdown: Option<&'static AtomicBool>,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&state.config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    state.journal_event(&LifecycleEvent {
        event: "serve.start",
        addr: addr.to_string(),
        workers: state.config.workers,
        queue_depth: state.config.queue_depth,
    });

    let shutdown = Arc::new(AtomicBool::new(false));
    let queue: Arc<Bounded<Job>> = Arc::new(Bounded::new(state.config.queue_depth));

    let accept_thread = {
        let state = Arc::clone(&state);
        let shutdown = Arc::clone(&shutdown);
        let queue = Arc::clone(&queue);
        std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(listener, state, queue, shutdown, external_shutdown))?
    };

    let mut workers = Vec::with_capacity(state.config.workers);
    for i in 0..state.config.workers {
        let state = Arc::clone(&state);
        let queue = Arc::clone(&queue);
        workers.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(state, queue))?,
        );
    }

    Ok(ServerHandle {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
        workers,
        state,
        queue,
    })
}

/// Fault hook for `serve.accept`: a fired `io` fault drops the freshly
/// accepted connection on the floor, as a flaky NIC would.
#[cfg(feature = "faults")]
fn injected_accept_fault() -> bool {
    leapme_faults::fires(leapme_faults::sites::SERVE_ACCEPT).is_some()
}

#[cfg(not(feature = "faults"))]
fn injected_accept_fault() -> bool {
    false
}

/// Accept until a shutdown flag fires, then flip draining, close the
/// queue, and let the listener drop (new connections get RST/refused).
fn accept_loop(
    listener: TcpListener,
    state: Arc<ServeState>,
    queue: Arc<Bounded<Job>>,
    shutdown: Arc<AtomicBool>,
    external: Option<&'static AtomicBool>,
) {
    let stop = |shutdown: &AtomicBool| {
        shutdown.load(Ordering::SeqCst)
            || external.is_some_and(|f| f.load(Ordering::SeqCst))
    };
    loop {
        if stop(&shutdown) {
            break;
        }
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                if injected_accept_fault() {
                    state.metrics.accept_faults.fetch_add(1, Ordering::Relaxed);
                    drop(stream); // simulated accept-side failure
                    continue;
                }
                if stop(&shutdown) {
                    // Raced with shutdown: answer honestly, don't admit.
                    let _ = stream.set_write_timeout(Some(state.config.io_timeout));
                    let _ = Response::error(503, "draining", "server is shutting down")
                        .write_to(&mut stream);
                    drain_then_close(&mut stream, LINGER_MAX_BYTES, LINGER_TIMEOUT);
                    continue;
                }
                if let Err(rejected) = queue.try_push(Job { stream }) {
                    state.metrics.shed.fetch_add(1, Ordering::Relaxed);
                    let mut stream = rejected.stream;
                    let _ = stream.set_write_timeout(Some(state.config.io_timeout));
                    let _ = Response::shed(state.config.retry_after_secs).write_to(&mut stream);
                    // The request was never read; linger so the 503
                    // survives the close instead of dying to an RST.
                    drain_then_close(&mut stream, LINGER_MAX_BYTES, LINGER_TIMEOUT);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => {
                // Transient accept failure (EMFILE, ECONNABORTED, …):
                // back off briefly rather than spinning.
                state.metrics.accept_faults.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }
    state.draining.store(true, Ordering::SeqCst);
    queue.close();
    // Listener drops here; the OS refuses new connections from now on.
}

/// Pop-and-serve until the queue reports closed-and-drained.
fn worker_loop(state: Arc<ServeState>, queue: Arc<Bounded<Job>>) {
    loop {
        match queue.pop_timeout(POLL_INTERVAL) {
            Pop::Item(job) => serve_connection(&state, job.stream),
            Pop::Empty => continue,
            Pop::Closed => break,
        }
    }
}

/// Fault hook for `serve.write`: a fired `io` fault fails the response
/// write as a mid-write disconnect would.
#[cfg(feature = "faults")]
fn injected_write_fault() -> bool {
    leapme_faults::fires(leapme_faults::sites::SERVE_WRITE).is_some()
}

#[cfg(not(feature = "faults"))]
fn injected_write_fault() -> bool {
    false
}

/// Serve one connection end-to-end: read with timeouts, resolve the
/// deadline, run the handler under `catch_unwind`, write the response —
/// then, when the client asked for `Connection: keep-alive`, loop for
/// the next request on the same socket, up to the configured
/// per-connection budget. Every exchange keeps the full per-request
/// semantics: the same socket timeouts (a slow-loris *second* request
/// dies like a first), its own deadline token, its own panic boundary.
/// A drain in progress closes after the in-flight response.
fn serve_connection(state: &ServeState, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(state.config.io_timeout));
    let _ = stream.set_write_timeout(Some(state.config.io_timeout));
    let max_requests = state.config.keep_alive_max_requests.max(1);

    for served in 0..max_requests {
        let request = match read_request(&mut stream, &state.config.limits) {
            Ok(r) => r,
            Err(e) => {
                match error_response(&e) {
                    // On a kept-alive connection, an idle client going
                    // away (EOF) or staying silent past the socket
                    // timeout is a normal end of conversation, not an
                    // error owed a response.
                    Some(_)
                        if served > 0
                            && matches!(e, HttpError::Timeout | HttpError::Disconnected) => {}
                    Some(resp) => {
                        state.metrics.client_errors.fetch_add(1, Ordering::Relaxed);
                        write_response(state, &mut stream, &resp);
                        // The request was only partially read (oversized
                        // body, parse error): linger so the error response
                        // outlives the unread bytes.
                        drain_then_close(&mut stream, LINGER_MAX_BYTES, LINGER_TIMEOUT);
                    }
                    None => {
                        state.metrics.disconnects.fetch_add(1, Ordering::Relaxed);
                    }
                }
                return;
            }
        };

        let deadline = match request_deadline(state, &request) {
            Ok(d) => d,
            Err(resp) => {
                state.metrics.client_errors.fetch_add(1, Ordering::Relaxed);
                write_response(state, &mut stream, &resp);
                return;
            }
        };
        state.metrics.admitted.fetch_add(1, Ordering::Relaxed);
        let token = CancelToken::new().with_timeout(deadline);

        // The panic boundary: an injected (or real) handler panic is
        // absorbed here, answered with a 500, and the worker lives on.
        let mut response = match catch_unwind(AssertUnwindSafe(|| {
            handlers::handle(state, &request, &token)
        })) {
            Ok(resp) => resp,
            Err(_) => {
                state.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                Response::error(500, "internal", "request handler panicked; worker recovered")
            }
        };

        // Keep-alive is granted per exchange, never assumed: the client
        // must have asked explicitly, the budget must have room, and a
        // draining server finishes this response then closes so the
        // drain cannot be pinned by an idle connection.
        let keep = request
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
            && served + 1 < max_requests
            && !state.draining.load(Ordering::SeqCst);
        response.keep_alive = keep;

        if response.degraded {
            state.metrics.degraded.fetch_add(1, Ordering::Relaxed);
        }
        if response.status < 500 || response.status == 503 {
            state.metrics.completed.fetch_add(1, Ordering::Relaxed);
        }
        if (400..500).contains(&response.status) {
            state.metrics.client_errors.fetch_add(1, Ordering::Relaxed);
        }
        if !write_response(state, &mut stream, &response) || !keep {
            return;
        }
    }
}

/// Write a response, folding injected `serve.write` faults and real
/// socket failures into the `write_failures` counter — the client may
/// be gone, but the server must not care. Returns whether the bytes
/// made it out (a failed write also ends any keep-alive conversation).
fn write_response(state: &ServeState, stream: &mut TcpStream, response: &Response) -> bool {
    if injected_write_fault() {
        state.metrics.write_failures.fetch_add(1, Ordering::Relaxed);
        return false;
    }
    if response.write_to(stream).is_err() {
        state.metrics.write_failures.fetch_add(1, Ordering::Relaxed);
        return false;
    }
    true
}
