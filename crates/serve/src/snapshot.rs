//! Generation-pinned resident-state snapshots.
//!
//! `POST /integrate-source` mutates the resident dataset/graph. Before
//! the in-memory swap, the *new* state is persisted to a `LEAPMECP`
//! container (kind [`KIND_RESIDENT`]) via the checkpoint layer's atomic
//! temp + fsync + rename protocol. The file therefore always holds a
//! complete, CRC-verified generation: a SIGKILL at any instant — mid
//! integration, mid snapshot write, mid swap — leaves either the old or
//! the new generation on disk, never a torn hybrid, and a restarted
//! server recovers the last good generation bitwise.
//!
//! Fault site `continual.snapshot` (`torn` or `io`) fails the persist
//! *before* the rename: the previous snapshot survives untouched and
//! the handler refuses the swap with a typed 500, keeping disk and
//! memory in agreement.

use leapme_core::simgraph::SimilarityGraph;
use leapme_data::model::Dataset;
use leapme_nn::checkpoint::{CheckpointError, Decoder, Encoder, KIND_RESIDENT};
use leapme_nn::container2::{open_any, Opened, V2Writer};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The snapshot payload: everything needed to rebuild [`crate::state::Resident`]
/// (the feature store is derived from dataset + embeddings on load).
#[derive(Serialize, Deserialize)]
pub struct ResidentSnapshot {
    /// Resident dataset at snapshot time.
    pub dataset: Dataset,
    /// Similarity graph at snapshot time.
    pub graph: SimilarityGraph,
    /// Generation the snapshot pins.
    pub generation: u64,
}

/// How a snapshot operation can fail.
#[derive(Debug)]
pub enum SnapshotError {
    /// The container layer failed (I/O, CRC, wrong kind).
    Checkpoint(CheckpointError),
    /// The payload was a valid container but not a valid snapshot.
    Malformed(String),
    /// An injected `continual.snapshot` fault (chaos suite).
    Injected,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Checkpoint(e) => write!(f, "snapshot container: {e}"),
            SnapshotError::Malformed(m) => write!(f, "snapshot payload: {m}"),
            SnapshotError::Injected => write!(f, "injected fault: continual.snapshot"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Fault hook for `continual.snapshot`: both kinds fail the persist
/// before the atomic rename, so the previous snapshot survives.
#[cfg(feature = "faults")]
fn injected_snapshot_fault() -> bool {
    use leapme_faults::{fires, sites, FaultKind};
    matches!(
        fires(sites::CONTINUAL_SNAPSHOT),
        Some(FaultKind::Torn | FaultKind::Io)
    )
}

#[cfg(not(feature = "faults"))]
fn injected_snapshot_fault() -> bool {
    false
}

/// Persist `snapshot` to `path` atomically, as a v2 section container:
/// a `meta` section carrying the pinned generation (readable without
/// parsing the JSON — the registry inspection path uses it) and a
/// `snapshot.json` section with the full payload. On any error
/// (injected or real) the file at `path` is left exactly as it was.
pub fn save(path: &Path, snapshot: &ResidentSnapshot) -> Result<(), SnapshotError> {
    if injected_snapshot_fault() {
        return Err(SnapshotError::Injected);
    }
    let payload = serde_json::to_string(snapshot)
        .map_err(|e| SnapshotError::Malformed(e.to_string()))?;
    let mut meta = Encoder::new();
    meta.u64(snapshot.generation);
    let mut w = V2Writer::new(KIND_RESIDENT);
    w.bytes("meta", &meta.finish());
    w.bytes("snapshot.json", payload.as_bytes());
    w.write(path).map_err(SnapshotError::Checkpoint)
}

/// Load the snapshot at `path` — v1 (legacy single-payload JSON) or v2.
/// Returns `Ok(None)` when no snapshot exists yet (fresh deployment);
/// any *present but unreadable* snapshot is an error — silently
/// starting empty would lose integrated sources.
pub fn load(path: &Path) -> Result<Option<ResidentSnapshot>, SnapshotError> {
    if !path.exists() {
        return Ok(None);
    }
    let json: Vec<u8> = match open_any(path, KIND_RESIDENT).map_err(SnapshotError::Checkpoint)? {
        Opened::V1(payload) => payload,
        Opened::V2(container) => {
            let meta_generation = {
                let meta = container
                    .section_bytes("meta")
                    .map_err(SnapshotError::Checkpoint)?;
                let mut d = Decoder::new(meta);
                let generation = d.u64().map_err(SnapshotError::Checkpoint)?;
                d.done().map_err(SnapshotError::Checkpoint)?;
                generation
            };
            let json = container
                .section_bytes("snapshot.json")
                .map_err(SnapshotError::Checkpoint)?
                .to_vec();
            let snapshot = parse(&json)?;
            if snapshot.generation != meta_generation {
                return Err(SnapshotError::Malformed(format!(
                    "meta pins generation {meta_generation} but payload holds {}",
                    snapshot.generation
                )));
            }
            return Ok(Some(snapshot));
        }
    };
    Ok(Some(parse(&json)?))
}

fn parse(payload: &[u8]) -> Result<ResidentSnapshot, SnapshotError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| SnapshotError::Malformed("payload is not UTF-8".to_string()))?;
    serde_json::from_str(text).map_err(|e| SnapshotError::Malformed(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapme_data::model::{Instance, PropertyKey, PropertyPair, SourceId};
    use std::collections::BTreeMap;

    fn tiny_dataset() -> Dataset {
        let sources = vec!["a".to_string(), "b".to_string()];
        let instances = vec![
            Instance {
                source: SourceId(0),
                property: "width".to_string(),
                entity: "e0".to_string(),
                value: "10 cm".to_string(),
            },
            Instance {
                source: SourceId(1),
                property: "breadth".to_string(),
                entity: "e1".to_string(),
                value: "11 cm".to_string(),
            },
        ];
        let mut alignment = BTreeMap::new();
        alignment.insert(PropertyKey::new(SourceId(0), "width".to_string()), "w".to_string());
        alignment.insert(PropertyKey::new(SourceId(1), "breadth".to_string()), "w".to_string());
        Dataset::new("t".to_string(), sources, instances, alignment).unwrap()
    }

    #[test]
    fn roundtrips_bitwise() {
        let dir = std::env::temp_dir().join(format!("leapme-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resident.snap");
        let dataset = tiny_dataset();
        let mut graph = SimilarityGraph::new();
        let props = dataset.properties();
        graph.add(PropertyPair::new(props[0].clone(), props[1].clone()), 0.875);
        let snap = ResidentSnapshot {
            dataset,
            graph,
            generation: 3,
        };
        save(&path, &snap).unwrap();
        let bytes_a = std::fs::read(&path).unwrap();
        let back = load(&path).unwrap().expect("snapshot present");
        assert_eq!(back.generation, 3);
        assert_eq!(back.dataset.sources(), snap.dataset.sources());
        assert_eq!(back.graph.len(), 1);
        // Re-saving the loaded state reproduces the file bitwise.
        save(&path, &back).unwrap();
        let bytes_b = std::fs::read(&path).unwrap();
        assert_eq!(bytes_a, bytes_b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_v1_snapshot_still_loads() {
        let dir = std::env::temp_dir().join(format!("leapme-snap-v1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.snap");
        let snap = ResidentSnapshot {
            dataset: tiny_dataset(),
            graph: SimilarityGraph::new(),
            generation: 7,
        };
        // Write the pre-v2 layout directly: one JSON payload in a v1
        // container.
        let payload = serde_json::to_string(&snap).unwrap();
        leapme_nn::checkpoint::write_container(&path, KIND_RESIDENT, payload.as_bytes()).unwrap();
        let back = load(&path).unwrap().expect("snapshot present");
        assert_eq!(back.generation, 7);
        assert_eq!(back.dataset.sources(), snap.dataset.sources());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_snapshot_is_none_and_garbage_is_an_error() {
        let dir = std::env::temp_dir().join(format!("leapme-snap2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("absent.snap");
        std::fs::remove_file(&path).ok();
        assert!(load(&path).unwrap().is_none());
        std::fs::write(&path, b"not a container").unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
