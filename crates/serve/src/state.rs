//! Resident state shared by every worker: the warm model + feature
//! store, the mutable similarity graph, counters, and the single-flight
//! coalescer for identical `match` requests.

use crate::http::HttpLimits;
use leapme_core::journal::RunJournal;
use leapme_core::pipeline::LeapmeModel;
use leapme_core::registry::ModelRegistry;
use leapme_core::retry::RetryPolicy;
use leapme_core::simgraph::SimilarityGraph;
use leapme_data::model::Dataset;
use leapme_embedding::store::EmbeddingStore;
use leapme_features::vectorizer::PropertyFeatureStore;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it are shed with
    /// `503` + `Retry-After`.
    pub queue_depth: usize,
    /// Socket read/write timeout — the slow-loris bound.
    pub io_timeout: Duration,
    /// Default per-request deadline when the client sends no
    /// `x-leapme-deadline-ms` header.
    pub request_timeout: Duration,
    /// Upper bound any client header can raise the deadline to.
    pub max_deadline: Duration,
    /// `Retry-After` seconds advertised on shed responses.
    pub retry_after_secs: u32,
    /// Read-side parsing limits.
    pub limits: HttpLimits,
    /// Retry budget for journal appends.
    pub retry: RetryPolicy,
    /// Where `integrate-source` persists the resident snapshot before
    /// every swap (and where startup recovery reads it from). `None`
    /// disables snapshotting.
    pub snapshot_path: Option<std::path::PathBuf>,
    /// Maximum requests served over one kept-alive connection before
    /// the server closes it (bounds how long one client can pin a
    /// worker). Keep-alive is honored only when the client asks for it
    /// with an explicit `Connection: keep-alive` header.
    pub keep_alive_max_requests: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            io_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(5),
            max_deadline: Duration::from_secs(60),
            retry_after_secs: 1,
            limits: HttpLimits::default(),
            retry: RetryPolicy::default(),
            snapshot_path: None,
            keep_alive_max_requests: 32,
        }
    }
}

/// Monotonic counters, exported by `GET /metrics` and aggregated into
/// the drain report. All relaxed: they are statistics, not locks.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections admitted to the queue.
    pub admitted: AtomicU64,
    /// Requests answered with any status.
    pub completed: AtomicU64,
    /// Connections shed with `503` because the queue was full.
    pub shed: AtomicU64,
    /// `200`s that carried partial results after a deadline expiry.
    pub degraded: AtomicU64,
    /// Requests rejected outright because their deadline expired before
    /// any result was produced.
    pub deadline_rejects: AtomicU64,
    /// Client-side errors answered (`400/404/405/408/413`).
    pub client_errors: AtomicU64,
    /// Handler panics caught by the worker-pool isolation.
    pub worker_panics: AtomicU64,
    /// `match` requests served from another request's in-flight
    /// computation.
    pub coalesced: AtomicU64,
    /// Connections dropped mid-request by the client (or a torn-read
    /// fault).
    pub disconnects: AtomicU64,
    /// Injected/real accept-side failures survived.
    pub accept_faults: AtomicU64,
    /// Response writes that failed (client gone, write fault).
    pub write_failures: AtomicU64,
    /// Sources integrated into the resident graph.
    pub integrations: AtomicU64,
    /// Registry-mode domain hot-swaps completed via `POST /reload`.
    pub reloads: AtomicU64,
}

impl Metrics {
    /// Render every counter as a JSON object.
    pub fn to_json(&self, queued: usize, draining: bool) -> String {
        let snap = MetricsSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            deadline_rejects: self.deadline_rejects.load(Ordering::Relaxed),
            client_errors: self.client_errors.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            accept_faults: self.accept_faults.load(Ordering::Relaxed),
            write_failures: self.write_failures.load(Ordering::Relaxed),
            integrations: self.integrations.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            queued,
            draining,
        };
        serde_json::to_string(&snap).expect("metrics snapshot serializes")
    }
}

/// Serializable view of [`Metrics`] plus instantaneous queue state.
#[derive(Serialize)]
struct MetricsSnapshot {
    admitted: u64,
    completed: u64,
    shed: u64,
    degraded: u64,
    deadline_rejects: u64,
    client_errors: u64,
    worker_panics: u64,
    coalesced: u64,
    disconnects: u64,
    accept_faults: u64,
    write_failures: u64,
    integrations: u64,
    reloads: u64,
    queued: usize,
    draining: bool,
}

/// The mutable half of the resident state: everything `integrate-source`
/// swaps atomically under the write lock.
pub struct Resident {
    /// Current dataset (grows as sources are integrated).
    pub dataset: Dataset,
    /// Feature store over `dataset`.
    pub store: PropertyFeatureStore,
    /// The similarity graph served by `match` and grown by
    /// `integrate-source`.
    pub graph: SimilarityGraph,
    /// Bumped on every successful integration; keys the single-flight
    /// coalescer so stale in-flight `match` results are never shared
    /// across a mutation.
    pub generation: u64,
}

/// The single-model engine: one warm model + embedding store + the
/// swap-on-write resident data, exactly the pre-registry server.
pub struct SingleEngine {
    /// The warm model (immutable for the server's lifetime).
    pub model: LeapmeModel,
    /// Embedding store (immutable; needed to featurize new sources).
    pub embeddings: EmbeddingStore,
    /// The swap-on-write resident data.
    pub resident: RwLock<Resident>,
}

/// What the server scores against: one warm model (the classic
/// `serve --model` deployment) or a multi-domain registry
/// (`serve --models dir/`), where requests select a domain by the
/// `model` body field / `x-leapme-model` header.
pub enum Engine {
    /// One model, one dataset, mutable via `integrate-source`. Boxed:
    /// the warm model dwarfs the registry `Arc` and the enum would
    /// otherwise carry the larger variant's size everywhere.
    Single(Box<SingleEngine>),
    /// Many lazily faulted-in domains behind shared mappings.
    Registry(Arc<ModelRegistry>),
}

/// Everything a worker needs, shared behind one `Arc`.
pub struct ServeState {
    /// The scoring backend.
    pub engine: Engine,
    /// Counters.
    pub metrics: Metrics,
    /// Optional run journal for start/integration/shutdown records.
    pub journal: Option<RunJournal>,
    /// Server tunables.
    pub config: ServeConfig,
    /// Set once drain begins: `readyz` flips to 503 and new connections
    /// are refused while in-flight work finishes.
    pub draining: AtomicBool,
    /// Single-flight table for `match` coalescing.
    pub singleflight: SingleFlight,
}

impl ServeState {
    /// Assemble the shared state.
    pub fn new(
        model: LeapmeModel,
        embeddings: EmbeddingStore,
        dataset: Dataset,
        store: PropertyFeatureStore,
        journal: Option<RunJournal>,
        config: ServeConfig,
    ) -> Self {
        let resident = Resident {
            dataset,
            store,
            graph: SimilarityGraph::new(),
            generation: 0,
        };
        Self::with_resident(model, embeddings, resident, journal, config)
    }

    /// Assemble the shared state around an already-recovered resident
    /// (snapshot startup path: dataset + graph + generation restored
    /// from the last good on-disk generation).
    pub fn with_resident(
        model: LeapmeModel,
        embeddings: EmbeddingStore,
        resident: Resident,
        journal: Option<RunJournal>,
        config: ServeConfig,
    ) -> Self {
        ServeState {
            engine: Engine::Single(Box::new(SingleEngine {
                model,
                embeddings,
                resident: RwLock::new(resident),
            })),
            metrics: Metrics::default(),
            journal,
            config,
            draining: AtomicBool::new(false),
            singleflight: SingleFlight::default(),
        }
    }

    /// Assemble the shared state over a multi-domain registry.
    pub fn with_registry(
        registry: Arc<ModelRegistry>,
        journal: Option<RunJournal>,
        config: ServeConfig,
    ) -> Self {
        ServeState {
            engine: Engine::Registry(registry),
            metrics: Metrics::default(),
            journal,
            config,
            draining: AtomicBool::new(false),
            singleflight: SingleFlight::default(),
        }
    }

    /// The single-model engine parts, `None` in registry mode. Chaos
    /// tests and the single-mode handlers reach resident state through
    /// this.
    pub fn single(&self) -> Option<&SingleEngine> {
        match &self.engine {
            Engine::Single(s) => Some(s),
            Engine::Registry(_) => None,
        }
    }

    /// The registry, `None` in single-model mode.
    pub fn registry(&self) -> Option<&Arc<ModelRegistry>> {
        match &self.engine {
            Engine::Single(_) => None,
            Engine::Registry(r) => Some(r),
        }
    }

    /// Append `record` to the journal (if configured) with the bounded
    /// retry budget. Journal failures never take the service down; they
    /// are reported to stderr and counted as write failures.
    pub fn journal_event<T: Serialize>(&self, record: &T) {
        if let Some(j) = &self.journal {
            if let Err(e) = j.append_retrying(record, &self.config.retry) {
                eprintln!("leapme serve: journal append failed: {e}");
                self.metrics.write_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// State of one in-flight single-flight computation.
enum FlightState {
    Running,
    Done(Arc<String>),
    Abandoned,
}

/// One flight's shared slot: state guarded by the mutex, waiters parked
/// on the condvar.
type FlightSlot = Arc<(Mutex<FlightState>, Condvar)>;

/// Coalesces identical idempotent computations: the first caller runs,
/// concurrent callers with the same key wait for its result (bounded by
/// their own deadline) instead of redoing the work.
#[derive(Default)]
pub struct SingleFlight {
    flights: Mutex<HashMap<u64, FlightSlot>>,
}

/// What `join_or_lead` decided for this caller.
pub enum FlightRole {
    /// This caller computes; it must call [`SingleFlight::complete`]
    /// (or [`SingleFlight::abandon`]) with the same key.
    Leader,
    /// Another caller computed the value while we waited.
    Follower(Arc<String>),
    /// The leader was still running when this caller's deadline expired.
    TimedOut,
    /// The leader abandoned (deadline, panic); call `join_or_lead`
    /// again — this caller may become the fresh leader.
    Retry,
}

impl SingleFlight {
    /// Join an in-flight computation for `key`, or become its leader.
    /// Followers wait at most `wait`; expiry returns
    /// [`FlightRole::TimedOut`] so the caller can shed with its own
    /// deadline semantics.
    pub fn join_or_lead(&self, key: u64, wait: Duration) -> FlightRole {
        let flight = {
            let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
            match flights.get(&key) {
                Some(f) => Arc::clone(f),
                None => {
                    let f = Arc::new((Mutex::new(FlightState::Running), Condvar::new()));
                    flights.insert(key, Arc::clone(&f));
                    return FlightRole::Leader;
                }
            }
        };
        let (lock, cv) = &*flight;
        let deadline = std::time::Instant::now() + wait;
        let mut st = lock.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match &*st {
                FlightState::Done(v) => return FlightRole::Follower(Arc::clone(v)),
                FlightState::Abandoned => return FlightRole::Retry,
                FlightState::Running => {}
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return FlightRole::TimedOut;
            }
            let (next, _) = cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = next;
        }
    }

    /// Leader publishes its result and wakes every follower. The flight
    /// entry is removed so later requests recompute fresh state.
    pub fn complete(&self, key: u64, value: Arc<String>) {
        let flight = {
            let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
            flights.remove(&key)
        };
        if let Some(f) = flight {
            let (lock, cv) = &*f;
            *lock.lock().unwrap_or_else(|e| e.into_inner()) = FlightState::Done(value);
            cv.notify_all();
        }
    }

    /// Leader failed (deadline, panic): drop the flight so a follower
    /// can retry as a fresh leader, and wake waiters to re-evaluate.
    pub fn abandon(&self, key: u64) {
        let flight = {
            let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
            flights.remove(&key)
        };
        if let Some(f) = flight {
            let (lock, cv) = &*f;
            *lock.lock().unwrap_or_else(|e| e.into_inner()) = FlightState::Abandoned;
            cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flight_coalesces_followers() {
        let sf = Arc::new(SingleFlight::default());
        assert!(matches!(
            sf.join_or_lead(7, Duration::from_millis(1)),
            FlightRole::Leader
        ));
        let follower = {
            let sf = Arc::clone(&sf);
            std::thread::spawn(move || sf.join_or_lead(7, Duration::from_secs(2)))
        };
        std::thread::sleep(Duration::from_millis(20));
        sf.complete(7, Arc::new("result".to_string()));
        match follower.join().unwrap() {
            FlightRole::Follower(v) => assert_eq!(*v, "result"),
            _ => panic!("follower should receive the leader's value"),
        }
    }

    #[test]
    fn follower_times_out_on_a_stuck_leader() {
        let sf = SingleFlight::default();
        assert!(matches!(
            sf.join_or_lead(1, Duration::from_millis(1)),
            FlightRole::Leader
        ));
        // The leader never completes; a follower with a short deadline
        // gets TimedOut instead of hanging.
        assert!(matches!(
            sf.join_or_lead(1, Duration::from_millis(30)),
            FlightRole::TimedOut
        ));
        sf.abandon(1);
        // After abandon the key is free again.
        assert!(matches!(
            sf.join_or_lead(1, Duration::from_millis(1)),
            FlightRole::Leader
        ));
    }

    #[test]
    fn abandoned_leader_sends_followers_back_to_retry() {
        let sf = Arc::new(SingleFlight::default());
        assert!(matches!(
            sf.join_or_lead(3, Duration::from_millis(1)),
            FlightRole::Leader
        ));
        let follower = {
            let sf = Arc::clone(&sf);
            std::thread::spawn(move || sf.join_or_lead(3, Duration::from_secs(2)))
        };
        std::thread::sleep(Duration::from_millis(20));
        sf.abandon(3);
        assert!(matches!(follower.join().unwrap(), FlightRole::Retry));
    }
}
