//! Full (unrestricted) Damerau–Levenshtein distance.
//!
//! Unlike [`crate::osa`], the full Damerau–Levenshtein distance allows a
//! transposed pair to be further edited, making it a true metric. The
//! implementation follows Lowrance & Wagner's O(|a|·|b|) algorithm with a
//! per-character "last seen row" map.

use crate::normalize_by_max_len;
use crate::scratch::{decode_and_trim, DistanceScratch};

/// Full Damerau–Levenshtein distance between `a` and `b`.
///
/// # Examples
///
/// ```
/// use leapme_textsim::damerau::distance;
/// assert_eq!(distance("ca", "abc"), 2); // OSA would give 3
/// assert_eq!(distance("ab", "ba"), 1);
/// ```
pub fn distance(a: &str, b: &str) -> usize {
    distance_with(a, b, &mut DistanceScratch::new())
}

/// [`distance`] through caller-provided scratch buffers: equal strings
/// short-circuit to `0`, the shared prefix and suffix are trimmed off
/// (exact for the full Damerau–Levenshtein metric; verified exhaustively
/// against the untrimmed DP), and the DP matrix plus the per-character
/// last-row map live in `scratch` — the map's capacity survives across
/// calls, so a warm steady-state call performs no heap allocations
/// beyond first-seen characters.
///
/// Dispatch: a bit-parallel [`crate::myers`] Levenshtein pass first
/// yields an upper bound `k` on the Damerau–Levenshtein distance
/// (DL ≤ OSA ≤ Levenshtein), then [`distance_bounded_with`] fills only
/// the diagonal band.
pub fn distance_with(a: &str, b: &str, scratch: &mut DistanceScratch) -> usize {
    if a == b {
        return 0;
    }
    let bound = crate::myers::distance_with(a, b, scratch);
    distance_bounded_with(a, b, bound, scratch)
}

/// [`distance_with`] given a known upper bound on the distance (any
/// `bound ≥ damerau(a, b)`, e.g. the Levenshtein distance): only the
/// Lowrance–Wagner cells within `bound + 1` of the main diagonal are
/// filled. Every cell of an optimal ≤ `bound` edit derivation — and
/// every long-range transposition reference it selects — lies inside
/// that widened band (the `+ 1` covers the reference column of a
/// boundary-tight transposition); cells outside hold the same
/// `max_dist` sentinel the Lowrance–Wagner recurrence already uses, so
/// out-of-band candidates are never selected and the result is exactly
/// [`distance`] (proven exhaustively and by property tests). When the
/// band covers the whole matrix the kept full DP runs instead.
///
/// # Panics
///
/// May panic or return a wrong distance if `bound < damerau(a, b)`;
/// callers must pass a true upper bound.
pub fn distance_bounded_with(a: &str, b: &str, bound: usize, scratch: &mut DistanceScratch) -> usize {
    if a == b {
        return 0;
    }
    let DistanceScratch {
        ca,
        cb,
        matrix: d,
        last_row,
        ..
    } = scratch;
    let (av, bv) = decode_and_trim(ca, cb, a, b);
    let (n, m) = (av.len(), bv.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // Widened half-width: transposition references can sit one column
    // outside the ±bound band.
    let band = bound + 1;
    lowrance_wagner(av, bv, if band >= m { None } else { Some(band) }, d, last_row)
}

/// The Lowrance–Wagner DP, full (`band == None` — the kept reference
/// kernel) or restricted to a diagonal band of the given half-width.
fn lowrance_wagner(
    av: &[char],
    bv: &[char],
    band: Option<usize>,
    d: &mut Vec<usize>,
    last_row: &mut std::collections::HashMap<char, usize>,
) -> usize {
    let (n, m) = (av.len(), bv.len());
    let max_dist = n + m;
    // d has an extra leading row/column holding max_dist sentinels; in
    // banded mode every unfilled cell doubles as that sentinel.
    let w = m + 2;
    d.clear();
    d.resize((n + 2) * w, max_dist);
    let idx = |i: usize, j: usize| i * w + j;

    for i in 0..=n {
        d[idx(i + 1, 1)] = i;
    }
    for j in 0..=m {
        d[idx(1, j + 1)] = j;
    }

    last_row.clear();

    for i in 1..=n {
        let (lo, hi) = match band {
            Some(k) => ((i.saturating_sub(k)).max(1), (i + k).min(m)),
            None => (1, m),
        };
        let mut last_match_col = 0usize;
        for j in lo..=hi {
            let i1 = *last_row.get(&bv[j - 1]).unwrap_or(&0);
            let j1 = last_match_col;
            let cost = if av[i - 1] == bv[j - 1] {
                last_match_col = j;
                0
            } else {
                1
            };
            let substitution = d[idx(i, j)] + cost;
            let insertion = d[idx(i + 1, j)] + 1;
            let deletion = d[idx(i, j + 1)] + 1;
            let transposition = d[idx(i1, j1)] + (i - i1 - 1) + 1 + (j - j1 - 1);
            d[idx(i + 1, j + 1)] = substitution
                .min(insertion)
                .min(deletion)
                .min(transposition);
        }
        last_row.insert(av[i - 1], i);
    }
    d[idx(n + 1, m + 1)]
}

/// Full Damerau–Levenshtein distance normalized by the longer string's
/// character count, in `[0, 1]`.
pub fn normalized_distance(a: &str, b: &str) -> f64 {
    normalize_by_max_len(distance(a, b), a.chars().count(), b.chars().count())
}

/// [`normalized_distance`] through caller-provided scratch buffers.
pub fn normalized_distance_with(a: &str, b: &str, scratch: &mut DistanceScratch) -> f64 {
    normalize_by_max_len(
        distance_with(a, b, scratch),
        a.chars().count(),
        b.chars().count(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{levenshtein, osa};
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// The original untrimmed Lowrance–Wagner DP, kept as the oracle for
    /// the equal-string / affix-trimming fast path.
    fn reference(a: &str, b: &str) -> usize {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        let (n, m) = (av.len(), bv.len());
        if n == 0 {
            return m;
        }
        if m == 0 {
            return n;
        }
        let max_dist = n + m;
        let w = m + 2;
        let mut d = vec![0usize; (n + 2) * w];
        let idx = |i: usize, j: usize| i * w + j;
        d[idx(0, 0)] = max_dist;
        for i in 0..=n {
            d[idx(i + 1, 0)] = max_dist;
            d[idx(i + 1, 1)] = i;
        }
        for j in 0..=m {
            d[idx(0, j + 1)] = max_dist;
            d[idx(1, j + 1)] = j;
        }
        let mut last_row: HashMap<char, usize> = HashMap::new();
        for i in 1..=n {
            let mut last_match_col = 0usize;
            for j in 1..=m {
                let i1 = *last_row.get(&bv[j - 1]).unwrap_or(&0);
                let j1 = last_match_col;
                let cost = if av[i - 1] == bv[j - 1] {
                    last_match_col = j;
                    0
                } else {
                    1
                };
                let substitution = d[idx(i, j)] + cost;
                let insertion = d[idx(i + 1, j)] + 1;
                let deletion = d[idx(i, j + 1)] + 1;
                let transposition = d[idx(i1, j1)] + (i - i1 - 1) + 1 + (j - j1 - 1);
                d[idx(i + 1, j + 1)] = substitution
                    .min(insertion)
                    .min(deletion)
                    .min(transposition);
            }
            last_row.insert(av[i - 1], i);
        }
        d[idx(n + 1, m + 1)]
    }

    #[test]
    fn fast_path_matches_untrimmed_dp_exhaustively() {
        // Long-range transpositions (the last-row map) are the risky
        // interaction with affix trimming, so check every pair over
        // {a,b,c} up to length 4.
        let strings = crate::levenshtein::tests::small_strings(4);
        let mut scratch = crate::scratch::DistanceScratch::new();
        for a in &strings {
            for b in &strings {
                assert_eq!(
                    distance_with(a, b, &mut scratch),
                    reference(a, b),
                    "damerau({a:?},{b:?})"
                );
            }
        }
    }

    #[test]
    fn banded_matches_untrimmed_dp_exhaustively_at_every_bound() {
        // Long-range transposition references are what the widened band
        // must keep reachable; check every valid bound from the tightest
        // (the Levenshtein distance) up to full-DP early-exit widths.
        let strings = crate::levenshtein::tests::small_strings(4);
        let mut scratch = crate::scratch::DistanceScratch::new();
        for a in &strings {
            for b in &strings {
                let lev = levenshtein::distance(a, b);
                let want = reference(a, b);
                for bound in [lev, lev + 1, lev + 3] {
                    assert_eq!(
                        distance_bounded_with(a, b, bound, &mut scratch),
                        want,
                        "damerau_banded({a:?},{b:?},k={bound})"
                    );
                }
            }
        }
    }

    #[test]
    fn known_values() {
        assert_eq!(distance("", ""), 0);
        assert_eq!(distance("abc", ""), 3);
        assert_eq!(distance("", "abc"), 3);
        assert_eq!(distance("abc", "abc"), 0);
        assert_eq!(distance("ab", "ba"), 1);
        assert_eq!(distance("ca", "abc"), 2);
        assert_eq!(distance("a cat", "an abct"), 3);
    }

    #[test]
    fn differs_from_osa_on_canonical_case() {
        assert_eq!(osa::distance("ca", "abc"), 3);
        assert_eq!(distance("ca", "abc"), 2);
    }

    proptest! {
        #[test]
        fn symmetric(a in "[a-e]{0,12}", b in "[a-e]{0,12}") {
            prop_assert_eq!(distance(&a, &b), distance(&b, &a));
        }

        #[test]
        fn at_most_osa(a in "[a-e]{0,12}", b in "[a-e]{0,12}") {
            prop_assert!(distance(&a, &b) <= osa::distance(&a, &b));
        }

        #[test]
        fn at_most_levenshtein(a in "[a-e]{0,12}", b in "[a-e]{0,12}") {
            prop_assert!(distance(&a, &b) <= levenshtein::distance(&a, &b));
        }

        #[test]
        fn triangle_inequality(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
            // Full DL is a metric (unlike OSA).
            prop_assert!(distance(&a, &c) <= distance(&a, &b) + distance(&b, &c));
        }

        #[test]
        fn identity_and_bounds(a in ".{0,16}", b in ".{0,16}") {
            prop_assert_eq!(distance(&a, &a), 0);
            let d = normalized_distance(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
        }

        #[test]
        fn fast_path_matches_untrimmed_dp(a in ".{0,16}", b in ".{0,16}") {
            let mut scratch = crate::scratch::DistanceScratch::new();
            prop_assert_eq!(distance_with(&a, &b, &mut scratch), reference(&a, &b));
        }

        #[test]
        fn banded_matches_untrimmed_dp(a in "[a-e]{0,30}", b in "[a-e]{0,30}") {
            // Small alphabet → dense long-range transpositions — the
            // band-edge stress case for the widened window.
            let mut scratch = crate::scratch::DistanceScratch::new();
            let lev = levenshtein::distance(&a, &b);
            prop_assert_eq!(
                distance_bounded_with(&a, &b, lev, &mut scratch),
                reference(&a, &b)
            );
        }
    }
}
