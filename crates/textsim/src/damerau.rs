//! Full (unrestricted) Damerau–Levenshtein distance.
//!
//! Unlike [`crate::osa`], the full Damerau–Levenshtein distance allows a
//! transposed pair to be further edited, making it a true metric. The
//! implementation follows Lowrance & Wagner's O(|a|·|b|) algorithm with a
//! per-character "last seen row" map.

use crate::normalize_by_max_len;
use std::collections::HashMap;

/// Full Damerau–Levenshtein distance between `a` and `b`.
///
/// # Examples
///
/// ```
/// use leapme_textsim::damerau::distance;
/// assert_eq!(distance("ca", "abc"), 2); // OSA would give 3
/// assert_eq!(distance("ab", "ba"), 1);
/// ```
pub fn distance(a: &str, b: &str) -> usize {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    let (n, m) = (av.len(), bv.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }

    let max_dist = n + m;
    // d has an extra leading row/column holding max_dist sentinels.
    let w = m + 2;
    let mut d = vec![0usize; (n + 2) * w];
    let idx = |i: usize, j: usize| i * w + j;

    d[idx(0, 0)] = max_dist;
    for i in 0..=n {
        d[idx(i + 1, 0)] = max_dist;
        d[idx(i + 1, 1)] = i;
    }
    for j in 0..=m {
        d[idx(0, j + 1)] = max_dist;
        d[idx(1, j + 1)] = j;
    }

    let mut last_row: HashMap<char, usize> = HashMap::new();

    for i in 1..=n {
        let mut last_match_col = 0usize;
        for j in 1..=m {
            let i1 = *last_row.get(&bv[j - 1]).unwrap_or(&0);
            let j1 = last_match_col;
            let cost = if av[i - 1] == bv[j - 1] {
                last_match_col = j;
                0
            } else {
                1
            };
            let substitution = d[idx(i, j)] + cost;
            let insertion = d[idx(i + 1, j)] + 1;
            let deletion = d[idx(i, j + 1)] + 1;
            let transposition = d[idx(i1, j1)] + (i - i1 - 1) + 1 + (j - j1 - 1);
            d[idx(i + 1, j + 1)] = substitution
                .min(insertion)
                .min(deletion)
                .min(transposition);
        }
        last_row.insert(av[i - 1], i);
    }
    d[idx(n + 1, m + 1)]
}

/// Full Damerau–Levenshtein distance normalized by the longer string's
/// character count, in `[0, 1]`.
pub fn normalized_distance(a: &str, b: &str) -> f64 {
    normalize_by_max_len(distance(a, b), a.chars().count(), b.chars().count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{levenshtein, osa};
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        assert_eq!(distance("", ""), 0);
        assert_eq!(distance("abc", ""), 3);
        assert_eq!(distance("", "abc"), 3);
        assert_eq!(distance("abc", "abc"), 0);
        assert_eq!(distance("ab", "ba"), 1);
        assert_eq!(distance("ca", "abc"), 2);
        assert_eq!(distance("a cat", "an abct"), 3);
    }

    #[test]
    fn differs_from_osa_on_canonical_case() {
        assert_eq!(osa::distance("ca", "abc"), 3);
        assert_eq!(distance("ca", "abc"), 2);
    }

    proptest! {
        #[test]
        fn symmetric(a in "[a-e]{0,12}", b in "[a-e]{0,12}") {
            prop_assert_eq!(distance(&a, &b), distance(&b, &a));
        }

        #[test]
        fn at_most_osa(a in "[a-e]{0,12}", b in "[a-e]{0,12}") {
            prop_assert!(distance(&a, &b) <= osa::distance(&a, &b));
        }

        #[test]
        fn at_most_levenshtein(a in "[a-e]{0,12}", b in "[a-e]{0,12}") {
            prop_assert!(distance(&a, &b) <= levenshtein::distance(&a, &b));
        }

        #[test]
        fn triangle_inequality(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
            // Full DL is a metric (unlike OSA).
            prop_assert!(distance(&a, &c) <= distance(&a, &b) + distance(&b, &c));
        }

        #[test]
        fn identity_and_bounds(a in ".{0,16}", b in ".{0,16}") {
            prop_assert_eq!(distance(&a, &a), 0);
            let d = normalized_distance(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
        }
    }
}
