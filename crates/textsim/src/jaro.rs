//! Jaro and Jaro–Winkler similarity (LEAPME Table I row 15).
//!
//! Jaro similarity counts matching characters within a sliding window and
//! penalizes transpositions; Jaro–Winkler boosts strings sharing a common
//! prefix, which suits attribute names ("resolution" vs "resolutions").

/// Jaro similarity in `[0, 1]` (1 = identical).
///
/// # Examples
///
/// ```
/// use leapme_textsim::jaro::jaro_similarity;
/// assert_eq!(jaro_similarity("abc", "abc"), 1.0);
/// assert_eq!(jaro_similarity("abc", "xyz"), 0.0);
/// assert!((jaro_similarity("martha", "marhta") - 0.944444).abs() < 1e-5);
/// ```
pub fn jaro_similarity(a: &str, b: &str) -> f64 {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    if av.is_empty() && bv.is_empty() {
        return 1.0;
    }
    if av.is_empty() || bv.is_empty() {
        return 0.0;
    }
    let window = (av.len().max(bv.len()) / 2).saturating_sub(1);
    let mut b_matched = vec![false; bv.len()];
    let mut a_matches: Vec<char> = Vec::new();
    for (i, ac) in av.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(bv.len());
        for j in lo..hi {
            if !b_matched[j] && bv[j] == *ac {
                b_matched[j] = true;
                a_matches.push(*ac);
                break;
            }
        }
    }
    let m = a_matches.len();
    if m == 0 {
        return 0.0;
    }
    let b_matches: Vec<char> = bv
        .iter()
        .zip(&b_matched)
        .filter(|(_, &used)| used)
        .map(|(c, _)| *c)
        .collect();
    let transpositions = a_matches
        .iter()
        .zip(&b_matches)
        .filter(|(x, y)| x != y)
        .count();
    let t = transpositions as f64 / 2.0;
    let m = m as f64;
    (m / av.len() as f64 + m / bv.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler similarity in `[0, 1]` with the standard prefix scale
/// `p = 0.1` and maximum prefix length 4.
///
/// ```
/// use leapme_textsim::jaro::jaro_winkler_similarity;
/// let jw = jaro_winkler_similarity("dixon", "dicksonx");
/// assert!((jw - 0.81333).abs() < 1e-4);
/// ```
pub fn jaro_winkler_similarity(a: &str, b: &str) -> f64 {
    jaro_winkler_similarity_with(a, b, 0.1, 4)
}

/// Jaro–Winkler similarity with explicit prefix scale and max prefix length.
///
/// # Panics
///
/// Panics if `prefix_scale` is not in `[0, 0.25]` (values above 0.25 can
/// push the similarity over 1 for a max prefix of 4).
pub fn jaro_winkler_similarity_with(
    a: &str,
    b: &str,
    prefix_scale: f64,
    max_prefix: usize,
) -> f64 {
    assert!(
        (0.0..=0.25).contains(&prefix_scale),
        "prefix_scale must be in [0, 0.25]"
    );
    let j = jaro_similarity(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(max_prefix)
        .take_while(|(x, y)| x == y)
        .count();
    (j + prefix as f64 * prefix_scale * (1.0 - j)).clamp(0.0, 1.0)
}

/// Jaro–Winkler *distance*: `1 − jaro_winkler_similarity`.
pub fn jaro_winkler_distance(a: &str, b: &str) -> f64 {
    1.0 - jaro_winkler_similarity(a, b)
}

/// [`jaro_similarity`] through caller-provided scratch buffers: the
/// decoded-char, match-flag, and matched-char buffers come from `scratch`
/// instead of fresh allocations, and the second string's matched
/// characters are streamed instead of materialized. Results are bitwise
/// identical to [`jaro_similarity`].
pub fn jaro_similarity_with(a: &str, b: &str, scratch: &mut crate::DistanceScratch) -> f64 {
    let crate::DistanceScratch { ca, cb, flags, mchars, .. } = scratch;
    ca.clear();
    ca.extend(a.chars());
    cb.clear();
    cb.extend(b.chars());
    if ca.is_empty() && cb.is_empty() {
        return 1.0;
    }
    if ca.is_empty() || cb.is_empty() {
        return 0.0;
    }
    let window = (ca.len().max(cb.len()) / 2).saturating_sub(1);
    flags.clear();
    flags.resize(cb.len(), false);
    mchars.clear();
    for (i, ac) in ca.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(cb.len());
        for j in lo..hi {
            if !flags[j] && cb[j] == *ac {
                flags[j] = true;
                mchars.push(*ac);
                break;
            }
        }
    }
    let m = mchars.len();
    if m == 0 {
        return 0.0;
    }
    // Each match flags exactly one `b` character, so the streamed matched
    // sequence has length `m` and the zip never truncates.
    let transpositions = mchars
        .iter()
        .zip(cb.iter().zip(flags.iter()).filter(|(_, &used)| used).map(|(c, _)| c))
        .filter(|(x, y)| x != y)
        .count();
    let t = transpositions as f64 / 2.0;
    let m = m as f64;
    (m / ca.len() as f64 + m / cb.len() as f64 + (m - t) / m) / 3.0
}

/// [`jaro_winkler_distance`] through caller-provided scratch buffers;
/// bitwise identical results (standard `p = 0.1`, max prefix 4).
pub fn jaro_winkler_distance_with(a: &str, b: &str, scratch: &mut crate::DistanceScratch) -> f64 {
    let j = jaro_similarity_with(a, b, scratch);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    1.0 - (j + prefix as f64 * 0.1 * (1.0 - j)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        assert!((jaro_similarity("dwayne", "duane") - 0.822222).abs() < 1e-5);
        assert!((jaro_similarity("dixon", "dicksonx") - 0.766667).abs() < 1e-5);
        assert!((jaro_winkler_similarity("martha", "marhta") - 0.961111).abs() < 1e-5);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(jaro_similarity("", ""), 1.0);
        assert_eq!(jaro_similarity("", "abc"), 0.0);
        assert_eq!(jaro_winkler_distance("", ""), 0.0);
        assert_eq!(jaro_winkler_distance("x", ""), 1.0);
    }

    #[test]
    fn prefix_boost_helps_shared_prefixes() {
        let plain = jaro_similarity("resolution", "resolutions");
        let boosted = jaro_winkler_similarity("resolution", "resolutions");
        assert!(boosted > plain);
    }

    #[test]
    #[should_panic(expected = "prefix_scale")]
    fn rejects_bad_scale() {
        jaro_winkler_similarity_with("a", "b", 0.5, 4);
    }

    proptest! {
        #[test]
        fn symmetric(a in ".{0,16}", b in ".{0,16}") {
            let s1 = jaro_similarity(&a, &b);
            let s2 = jaro_similarity(&b, &a);
            prop_assert!((s1 - s2).abs() < 1e-12);
        }

        #[test]
        fn bounded(a in ".{0,16}", b in ".{0,16}") {
            let s = jaro_winkler_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn identity(a in ".{0,16}") {
            prop_assert!((jaro_similarity(&a, &a) - 1.0).abs() < 1e-12);
            prop_assert!(jaro_winkler_distance(&a, &a).abs() < 1e-12);
        }

        #[test]
        fn winkler_at_least_jaro(a in ".{0,16}", b in ".{0,16}") {
            prop_assert!(jaro_winkler_similarity(&a, &b) + 1e-12 >= jaro_similarity(&a, &b));
        }

        #[test]
        fn scratch_variant_matches_reference_bitwise(a in ".{0,16}", b in ".{0,16}") {
            let mut scratch = crate::DistanceScratch::new();
            for _ in 0..2 {
                prop_assert_eq!(
                    jaro_similarity_with(&a, &b, &mut scratch).to_bits(),
                    jaro_similarity(&a, &b).to_bits()
                );
                prop_assert_eq!(
                    jaro_winkler_distance_with(&a, &b, &mut scratch).to_bits(),
                    jaro_winkler_distance(&a, &b).to_bits()
                );
            }
        }
    }
}
