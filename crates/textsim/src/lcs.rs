//! Longest common substring (contiguous) length and distance.
//!
//! LEAPME Table I row 11 uses "the longest common substring distance
//! between the property names": the longer the shared contiguous run
//! relative to the strings, the smaller the distance.

/// Length (in characters) of the longest *contiguous* common substring.
///
/// # Examples
///
/// ```
/// use leapme_textsim::lcs::longest_common_substring_len;
/// assert_eq!(longest_common_substring_len("camera resolution", "sensor resolution"), 11);
/// assert_eq!(longest_common_substring_len("abc", "xyz"), 0);
/// ```
pub fn longest_common_substring_len(a: &str, b: &str) -> usize {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    if av.is_empty() || bv.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; bv.len() + 1];
    let mut curr = vec![0usize; bv.len() + 1];
    let mut best = 0usize;
    for ac in &av {
        for (j, bc) in bv.iter().enumerate() {
            if ac == bc {
                curr[j + 1] = prev[j] + 1;
                best = best.max(curr[j + 1]);
            } else {
                curr[j + 1] = 0;
            }
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    best
}

/// Longest common substring *distance* in `[0, 1]`:
/// `1 − lcs_len / max(|a|, |b|)`.
///
/// Identical strings have distance `0.0`; strings sharing no character run
/// have distance `1.0`. Two empty strings have distance `0.0`.
///
/// ```
/// use leapme_textsim::lcs::substring_distance;
/// assert_eq!(substring_distance("abcd", "abcd"), 0.0);
/// assert_eq!(substring_distance("ab", "cd"), 1.0);
/// ```
pub fn substring_distance(a: &str, b: &str) -> f64 {
    let (la, lb) = (a.chars().count(), b.chars().count());
    let m = la.max(lb);
    if m == 0 {
        return 0.0;
    }
    1.0 - longest_common_substring_len(a, b) as f64 / m as f64
}

/// [`substring_distance`] through caller-provided scratch buffers: the
/// decoded-char and DP-row buffers come from `scratch` instead of fresh
/// allocations, and the strings are decoded once instead of twice.
/// Results are bitwise identical to [`substring_distance`].
pub fn substring_distance_with(a: &str, b: &str, scratch: &mut crate::DistanceScratch) -> f64 {
    let crate::DistanceScratch { ca, cb, row0, row1, .. } = scratch;
    ca.clear();
    ca.extend(a.chars());
    cb.clear();
    cb.extend(b.chars());
    let m = ca.len().max(cb.len());
    if m == 0 {
        return 0.0;
    }
    let mut best = 0usize;
    if !ca.is_empty() && !cb.is_empty() {
        row0.clear();
        row0.resize(cb.len() + 1, 0);
        row1.clear();
        row1.resize(cb.len() + 1, 0);
        let (mut prev, mut curr) = (&mut *row0, &mut *row1);
        for ac in ca.iter() {
            for (j, bc) in cb.iter().enumerate() {
                if ac == bc {
                    curr[j + 1] = prev[j] + 1;
                    best = best.max(curr[j + 1]);
                } else {
                    curr[j + 1] = 0;
                }
            }
            std::mem::swap(&mut prev, &mut curr);
        }
    }
    1.0 - best as f64 / m as f64
}

/// Length of the longest common *subsequence* (not necessarily contiguous).
///
/// Provided as an auxiliary metric used by some baseline matchers.
///
/// ```
/// use leapme_textsim::lcs::longest_common_subsequence_len;
/// assert_eq!(longest_common_subsequence_len("abcde", "ace"), 3);
/// ```
pub fn longest_common_subsequence_len(a: &str, b: &str) -> usize {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    let mut prev = vec![0usize; bv.len() + 1];
    let mut curr = vec![0usize; bv.len() + 1];
    for ac in &av {
        for (j, bc) in bv.iter().enumerate() {
            curr[j + 1] = if ac == bc {
                prev[j] + 1
            } else {
                prev[j + 1].max(curr[j])
            };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[bv.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn substring_known_values() {
        assert_eq!(longest_common_substring_len("", ""), 0);
        assert_eq!(longest_common_substring_len("abc", ""), 0);
        assert_eq!(longest_common_substring_len("abab", "baba"), 3);
        assert_eq!(longest_common_substring_len("megapixels", "pixel count"), 5);
    }

    #[test]
    fn subsequence_known_values() {
        assert_eq!(longest_common_subsequence_len("abcde", "ace"), 3);
        assert_eq!(longest_common_subsequence_len("abc", "def"), 0);
        assert_eq!(longest_common_subsequence_len("", "abc"), 0);
    }

    #[test]
    fn distance_bounds() {
        assert_eq!(substring_distance("", ""), 0.0);
        assert_eq!(substring_distance("x", ""), 1.0);
    }

    proptest! {
        #[test]
        fn substring_symmetric(a in ".{0,16}", b in ".{0,16}") {
            prop_assert_eq!(
                longest_common_substring_len(&a, &b),
                longest_common_substring_len(&b, &a)
            );
        }

        #[test]
        fn substring_le_subsequence(a in "[a-d]{0,12}", b in "[a-d]{0,12}") {
            prop_assert!(
                longest_common_substring_len(&a, &b)
                    <= longest_common_subsequence_len(&a, &b)
            );
        }

        #[test]
        fn subsequence_le_min_len(a in ".{0,16}", b in ".{0,16}") {
            let l = longest_common_subsequence_len(&a, &b);
            prop_assert!(l <= a.chars().count().min(b.chars().count()));
        }

        #[test]
        fn distance_in_unit_interval(a in ".{0,16}", b in ".{0,16}") {
            let d = substring_distance(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
        }

        #[test]
        fn self_substring_is_full(a in ".{1,16}") {
            prop_assert_eq!(longest_common_substring_len(&a, &a), a.chars().count());
            prop_assert!(substring_distance(&a, &a).abs() < 1e-12);
        }

        #[test]
        fn scratch_variant_matches_reference_bitwise(a in ".{0,16}", b in ".{0,16}") {
            let mut scratch = crate::DistanceScratch::new();
            for _ in 0..2 {
                prop_assert_eq!(
                    substring_distance_with(&a, &b, &mut scratch).to_bits(),
                    substring_distance(&a, &b).to_bits()
                );
            }
        }
    }
}
