//! Levenshtein (edit) distance.
//!
//! The classic dynamic-programming edit distance counting insertions,
//! deletions and substitutions, implemented with a two-row rolling buffer
//! (O(min(|a|,|b|)) memory) over Unicode scalar values.

use crate::normalize_by_max_len;

/// Levenshtein distance between `a` and `b` over Unicode scalar values.
///
/// # Examples
///
/// ```
/// use leapme_textsim::levenshtein::distance;
/// assert_eq!(distance("kitten", "sitting"), 3);
/// assert_eq!(distance("", "abc"), 3);
/// assert_eq!(distance("same", "same"), 0);
/// ```
pub fn distance(a: &str, b: &str) -> usize {
    let (short, long): (Vec<char>, Vec<char>) = {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        if av.len() <= bv.len() {
            (av, bv)
        } else {
            (bv, av)
        }
    };
    if short.is_empty() {
        return long.len();
    }

    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr: Vec<usize> = vec![0; short.len() + 1];

    for (i, lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Levenshtein distance normalized by the longer string's character count,
/// in `[0, 1]`. Two empty strings have distance `0.0`.
///
/// ```
/// use leapme_textsim::levenshtein::normalized_distance;
/// assert_eq!(normalized_distance("abcd", "abce"), 0.25);
/// ```
pub fn normalized_distance(a: &str, b: &str) -> f64 {
    normalize_by_max_len(distance(a, b), a.chars().count(), b.chars().count())
}

/// Levenshtein similarity: `1 − normalized_distance`.
pub fn normalized_similarity(a: &str, b: &str) -> f64 {
    1.0 - normalized_distance(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        assert_eq!(distance("kitten", "sitting"), 3);
        assert_eq!(distance("flaw", "lawn"), 2);
        assert_eq!(distance("gumbo", "gambol"), 2);
        assert_eq!(distance("", ""), 0);
        assert_eq!(distance("a", ""), 1);
        assert_eq!(distance("", "a"), 1);
    }

    #[test]
    fn unicode_counts_scalars_not_bytes() {
        // 'é' is 2 bytes but one scalar; one substitution.
        assert_eq!(distance("café", "cafe"), 1);
        assert_eq!(distance("日本語", "日本"), 1);
    }

    #[test]
    fn transposition_costs_two() {
        // Plain Levenshtein has no transposition operation.
        assert_eq!(distance("ab", "ba"), 2);
    }

    #[test]
    fn normalized_bounds() {
        assert_eq!(normalized_distance("", ""), 0.0);
        assert_eq!(normalized_distance("abc", "abc"), 0.0);
        assert_eq!(normalized_distance("abc", "xyz"), 1.0);
        assert_eq!(normalized_similarity("abc", "xyz"), 0.0);
    }

    proptest! {
        #[test]
        fn symmetric(a in ".{0,24}", b in ".{0,24}") {
            prop_assert_eq!(distance(&a, &b), distance(&b, &a));
        }

        #[test]
        fn identity(a in ".{0,24}") {
            prop_assert_eq!(distance(&a, &a), 0);
        }

        #[test]
        fn triangle_inequality(a in "[a-e]{0,10}", b in "[a-e]{0,10}", c in "[a-e]{0,10}") {
            prop_assert!(distance(&a, &c) <= distance(&a, &b) + distance(&b, &c));
        }

        #[test]
        fn bounded_by_longer_len(a in ".{0,24}", b in ".{0,24}") {
            let d = distance(&a, &b);
            let (la, lb) = (a.chars().count(), b.chars().count());
            prop_assert!(d <= la.max(lb));
            // And at least the length difference.
            prop_assert!(d >= la.abs_diff(lb));
        }

        #[test]
        fn normalized_in_unit_interval(a in ".{0,24}", b in ".{0,24}") {
            let d = normalized_distance(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
        }
    }
}
