//! Levenshtein (edit) distance.
//!
//! The classic dynamic-programming edit distance counting insertions,
//! deletions and substitutions, implemented with a two-row rolling buffer
//! (O(min(|a|,|b|)) memory) over Unicode scalar values.

use crate::normalize_by_max_len;
use crate::scratch::{decode_and_trim, DistanceScratch};

/// Levenshtein distance between `a` and `b` over Unicode scalar values.
///
/// # Examples
///
/// ```
/// use leapme_textsim::levenshtein::distance;
/// assert_eq!(distance("kitten", "sitting"), 3);
/// assert_eq!(distance("", "abc"), 3);
/// assert_eq!(distance("same", "same"), 0);
/// ```
pub fn distance(a: &str, b: &str) -> usize {
    distance_with(a, b, &mut DistanceScratch::new())
}

/// [`distance`] through caller-provided scratch buffers.
///
/// The production kernel is the bit-parallel [`crate::myers`] word
/// recurrence (~64 DP rows per word operation); this wrapper exists so
/// every Levenshtein call site keeps one entry point. The rolling-row DP
/// this module used to run survives as [`dp_distance_with`] — the
/// fallback the banded OSA/Damerau kernels dispatch to and the oracle
/// the equivalence suites pin the bit-parallel kernel against.
pub fn distance_with(a: &str, b: &str, scratch: &mut DistanceScratch) -> usize {
    crate::myers::distance_with(a, b, scratch)
}

/// The classic two-row rolling DP over trimmed inputs — the kept
/// reference kernel. Exactly equal to [`distance_with`] on every input
/// (proven exhaustively and by property tests); production code uses the
/// bit-parallel path, tests and fallbacks use this one.
pub fn dp_distance_with(a: &str, b: &str, scratch: &mut DistanceScratch) -> usize {
    if a == b {
        return 0;
    }
    let DistanceScratch {
        ca,
        cb,
        row0: prev,
        row1: curr,
        ..
    } = scratch;
    let (av, bv) = decode_and_trim(ca, cb, a, b);
    let (short, long) = if av.len() <= bv.len() { (av, bv) } else { (bv, av) };
    if short.is_empty() {
        return long.len();
    }

    prev.clear();
    prev.extend(0..=short.len());
    curr.clear();
    curr.resize(short.len() + 1, 0);

    for (i, lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(prev, curr);
    }
    prev[short.len()]
}

/// Levenshtein distance normalized by the longer string's character count,
/// in `[0, 1]`. Two empty strings have distance `0.0`.
///
/// ```
/// use leapme_textsim::levenshtein::normalized_distance;
/// assert_eq!(normalized_distance("abcd", "abce"), 0.25);
/// ```
pub fn normalized_distance(a: &str, b: &str) -> f64 {
    normalize_by_max_len(distance(a, b), a.chars().count(), b.chars().count())
}

/// [`normalized_distance`] through caller-provided scratch buffers.
pub fn normalized_distance_with(a: &str, b: &str, scratch: &mut DistanceScratch) -> f64 {
    normalize_by_max_len(
        distance_with(a, b, scratch),
        a.chars().count(),
        b.chars().count(),
    )
}

/// Levenshtein similarity: `1 − normalized_distance`.
pub fn normalized_similarity(a: &str, b: &str) -> f64 {
    1.0 - normalized_distance(a, b)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The original untrimmed two-row DP, kept as the oracle for the
    /// equal-string / affix-trimming fast path.
    fn reference(a: &str, b: &str) -> usize {
        let (short, long): (Vec<char>, Vec<char>) = {
            let av: Vec<char> = a.chars().collect();
            let bv: Vec<char> = b.chars().collect();
            if av.len() <= bv.len() {
                (av, bv)
            } else {
                (bv, av)
            }
        };
        if short.is_empty() {
            return long.len();
        }
        let mut prev: Vec<usize> = (0..=short.len()).collect();
        let mut curr: Vec<usize> = vec![0; short.len() + 1];
        for (i, lc) in long.iter().enumerate() {
            curr[0] = i + 1;
            for (j, sc) in short.iter().enumerate() {
                let cost = usize::from(lc != sc);
                curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[short.len()]
    }

    /// Every string over {a,b,c} up to the given length.
    pub(crate) fn small_strings(max_len: usize) -> Vec<String> {
        let mut all = vec![String::new()];
        let mut frontier = vec![String::new()];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for s in &frontier {
                for c in ['a', 'b', 'c'] {
                    let mut t = s.clone();
                    t.push(c);
                    next.push(t);
                }
            }
            all.extend(next.iter().cloned());
            frontier = next;
        }
        all
    }

    #[test]
    fn fast_path_matches_untrimmed_dp_exhaustively() {
        let strings = small_strings(4);
        let mut scratch = crate::scratch::DistanceScratch::new();
        for a in &strings {
            for b in &strings {
                assert_eq!(
                    distance_with(a, b, &mut scratch),
                    reference(a, b),
                    "levenshtein({a:?},{b:?})"
                );
                assert_eq!(
                    dp_distance_with(a, b, &mut scratch),
                    reference(a, b),
                    "dp_levenshtein({a:?},{b:?})"
                );
            }
        }
    }

    #[test]
    fn known_values() {
        assert_eq!(distance("kitten", "sitting"), 3);
        assert_eq!(distance("flaw", "lawn"), 2);
        assert_eq!(distance("gumbo", "gambol"), 2);
        assert_eq!(distance("", ""), 0);
        assert_eq!(distance("a", ""), 1);
        assert_eq!(distance("", "a"), 1);
    }

    #[test]
    fn unicode_counts_scalars_not_bytes() {
        // 'é' is 2 bytes but one scalar; one substitution.
        assert_eq!(distance("café", "cafe"), 1);
        assert_eq!(distance("日本語", "日本"), 1);
    }

    #[test]
    fn transposition_costs_two() {
        // Plain Levenshtein has no transposition operation.
        assert_eq!(distance("ab", "ba"), 2);
    }

    #[test]
    fn normalized_bounds() {
        assert_eq!(normalized_distance("", ""), 0.0);
        assert_eq!(normalized_distance("abc", "abc"), 0.0);
        assert_eq!(normalized_distance("abc", "xyz"), 1.0);
        assert_eq!(normalized_similarity("abc", "xyz"), 0.0);
    }

    proptest! {
        #[test]
        fn symmetric(a in ".{0,24}", b in ".{0,24}") {
            prop_assert_eq!(distance(&a, &b), distance(&b, &a));
        }

        #[test]
        fn identity(a in ".{0,24}") {
            prop_assert_eq!(distance(&a, &a), 0);
        }

        #[test]
        fn triangle_inequality(a in "[a-e]{0,10}", b in "[a-e]{0,10}", c in "[a-e]{0,10}") {
            prop_assert!(distance(&a, &c) <= distance(&a, &b) + distance(&b, &c));
        }

        #[test]
        fn bounded_by_longer_len(a in ".{0,24}", b in ".{0,24}") {
            let d = distance(&a, &b);
            let (la, lb) = (a.chars().count(), b.chars().count());
            prop_assert!(d <= la.max(lb));
            // And at least the length difference.
            prop_assert!(d >= la.abs_diff(lb));
        }

        #[test]
        fn normalized_in_unit_interval(a in ".{0,24}", b in ".{0,24}") {
            let d = normalized_distance(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
        }

        #[test]
        fn fast_path_matches_untrimmed_dp(a in ".{0,24}", b in ".{0,24}") {
            let mut scratch = crate::scratch::DistanceScratch::new();
            prop_assert_eq!(distance_with(&a, &b, &mut scratch), reference(&a, &b));
        }

        #[test]
        fn bit_parallel_matches_rolling_dp(a in ".{0,24}", b in ".{0,24}") {
            let mut scratch = crate::scratch::DistanceScratch::new();
            let fast = distance_with(&a, &b, &mut scratch);
            prop_assert_eq!(fast, dp_distance_with(&a, &b, &mut scratch));
        }

        #[test]
        fn scratch_reuse_is_stateless(a in "[a-d]{0,12}", b in "[a-d]{0,12}", c in "[a-d]{0,12}") {
            // A dirty scratch from unrelated inputs must not change results.
            let mut scratch = crate::scratch::DistanceScratch::new();
            distance_with(&c, &a, &mut scratch);
            prop_assert_eq!(distance_with(&a, &b, &mut scratch), distance(&a, &b));
        }
    }
}
