//! String similarity and distance substrate for LEAPME.
//!
//! The LEAPME paper (Table I, rows 8–15) feeds eight string-distance
//! features between property names to its classifier:
//!
//! 1. optimal string alignment distance ([`osa::distance`])
//! 2. Levenshtein distance ([`levenshtein::distance`])
//! 3. full Damerau–Levenshtein distance ([`damerau::distance`])
//! 4. longest common substring distance ([`lcs::substring_distance`])
//! 5. 3-gram distance ([`ngram::distance`])
//! 6. cosine distance between 3-gram profiles ([`qgram::cosine_distance`])
//! 7. Jaccard distance between 3-gram profiles ([`qgram::jaccard_distance`])
//! 8. Jaro–Winkler distance ([`jaro::jaro_winkler_distance`])
//!
//! All distances operate on Unicode scalar values (`char`), not bytes, and
//! every module offers a `normalized` variant mapping into `[0, 1]` so the
//! features are comparable regardless of string length.
//!
//! # Example
//!
//! ```
//! use leapme_textsim::{levenshtein, jaro, StringDistances};
//!
//! assert_eq!(levenshtein::distance("megapixels", "megapixel"), 1);
//! assert!(jaro::jaro_winkler_similarity("resolution", "resolutions") > 0.9);
//!
//! // All eight paper features at once:
//! let feats = StringDistances::compute("shutter speed", "shutter-speed");
//! assert!(feats.levenshtein_norm < 0.2);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod damerau;
pub mod jaro;
pub mod lcs;
pub mod levenshtein;
pub mod myers;
pub mod ngram;
pub mod osa;
pub mod qgram;
pub mod scratch;
pub mod token;

pub use scratch::DistanceScratch;

/// The eight normalized string-distance features of LEAPME Table I
/// (rows 8–15), computed between two property names.
///
/// Every field is a *distance* in `[0, 1]`: `0.0` means the strings are
/// identical under that metric, `1.0` means maximally dissimilar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StringDistances {
    /// Row 8: optimal string alignment distance, normalized by the longer
    /// string length.
    pub osa_norm: f64,
    /// Row 9: Levenshtein distance, normalized by the longer string length.
    pub levenshtein_norm: f64,
    /// Row 10: full (unrestricted) Damerau–Levenshtein distance, normalized
    /// by the longer string length.
    pub damerau_norm: f64,
    /// Row 11: longest common substring distance, normalized.
    pub lcs_norm: f64,
    /// Row 12: 3-gram distance (Kondrak-style positional n-gram distance),
    /// normalized.
    pub trigram_norm: f64,
    /// Row 13: cosine distance between the 3-gram frequency profiles.
    pub trigram_cosine: f64,
    /// Row 14: Jaccard distance between the 3-gram profile sets.
    pub trigram_jaccard: f64,
    /// Row 15: Jaro–Winkler distance (`1 −` Jaro–Winkler similarity).
    pub jaro_winkler: f64,
}

impl StringDistances {
    /// Number of scalar features carried by [`StringDistances`]; matches the
    /// eight string-distance rows of the paper's Table I.
    pub const LEN: usize = 8;

    /// Compute all eight distances between `a` and `b`.
    pub fn compute(a: &str, b: &str) -> Self {
        Self::compute_with(a, b, &mut DistanceScratch::new())
    }

    /// [`Self::compute`] through caller-provided scratch buffers: all
    /// eight kernels reuse `scratch`'s decoded-char, DP-row, gram-profile,
    /// and match buffers instead of allocating fresh ones per call, and
    /// the two 3-gram profile distances (rows 13–14) are derived from one
    /// shared pair of profiles instead of building them twice. The three
    /// edit distances share one bit-parallel [`myers`] Levenshtein pass:
    /// its result is row 9 directly and the diagonal-band bound for the
    /// banded OSA (row 8) and Damerau (row 10) kernels. Results are
    /// bitwise identical to [`Self::compute`]'s reference kernels
    /// (pinned per module by property tests).
    pub fn compute_with(a: &str, b: &str, scratch: &mut DistanceScratch) -> Self {
        let (trigram_cosine, trigram_jaccard) = qgram::trigram_distances_with(a, b, scratch);
        let lev = myers::distance_with(a, b, scratch);
        let (len_a, len_b) = (a.chars().count(), b.chars().count());
        StringDistances {
            osa_norm: normalize_by_max_len(
                osa::distance_bounded_with(a, b, lev, scratch),
                len_a,
                len_b,
            ),
            levenshtein_norm: normalize_by_max_len(lev, len_a, len_b),
            damerau_norm: normalize_by_max_len(
                damerau::distance_bounded_with(a, b, lev, scratch),
                len_a,
                len_b,
            ),
            lcs_norm: lcs::substring_distance_with(a, b, scratch),
            trigram_norm: ngram::normalized_distance_with(a, b, 3, scratch),
            trigram_cosine,
            trigram_jaccard,
            jaro_winkler: jaro::jaro_winkler_distance_with(a, b, scratch),
        }
    }

    /// The features as a fixed-order slice, in Table I row order (8–15).
    pub fn as_array(&self) -> [f64; Self::LEN] {
        [
            self.osa_norm,
            self.levenshtein_norm,
            self.damerau_norm,
            self.lcs_norm,
            self.trigram_norm,
            self.trigram_cosine,
            self.trigram_jaccard,
            self.jaro_winkler,
        ]
    }

    /// Human-readable names for the eight features, aligned with
    /// [`Self::as_array`].
    pub fn feature_names() -> [&'static str; Self::LEN] {
        [
            "osa_norm",
            "levenshtein_norm",
            "damerau_norm",
            "lcs_norm",
            "trigram_norm",
            "trigram_cosine",
            "trigram_jaccard",
            "jaro_winkler",
        ]
    }
}

/// Normalize an absolute edit-style distance by the longer input length.
///
/// Returns `0.0` for two empty strings. The result is in `[0, 1]` for any
/// distance bounded by `max(|a|, |b|)` (true for every edit distance in
/// this crate).
pub(crate) fn normalize_by_max_len(dist: usize, a_len: usize, b_len: usize) -> f64 {
    let m = a_len.max(b_len);
    if m == 0 {
        0.0
    } else {
        dist as f64 / m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_distances_identical_strings_are_zero() {
        let d = StringDistances::compute("resolution", "resolution");
        for (name, v) in StringDistances::feature_names().iter().zip(d.as_array()) {
            assert!(v.abs() < 1e-12, "{name} should be 0 for equal strings, got {v}");
        }
    }

    #[test]
    fn string_distances_disjoint_strings_are_near_one() {
        let d = StringDistances::compute("aaaa", "zzzz");
        assert!(d.levenshtein_norm > 0.99);
        assert!(d.trigram_jaccard > 0.99);
        assert!(d.trigram_cosine > 0.99);
    }

    #[test]
    fn as_array_order_matches_names() {
        let d = StringDistances::compute("abc", "abd");
        let arr = d.as_array();
        assert_eq!(arr[1], d.levenshtein_norm);
        assert_eq!(arr[7], d.jaro_winkler);
        assert_eq!(StringDistances::feature_names()[1], "levenshtein_norm");
    }

    #[test]
    fn all_features_bounded() {
        for (a, b) in [
            ("", ""),
            ("", "x"),
            ("camera resolution", "megapixels"),
            ("ISO", "iso sensitivity"),
            ("ünïcode", "unicode"),
        ] {
            let d = StringDistances::compute(a, b);
            for (name, v) in StringDistances::feature_names().iter().zip(d.as_array()) {
                assert!(
                    (0.0..=1.0).contains(&v),
                    "{name}({a:?},{b:?}) = {v} out of bounds"
                );
            }
        }
    }

    #[test]
    fn len_constant_matches_array() {
        let d = StringDistances::compute("a", "b");
        assert_eq!(d.as_array().len(), StringDistances::LEN);
        assert_eq!(StringDistances::feature_names().len(), StringDistances::LEN);
    }

    proptest::proptest! {
        /// The fused/scratch-backed eight-distance block must match the
        /// plain reference kernels bit for bit — this is the contract
        /// that lets the featurize hot path swap implementations without
        /// perturbing any downstream feature vector.
        #[test]
        fn compute_with_matches_reference_kernels_bitwise(a in ".{0,20}", b in ".{0,20}") {
            let mut scratch = DistanceScratch::new();
            for _ in 0..2 {
                let fast = StringDistances::compute_with(&a, &b, &mut scratch).as_array();
                let reference = [
                    osa::normalized_distance(&a, &b),
                    levenshtein::normalized_distance(&a, &b),
                    damerau::normalized_distance(&a, &b),
                    lcs::substring_distance(&a, &b),
                    ngram::normalized_distance(&a, &b, 3),
                    qgram::cosine_distance(&a, &b, 3),
                    qgram::jaccard_distance(&a, &b, 3),
                    jaro::jaro_winkler_distance(&a, &b),
                ];
                for (i, (f, r)) in fast.iter().zip(reference).enumerate() {
                    proptest::prop_assert_eq!(
                        f.to_bits(),
                        r.to_bits(),
                        "feature {} ({}) diverged for ({:?}, {:?})",
                        i,
                        StringDistances::feature_names()[i],
                        &a,
                        &b
                    );
                }
            }
        }
    }
}
