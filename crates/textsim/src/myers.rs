//! Myers' bit-parallel Levenshtein kernel.
//!
//! Encodes one column of the edit-distance DP as two machine words (the
//! positive and negative vertical delta vectors) and advances a whole
//! column of up to 64 pattern rows per text character with a handful of
//! word operations — ~64× fewer operations than the rolling-row DP for
//! short names. Patterns longer than 64 characters fall back to the
//! multi-block variant, which chains the same word recurrence across
//! ⌈n/64⌉ blocks with explicit horizontal-delta carries.
//!
//! The recurrence is Hyyrö's formulation of Myers' algorithm (Myers,
//! JACM 1999; Hyyrö 2003); the multi-block carry logic follows the
//! standard `advance_block` shape. Both paths are proven equivalent to
//! the classic DP by exhaustive small-alphabet enumeration and property
//! tests in this module and in [`crate::levenshtein`].

use crate::normalize_by_max_len;
use crate::scratch::{decode_and_trim, DistanceScratch};

/// Levenshtein distance between `a` and `b` via the bit-parallel kernel.
///
/// Exactly equal to [`crate::levenshtein::distance`] on every input.
///
/// # Examples
///
/// ```
/// use leapme_textsim::myers::distance;
/// assert_eq!(distance("kitten", "sitting"), 3);
/// assert_eq!(distance("", "abc"), 3);
/// ```
pub fn distance(a: &str, b: &str) -> usize {
    distance_with(a, b, &mut DistanceScratch::new())
}

/// [`distance`] through caller-provided scratch buffers: equal strings
/// short-circuit to `0`, the shared prefix and suffix are trimmed off,
/// the shorter side becomes the bit-vector pattern, and the equality
/// masks live in `scratch`, so a warm steady-state call performs no heap
/// allocations beyond first-seen characters in the mask maps.
pub fn distance_with(a: &str, b: &str, scratch: &mut DistanceScratch) -> usize {
    if a == b {
        return 0;
    }
    let DistanceScratch {
        ca,
        cb,
        peq,
        peq_idx,
        peq_masks,
        pv,
        mv,
        ..
    } = scratch;
    let (av, bv) = decode_and_trim(ca, cb, a, b);
    let (pat, text) = if av.len() <= bv.len() { (av, bv) } else { (bv, av) };
    if pat.is_empty() {
        return text.len();
    }
    if pat.len() <= 64 {
        single_block(pat, text, peq)
    } else {
        multi_block(pat, text, peq_idx, peq_masks, pv, mv)
    }
}

/// One-word kernel for patterns of ≤ 64 characters.
fn single_block(pat: &[char], text: &[char], peq: &mut std::collections::HashMap<char, u64>) -> usize {
    let n = pat.len();
    debug_assert!((1..=64).contains(&n));
    peq.clear();
    for (i, &c) in pat.iter().enumerate() {
        *peq.entry(c).or_insert(0) |= 1u64 << i;
    }
    let hibit = 1u64 << (n - 1);
    let mut pv: u64 = !0;
    let mut mv: u64 = 0;
    let mut score = n;
    for c in text {
        let eq = peq.get(c).copied().unwrap_or(0);
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        if ph & hibit != 0 {
            score += 1;
        } else if mh & hibit != 0 {
            score -= 1;
        }
        // The implicit row-0 boundary always steps +1 (D[0][j] = j).
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }
    score
}

/// Advance one 64-row block by one text character.
///
/// `hin` is the horizontal delta entering the block's top row (−1, 0, or
/// +1); the returned delta leaves through `hout_bit` (the block's last
/// *valid* row — bit 63 for full blocks, `r − 1` for a partial final
/// block). Bits above `hout_bit` may hold garbage: the word recurrence
/// only ever propagates information upward (adds carry up, shifts move
/// up), so the low bits stay exact.
#[inline]
fn advance_block(pv: &mut u64, mv: &mut u64, eq: u64, hin: i32, hout_bit: u32) -> i32 {
    let hin_neg = u64::from(hin < 0);
    let xv = eq | *mv;
    let eq2 = eq | hin_neg;
    let xh = (((eq2 & *pv).wrapping_add(*pv)) ^ *pv) | eq2;
    let mut ph = *mv | !(xh | *pv);
    let mut mh = *pv & xh;
    let hout = ((ph >> hout_bit) & 1) as i32 - ((mh >> hout_bit) & 1) as i32;
    ph <<= 1;
    mh <<= 1;
    mh |= hin_neg;
    ph |= u64::from(hin > 0);
    *pv = mh | !(xv | ph);
    *mv = ph & xv;
    hout
}

/// Multi-word kernel for patterns longer than 64 characters.
fn multi_block(
    pat: &[char],
    text: &[char],
    peq_idx: &mut std::collections::HashMap<char, usize>,
    peq_masks: &mut Vec<u64>,
    pv: &mut Vec<u64>,
    mv: &mut Vec<u64>,
) -> usize {
    let n = pat.len();
    let blocks = n.div_ceil(64);
    // Build per-character equality masks, one u64 per block, stored
    // contiguously per character at `peq_idx[c] .. peq_idx[c] + blocks`.
    peq_idx.clear();
    peq_masks.clear();
    for (i, &c) in pat.iter().enumerate() {
        let base = *peq_idx.entry(c).or_insert_with(|| {
            let base = peq_masks.len();
            peq_masks.resize(base + blocks, 0);
            base
        });
        peq_masks[base + i / 64] |= 1u64 << (i % 64);
    }

    pv.clear();
    pv.resize(blocks, !0u64);
    mv.clear();
    mv.resize(blocks, 0u64);
    // Last valid row of the final block.
    let last_bit = ((n - 1) % 64) as u32;
    let mut score = n;
    for c in text {
        let base = peq_idx.get(c).copied();
        let mut hin = 1i32;
        for b in 0..blocks {
            let eq = base.map_or(0, |base| peq_masks[base + b]);
            let hout_bit = if b + 1 == blocks { last_bit } else { 63 };
            hin = advance_block(&mut pv[b], &mut mv[b], eq, hin, hout_bit);
        }
        score = score.wrapping_add_signed(hin as isize);
    }
    score
}

/// Myers distance normalized by the longer string's character count, in
/// `[0, 1]`; equal to [`crate::levenshtein::normalized_distance`].
pub fn normalized_distance(a: &str, b: &str) -> f64 {
    normalize_by_max_len(distance(a, b), a.chars().count(), b.chars().count())
}

/// [`normalized_distance`] through caller-provided scratch buffers.
pub fn normalized_distance_with(a: &str, b: &str, scratch: &mut DistanceScratch) -> f64 {
    normalize_by_max_len(
        distance_with(a, b, scratch),
        a.chars().count(),
        b.chars().count(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The classic untrimmed two-row DP — the equivalence oracle.
    fn reference(a: &str, b: &str) -> usize {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        if av.is_empty() {
            return bv.len();
        }
        let mut prev: Vec<usize> = (0..=av.len()).collect();
        let mut curr: Vec<usize> = vec![0; av.len() + 1];
        for (i, bc) in bv.iter().enumerate() {
            curr[0] = i + 1;
            for (j, ac) in av.iter().enumerate() {
                let cost = usize::from(bc != ac);
                curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[av.len()]
    }

    #[test]
    fn matches_reference_dp_exhaustively() {
        let strings = crate::levenshtein::tests::small_strings(4);
        let mut scratch = DistanceScratch::new();
        for a in &strings {
            for b in &strings {
                assert_eq!(
                    distance_with(a, b, &mut scratch),
                    reference(a, b),
                    "myers({a:?},{b:?})"
                );
            }
        }
    }

    #[test]
    fn known_values() {
        assert_eq!(distance("kitten", "sitting"), 3);
        assert_eq!(distance("flaw", "lawn"), 2);
        assert_eq!(distance("", ""), 0);
        assert_eq!(distance("a", ""), 1);
        assert_eq!(distance("ab", "ba"), 2);
        assert_eq!(distance("café", "cafe"), 1);
    }

    #[test]
    fn multi_block_boundary_widths() {
        // Patterns straddling the 64-char block boundary, including the
        // exact-64, 65, 128, and 129 widths where the partial-final-block
        // bit selection matters. The pattern is always the shorter side,
        // so the text is padded one longer.
        let mut scratch = DistanceScratch::new();
        for n in [1usize, 63, 64, 65, 127, 128, 129, 200] {
            let a: String = (0..n).map(|i| char::from(b'a' + (i % 7) as u8)).collect();
            let b: String = (0..n + 1)
                .map(|i| char::from(b'a' + (i % 5) as u8))
                .collect();
            assert_eq!(
                distance_with(&a, &b, &mut scratch),
                reference(&a, &b),
                "width {n}"
            );
            // Force the multi-block path even when trimming would shorten:
            let c: String = a.chars().rev().collect();
            assert_eq!(
                distance_with(&a, &c, &mut scratch),
                reference(&a, &c),
                "reversed width {n}"
            );
        }
    }

    proptest! {
        #[test]
        fn matches_reference_dp(a in ".{0,24}", b in ".{0,24}") {
            let mut scratch = DistanceScratch::new();
            prop_assert_eq!(distance_with(&a, &b, &mut scratch), reference(&a, &b));
        }

        #[test]
        fn matches_reference_dp_long(a in "[a-f]{0,150}", b in "[a-f]{0,150}") {
            // Long enough to exercise the multi-block kernel after affix
            // trimming on a small alphabet (many accidental matches).
            let mut scratch = DistanceScratch::new();
            prop_assert_eq!(distance_with(&a, &b, &mut scratch), reference(&a, &b));
        }

        #[test]
        fn scratch_reuse_is_stateless(a in "[a-d]{0,80}", b in "[a-d]{0,80}", c in "[a-d]{0,80}") {
            let mut scratch = DistanceScratch::new();
            distance_with(&c, &a, &mut scratch);
            prop_assert_eq!(distance_with(&a, &b, &mut scratch), distance(&a, &b));
        }
    }
}
