//! Positional n-gram distance (Kondrak, SPIRE 2005).
//!
//! LEAPME Table I row 12 uses "the 3-gram distance between the property
//! names". We implement Kondrak's N-GRAM distance: an edit-distance-style
//! dynamic program whose substitution cost is the fraction of mismatched
//! characters between the two aligned n-grams, computed over strings padded
//! with `n − 1` copies of a sentinel prefix character.

use crate::normalize_by_max_len;

const PAD: char = '\u{0}';

/// Kondrak n-gram distance between `a` and `b` (un-normalized; bounded by
/// `max(|a|, |b|)`).
///
/// For `n == 1` this degenerates to the Levenshtein distance.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use leapme_textsim::ngram::distance;
/// assert_eq!(distance("abc", "abc", 3), 0.0);
/// assert!(distance("resolution", "resolutions", 3) < 2.0);
/// ```
pub fn distance(a: &str, b: &str, n: usize) -> f64 {
    assert!(n > 0, "n-gram size must be positive");
    let av: Vec<char> = std::iter::repeat_n(PAD, n - 1).chain(a.chars()).collect();
    let bv: Vec<char> = std::iter::repeat_n(PAD, n - 1).chain(b.chars()).collect();
    let la = av.len() - (n - 1);
    let lb = bv.len() - (n - 1);
    if la == 0 {
        return lb as f64;
    }
    if lb == 0 {
        return la as f64;
    }

    // Cost of aligning the n-grams starting at av[i], bv[j]: fraction of
    // mismatching characters.
    let gram_cost = |i: usize, j: usize| -> f64 {
        let mut mismatch = 0usize;
        for k in 0..n {
            if av[i + k] != bv[j + k] {
                mismatch += 1;
            }
        }
        mismatch as f64 / n as f64
    };

    let mut prev: Vec<f64> = (0..=lb).map(|j| j as f64).collect();
    let mut curr: Vec<f64> = vec![0.0; lb + 1];
    for i in 1..=la {
        curr[0] = i as f64;
        for j in 1..=lb {
            let sub = prev[j - 1] + gram_cost(i - 1, j - 1);
            let del = prev[j] + 1.0;
            let ins = curr[j - 1] + 1.0;
            curr[j] = sub.min(del).min(ins);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[lb]
}

/// N-gram distance normalized by the longer string's character count, in
/// `[0, 1]`.
pub fn normalized_distance(a: &str, b: &str, n: usize) -> f64 {
    let d = distance(a, b, n);
    let m = a.chars().count().max(b.chars().count());
    if m == 0 {
        0.0
    } else {
        (d / m as f64).clamp(0.0, 1.0)
    }
}

/// [`distance`] through caller-provided scratch buffers: the padded char
/// buffers and the fractional-cost DP rows come from `scratch` instead of
/// fresh allocations. Results are bitwise identical to [`distance`].
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn distance_with(a: &str, b: &str, n: usize, scratch: &mut crate::DistanceScratch) -> f64 {
    assert!(n > 0, "n-gram size must be positive");
    let crate::DistanceScratch { ca, cb, frow0, frow1, .. } = scratch;
    ca.clear();
    ca.extend(std::iter::repeat_n(PAD, n - 1).chain(a.chars()));
    cb.clear();
    cb.extend(std::iter::repeat_n(PAD, n - 1).chain(b.chars()));
    let la = ca.len() - (n - 1);
    let lb = cb.len() - (n - 1);
    if la == 0 {
        return lb as f64;
    }
    if lb == 0 {
        return la as f64;
    }

    let (av, bv) = (&ca[..], &cb[..]);
    let gram_cost = |i: usize, j: usize| -> f64 {
        let mut mismatch = 0usize;
        for k in 0..n {
            if av[i + k] != bv[j + k] {
                mismatch += 1;
            }
        }
        mismatch as f64 / n as f64
    };

    frow0.clear();
    frow0.extend((0..=lb).map(|j| j as f64));
    frow1.clear();
    frow1.resize(lb + 1, 0.0);
    let (mut prev, mut curr) = (&mut *frow0, &mut *frow1);
    for i in 1..=la {
        curr[0] = i as f64;
        for j in 1..=lb {
            let sub = prev[j - 1] + gram_cost(i - 1, j - 1);
            let del = prev[j] + 1.0;
            let ins = curr[j - 1] + 1.0;
            curr[j] = sub.min(del).min(ins);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[lb]
}

/// [`normalized_distance`] through caller-provided scratch buffers;
/// bitwise identical results.
pub fn normalized_distance_with(
    a: &str,
    b: &str,
    n: usize,
    scratch: &mut crate::DistanceScratch,
) -> f64 {
    let d = distance_with(a, b, n, scratch);
    // The padded buffers hold `n − 1` sentinels plus the decoded chars,
    // so the character counts fall out without re-decoding the strings.
    let m = (scratch.ca.len() - (n - 1)).max(scratch.cb.len() - (n - 1));
    if m == 0 {
        0.0
    } else {
        (d / m as f64).clamp(0.0, 1.0)
    }
}

/// Convenience wrapper: the 3-gram distance used by LEAPME, normalized.
pub fn trigram_distance(a: &str, b: &str) -> f64 {
    normalized_distance(a, b, 3)
}

/// Re-export style helper matching the crate-wide naming: absolute distance
/// rounded into edit-distance units (useful in tests comparing against
/// Levenshtein for `n == 1`).
pub fn unigram_equals_levenshtein(a: &str, b: &str) -> bool {
    let d = distance(a, b, 1);
    (d - crate::levenshtein::distance(a, b) as f64).abs() < 1e-9 || {
        let _ = normalize_by_max_len(0, 1, 1); // keep helper linked
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_for_equal() {
        assert_eq!(distance("megapixels", "megapixels", 3), 0.0);
        assert_eq!(trigram_distance("", ""), 0.0);
    }

    #[test]
    fn empty_vs_nonempty() {
        assert_eq!(distance("", "abc", 3), 3.0);
        assert_eq!(distance("abc", "", 3), 3.0);
    }

    #[test]
    fn close_strings_have_small_distance() {
        let near = trigram_distance("shutter speed", "shutter-speed");
        let far = trigram_distance("shutter speed", "white balance");
        assert!(near < far, "near={near} far={far}");
    }

    #[test]
    fn unigram_degenerates_to_levenshtein() {
        for (a, b) in [("kitten", "sitting"), ("abc", "abd"), ("", "xy")] {
            assert!(unigram_equals_levenshtein(a, b), "failed for ({a}, {b})");
        }
    }

    proptest! {
        #[test]
        fn symmetric(a in "[a-e]{0,12}", b in "[a-e]{0,12}") {
            let d1 = distance(&a, &b, 3);
            let d2 = distance(&b, &a, 3);
            prop_assert!((d1 - d2).abs() < 1e-9);
        }

        #[test]
        fn nonnegative_and_identity(a in ".{0,16}", b in ".{0,16}") {
            prop_assert!(distance(&a, &b, 3) >= 0.0);
            prop_assert!(distance(&a, &a, 3).abs() < 1e-9);
        }

        #[test]
        fn normalized_bounds(a in ".{0,16}", b in ".{0,16}", n in 1usize..5) {
            let d = normalized_distance(&a, &b, n);
            prop_assert!((0.0..=1.0).contains(&d));
        }

        #[test]
        fn scratch_variant_matches_reference_bitwise(
            a in ".{0,14}", b in ".{0,14}", n in 1usize..5
        ) {
            let mut scratch = crate::DistanceScratch::new();
            for _ in 0..2 {
                prop_assert_eq!(
                    distance_with(&a, &b, n, &mut scratch).to_bits(),
                    distance(&a, &b, n).to_bits()
                );
                prop_assert_eq!(
                    normalized_distance_with(&a, &b, n, &mut scratch).to_bits(),
                    normalized_distance(&a, &b, n).to_bits()
                );
            }
        }

        #[test]
        fn bounded_by_longer_length(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
            // The all-deletions/insertions alignment costs max(|a|,|b|), so
            // the optimum can never exceed it. (Unlike Levenshtein, the
            // n-gram distance is NOT bounded by the Levenshtein distance:
            // padded grams add fractional substitution costs.)
            let d = distance(&a, &b, 3);
            let m = a.chars().count().max(b.chars().count());
            prop_assert!(d <= m as f64 + 1e-9);
        }
    }
}
