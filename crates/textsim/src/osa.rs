//! Optimal string alignment (OSA) distance.
//!
//! OSA — also called the *restricted* Damerau–Levenshtein distance — extends
//! Levenshtein with transposition of two adjacent characters, under the
//! restriction that no substring is edited more than once. Unlike the full
//! Damerau–Levenshtein distance ([`crate::damerau`]), OSA does not satisfy
//! the triangle inequality (e.g. `osa("ca","abc") = 3` but
//! `osa("ca","ac") + osa("ac","abc") = 1 + 2`).

use crate::normalize_by_max_len;
use crate::scratch::{decode_and_trim, DistanceScratch};

/// Optimal string alignment distance between `a` and `b`.
///
/// # Examples
///
/// ```
/// use leapme_textsim::osa::distance;
/// assert_eq!(distance("ab", "ba"), 1);    // one transposition
/// assert_eq!(distance("ca", "abc"), 3);   // restriction: cannot reuse edited substring
/// ```
pub fn distance(a: &str, b: &str) -> usize {
    distance_with(a, b, &mut DistanceScratch::new())
}

/// [`distance`] through caller-provided scratch buffers: equal strings
/// short-circuit to `0`, the shared prefix and suffix are trimmed off
/// (exact for OSA — matching affix characters align with zero cost in an
/// optimal restricted edit script; verified exhaustively against the
/// untrimmed DP), and the DP rows live in `scratch`, so a warm
/// steady-state call performs no heap allocations.
///
/// Dispatch: a bit-parallel [`crate::myers`] Levenshtein pass first
/// yields an upper bound `k` on the OSA distance (OSA ≤ Levenshtein —
/// transpositions only remove cost), then [`distance_bounded_with`]
/// fills only the `±k` diagonal band.
pub fn distance_with(a: &str, b: &str, scratch: &mut DistanceScratch) -> usize {
    if a == b {
        return 0;
    }
    let bound = crate::myers::distance_with(a, b, scratch);
    distance_bounded_with(a, b, bound, scratch)
}

/// [`distance_with`] given a known upper bound on the distance (any
/// `bound ≥ osa(a, b)`, e.g. the Levenshtein distance): only the DP
/// cells within `bound` of the main diagonal are filled. Cells further
/// out hold values ≥ `|i − j| > bound` and can never lie on an optimal
/// alignment whose total cost is ≤ `bound`, so the result is exactly
/// [`distance`] (proven exhaustively and by property tests). When the
/// band covers the whole matrix the kept full DP runs instead — the
/// early-exit for bounds that prune nothing.
///
/// # Panics
///
/// May panic or return a wrong distance if `bound < osa(a, b)`; callers
/// must pass a true upper bound.
pub fn distance_bounded_with(a: &str, b: &str, bound: usize, scratch: &mut DistanceScratch) -> usize {
    if a == b {
        return 0;
    }
    let DistanceScratch {
        ca,
        cb,
        row0: prev2,
        row1: prev,
        row2: curr,
        ..
    } = scratch;
    let (av, bv) = decode_and_trim(ca, cb, a, b);
    let (n, m) = (av.len(), bv.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    if bound >= m {
        return full_dp(av, bv, prev2, prev, curr);
    }
    banded_dp(av, bv, bound, prev2, prev, curr)
}

/// The kept reference kernel: the original three-rolling-row full DP.
fn full_dp(
    av: &[char],
    bv: &[char],
    prev2: &mut Vec<usize>,
    prev: &mut Vec<usize>,
    curr: &mut Vec<usize>,
) -> usize {
    let (n, m) = (av.len(), bv.len());
    // Three rolling rows: i-2, i-1, i.
    prev2.clear();
    prev2.resize(m + 1, 0);
    prev.clear();
    prev.extend(0..=m);
    curr.clear();
    curr.resize(m + 1, 0);

    for i in 1..=n {
        curr[0] = i;
        for j in 1..=m {
            let cost = usize::from(av[i - 1] != bv[j - 1]);
            let mut d = (prev[j] + 1).min(curr[j - 1] + 1).min(prev[j - 1] + cost);
            if i > 1 && j > 1 && av[i - 1] == bv[j - 2] && av[i - 2] == bv[j - 1] {
                d = d.min(prev2[j - 2] + 1);
            }
            curr[j] = d;
        }
        std::mem::swap(prev2, prev);
        std::mem::swap(prev, curr);
    }
    prev[m]
}

/// Banded variant: row `i` only fills columns `[i − k, i + k]`. The
/// positions just outside each row's window hold a sentinel larger than
/// any true distance, so in-band cells near the edge compute values ≥
/// their true DP values while every cell of an optimal ≤ `k` alignment
/// (all of which satisfy `|i − j| ≤ k`, including OSA's diagonal-adjacent
/// transposition reference at `(i − 2, j − 2)`) gets its exact value.
fn banded_dp(
    av: &[char],
    bv: &[char],
    k: usize,
    prev2: &mut Vec<usize>,
    prev: &mut Vec<usize>,
    curr: &mut Vec<usize>,
) -> usize {
    let (n, m) = (av.len(), bv.len());
    debug_assert!(k < m && k >= n.abs_diff(m));
    let sentinel = n + m + 1;
    prev2.clear();
    prev2.resize(m + 1, sentinel);
    prev.clear();
    prev.extend(0..=m);
    curr.clear();
    curr.resize(m + 1, sentinel);

    for i in 1..=n {
        let lo = (i.saturating_sub(k)).max(1);
        let hi = (i + k).min(m);
        if lo == 1 {
            curr[0] = i;
        } else {
            curr[lo - 1] = sentinel;
        }
        for j in lo..=hi {
            let cost = usize::from(av[i - 1] != bv[j - 1]);
            let mut d = (prev[j] + 1).min(curr[j - 1] + 1).min(prev[j - 1] + cost);
            if i > 1 && j > 1 && av[i - 1] == bv[j - 2] && av[i - 2] == bv[j - 1] {
                d = d.min(prev2[j - 2] + 1);
            }
            curr[j] = d;
        }
        if hi < m {
            curr[hi + 1] = sentinel;
        }
        std::mem::swap(prev2, prev);
        std::mem::swap(prev, curr);
    }
    prev[m]
}

/// OSA distance normalized by the longer string's character count, in `[0, 1]`.
pub fn normalized_distance(a: &str, b: &str) -> f64 {
    normalize_by_max_len(distance(a, b), a.chars().count(), b.chars().count())
}

/// [`normalized_distance`] through caller-provided scratch buffers.
pub fn normalized_distance_with(a: &str, b: &str, scratch: &mut DistanceScratch) -> f64 {
    normalize_by_max_len(
        distance_with(a, b, scratch),
        a.chars().count(),
        b.chars().count(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein;
    use proptest::prelude::*;

    /// The original untrimmed three-row DP, kept as the oracle for the
    /// equal-string / affix-trimming fast path.
    fn reference(a: &str, b: &str) -> usize {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        let (n, m) = (av.len(), bv.len());
        if n == 0 {
            return m;
        }
        if m == 0 {
            return n;
        }
        let mut prev2: Vec<usize> = vec![0; m + 1];
        let mut prev: Vec<usize> = (0..=m).collect();
        let mut curr: Vec<usize> = vec![0; m + 1];
        for i in 1..=n {
            curr[0] = i;
            for j in 1..=m {
                let cost = usize::from(av[i - 1] != bv[j - 1]);
                let mut d = (prev[j] + 1).min(curr[j - 1] + 1).min(prev[j - 1] + cost);
                if i > 1 && j > 1 && av[i - 1] == bv[j - 2] && av[i - 2] == bv[j - 1] {
                    d = d.min(prev2[j - 2] + 1);
                }
                curr[j] = d;
            }
            std::mem::swap(&mut prev2, &mut prev);
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[m]
    }

    #[test]
    fn fast_path_matches_untrimmed_dp_exhaustively() {
        // Transpositions are the risky interaction with affix trimming,
        // so check every pair over {a,b,c} up to length 4.
        let strings = crate::levenshtein::tests::small_strings(4);
        let mut scratch = crate::scratch::DistanceScratch::new();
        for a in &strings {
            for b in &strings {
                assert_eq!(
                    distance_with(a, b, &mut scratch),
                    reference(a, b),
                    "osa({a:?},{b:?})"
                );
            }
        }
    }

    #[test]
    fn banded_matches_untrimmed_dp_exhaustively_at_every_bound() {
        // The banded kernel must be exact for every valid bound, from
        // the tightest (the true Levenshtein distance) up to bounds that
        // force the full-DP early exit.
        let strings = crate::levenshtein::tests::small_strings(4);
        let mut scratch = crate::scratch::DistanceScratch::new();
        for a in &strings {
            for b in &strings {
                let lev = levenshtein::distance(a, b);
                let want = reference(a, b);
                for bound in [lev, lev + 1, lev + 3] {
                    assert_eq!(
                        distance_bounded_with(a, b, bound, &mut scratch),
                        want,
                        "osa_banded({a:?},{b:?},k={bound})"
                    );
                }
            }
        }
    }

    #[test]
    fn known_values() {
        assert_eq!(distance("", ""), 0);
        assert_eq!(distance("abc", ""), 3);
        assert_eq!(distance("", "abc"), 3);
        assert_eq!(distance("abc", "abc"), 0);
        assert_eq!(distance("ab", "ba"), 1);
        assert_eq!(distance("abcdef", "abcfed"), 2);
    }

    #[test]
    fn restricted_semantics() {
        // The canonical example distinguishing OSA from full DL:
        // OSA("ca","abc") = 3 while full DL("ca","abc") = 2.
        assert_eq!(distance("ca", "abc"), 3);
    }

    #[test]
    fn transposition_cheaper_than_levenshtein() {
        assert_eq!(distance("shutterspeed", "shutterseped"), 1);
        assert_eq!(levenshtein::distance("shutterspeed", "shutterseped"), 2);
    }

    proptest! {
        #[test]
        fn symmetric(a in ".{0,20}", b in ".{0,20}") {
            prop_assert_eq!(distance(&a, &b), distance(&b, &a));
        }

        #[test]
        fn never_exceeds_levenshtein(a in "[a-d]{0,14}", b in "[a-d]{0,14}") {
            prop_assert!(distance(&a, &b) <= levenshtein::distance(&a, &b));
        }

        #[test]
        fn identity_and_bounds(a in ".{0,20}", b in ".{0,20}") {
            prop_assert_eq!(distance(&a, &a), 0);
            let d = normalized_distance(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
        }

        #[test]
        fn fast_path_matches_untrimmed_dp(a in ".{0,20}", b in ".{0,20}") {
            let mut scratch = crate::scratch::DistanceScratch::new();
            prop_assert_eq!(distance_with(&a, &b, &mut scratch), reference(&a, &b));
        }

        #[test]
        fn banded_matches_untrimmed_dp(a in "[a-e]{0,30}", b in "[a-e]{0,30}") {
            // Small alphabet → long shared affixes and transpositions —
            // the band-edge stress case.
            let mut scratch = crate::scratch::DistanceScratch::new();
            let lev = levenshtein::distance(&a, &b);
            prop_assert_eq!(
                distance_bounded_with(&a, &b, lev, &mut scratch),
                reference(&a, &b)
            );
        }
    }
}
