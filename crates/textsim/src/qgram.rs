//! Q-gram profiles and profile-based distances (cosine, Jaccard).
//!
//! LEAPME Table I rows 13–14 use the cosine distance and the Jaccard
//! distance between the *3-gram profiles* of the property names. A q-gram
//! profile is the multiset of all contiguous character q-grams of a string;
//! cosine works on the frequency vectors, Jaccard on the gram sets.

use std::collections::HashMap;

/// Multiset of character q-grams of a string.
///
/// Grams are stored with their occurrence counts. Strings shorter than `q`
/// produce a single gram consisting of the whole string (so that very short
/// property names like "MP" still have a non-empty profile), except the
/// empty string, whose profile is empty.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QGramProfile {
    grams: HashMap<String, u32>,
    total: u32,
}

impl QGramProfile {
    /// Build the q-gram profile of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn new(s: &str, q: usize) -> Self {
        assert!(q > 0, "q must be positive");
        let chars: Vec<char> = s.chars().collect();
        let mut grams = HashMap::new();
        let mut total = 0u32;
        if chars.is_empty() {
            return QGramProfile { grams, total };
        }
        if chars.len() < q {
            grams.insert(chars.iter().collect::<String>(), 1);
            return QGramProfile { grams, total: 1 };
        }
        for w in chars.windows(q) {
            *grams.entry(w.iter().collect::<String>()).or_insert(0) += 1;
            total += 1;
        }
        QGramProfile { grams, total }
    }

    /// Number of *distinct* grams in the profile.
    pub fn distinct(&self) -> usize {
        self.grams.len()
    }

    /// Total gram occurrences (multiset cardinality).
    pub fn total(&self) -> u32 {
        self.total.max(self.grams.values().sum())
    }

    /// Occurrence count of a specific gram.
    pub fn count(&self, gram: &str) -> u32 {
        self.grams.get(gram).copied().unwrap_or(0)
    }

    /// Cosine similarity between two profiles' frequency vectors, in `[0, 1]`.
    ///
    /// Two empty profiles have similarity `1.0`; an empty and a non-empty
    /// profile have similarity `0.0`.
    pub fn cosine_similarity(&self, other: &Self) -> f64 {
        if self.grams.is_empty() && other.grams.is_empty() {
            return 1.0;
        }
        if self.grams.is_empty() || other.grams.is_empty() {
            return 0.0;
        }
        let mut dot = 0.0f64;
        for (g, &c) in &self.grams {
            dot += c as f64 * other.count(g) as f64;
        }
        let na: f64 = self.grams.values().map(|&c| (c as f64).powi(2)).sum::<f64>().sqrt();
        let nb: f64 = other.grams.values().map(|&c| (c as f64).powi(2)).sum::<f64>().sqrt();
        (dot / (na * nb)).clamp(0.0, 1.0)
    }

    /// Jaccard similarity between the *sets* of distinct grams, in `[0, 1]`.
    ///
    /// Two empty profiles have similarity `1.0`.
    pub fn jaccard_similarity(&self, other: &Self) -> f64 {
        if self.grams.is_empty() && other.grams.is_empty() {
            return 1.0;
        }
        let inter = self
            .grams
            .keys()
            .filter(|g| other.grams.contains_key(*g))
            .count();
        let union = self.grams.len() + other.grams.len() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }
}

/// Cosine *distance* (`1 − cosine similarity`) between the q-gram profiles
/// of `a` and `b`.
///
/// ```
/// use leapme_textsim::qgram::cosine_distance;
/// assert_eq!(cosine_distance("abc", "abc", 3), 0.0);
/// assert_eq!(cosine_distance("aaa", "zzz", 3), 1.0);
/// ```
pub fn cosine_distance(a: &str, b: &str, q: usize) -> f64 {
    1.0 - QGramProfile::new(a, q).cosine_similarity(&QGramProfile::new(b, q))
}

/// Jaccard *distance* (`1 − Jaccard similarity`) between the q-gram profile
/// sets of `a` and `b`.
pub fn jaccard_distance(a: &str, b: &str, q: usize) -> f64 {
    1.0 - QGramProfile::new(a, q).jaccard_similarity(&QGramProfile::new(b, q))
}

/// Build the packed 3-gram profile of `s` into `map` (cleared first).
///
/// Grams are encoded injectively into a `u64` instead of an owned
/// `String`: a `char` is a Unicode scalar value below `2^21`, so three of
/// them fit in 63 bits, and the top two bits carry the gram's character
/// count to keep the whole-string grams of sub-`q`-length inputs disjoint
/// from true 3-grams. Equal packed keys ⇔ equal gram strings, so counts
/// match [`QGramProfile::new`]`(s, 3)` exactly.
fn packed_trigram_profile(s: &str, map: &mut HashMap<u64, u32>) {
    map.clear();
    let (mut c0, mut c1) = ('\0', '\0');
    let mut n = 0usize;
    for c in s.chars() {
        n += 1;
        if n >= 3 {
            let key = (3u64 << 62) | ((c0 as u64) << 42) | ((c1 as u64) << 21) | c as u64;
            *map.entry(key).or_insert(0) += 1;
        }
        c0 = c1;
        c1 = c;
    }
    if n == 1 {
        map.insert((1u64 << 62) | c1 as u64, 1);
    } else if n == 2 {
        map.insert((2u64 << 62) | ((c0 as u64) << 21) | c1 as u64, 1);
    }
}

/// Both 3-gram profile distances of LEAPME Table I rows 13–14 —
/// `(cosine_distance, jaccard_distance)` — in one pass over `scratch`'s
/// reusable packed profiles.
///
/// The reference path ([`cosine_distance`] + [`jaccard_distance`] at
/// `q = 3`) builds four `String`-keyed profiles per pair; this builds the
/// two packed profiles once and derives both distances from them. The
/// results are bitwise identical to the reference: every accumulated term
/// (gram counts, their products and squares, set cardinalities) is a
/// small integer, exact in `f64`, so neither the profile representation
/// nor hash-map iteration order can perturb a sum, and the final
/// divide/sqrt/clamp sequence is the same. The property tests pin this
/// equivalence over arbitrary Unicode inputs.
pub fn trigram_distances_with(
    a: &str,
    b: &str,
    scratch: &mut crate::DistanceScratch,
) -> (f64, f64) {
    let crate::DistanceScratch { qa, qb, .. } = scratch;
    packed_trigram_profile(a, qa);
    packed_trigram_profile(b, qb);

    let cosine = if qa.is_empty() && qb.is_empty() {
        1.0
    } else if qa.is_empty() || qb.is_empty() {
        0.0
    } else {
        let mut dot = 0.0f64;
        for (g, &c) in qa.iter() {
            dot += c as f64 * qb.get(g).copied().unwrap_or(0) as f64;
        }
        let na: f64 = qa.values().map(|&c| (c as f64).powi(2)).sum::<f64>().sqrt();
        let nb: f64 = qb.values().map(|&c| (c as f64).powi(2)).sum::<f64>().sqrt();
        (dot / (na * nb)).clamp(0.0, 1.0)
    };

    let jaccard = if qa.is_empty() && qb.is_empty() {
        1.0
    } else {
        let inter = qa.keys().filter(|g| qb.contains_key(*g)).count();
        let union = qa.len() + qb.len() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    };

    (1.0 - cosine, 1.0 - jaccard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn profile_counts() {
        let p = QGramProfile::new("banana", 3);
        // ban, ana, nan, ana -> {ban:1, ana:2, nan:1}
        assert_eq!(p.distinct(), 3);
        assert_eq!(p.count("ana"), 2);
        assert_eq!(p.count("ban"), 1);
        assert_eq!(p.count("xyz"), 0);
        assert_eq!(p.total(), 4);
    }

    #[test]
    fn short_string_profile() {
        let p = QGramProfile::new("mp", 3);
        assert_eq!(p.distinct(), 1);
        assert_eq!(p.count("mp"), 1);
        let empty = QGramProfile::new("", 3);
        assert_eq!(empty.distinct(), 0);
    }

    #[test]
    fn empty_profiles_similarity() {
        let e = QGramProfile::new("", 3);
        let x = QGramProfile::new("abc", 3);
        assert_eq!(e.cosine_similarity(&e), 1.0);
        assert_eq!(e.jaccard_similarity(&e), 1.0);
        assert_eq!(e.cosine_similarity(&x), 0.0);
        assert_eq!(e.jaccard_similarity(&x), 0.0);
    }

    #[test]
    fn distances_distinguish_near_from_far() {
        let near = cosine_distance("camera resolution", "image resolution", 3);
        let far = cosine_distance("camera resolution", "battery life", 3);
        assert!(near < far);
        let nearj = jaccard_distance("camera resolution", "image resolution", 3);
        let farj = jaccard_distance("camera resolution", "battery life", 3);
        assert!(nearj < farj);
    }

    proptest! {
        #[test]
        fn cosine_symmetric_and_bounded(a in ".{0,16}", b in ".{0,16}") {
            let d1 = cosine_distance(&a, &b, 3);
            let d2 = cosine_distance(&b, &a, 3);
            prop_assert!((d1 - d2).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&d1));
        }

        #[test]
        fn jaccard_symmetric_and_bounded(a in ".{0,16}", b in ".{0,16}") {
            let d1 = jaccard_distance(&a, &b, 3);
            let d2 = jaccard_distance(&b, &a, 3);
            prop_assert!((d1 - d2).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&d1));
        }

        #[test]
        fn self_distance_zero(a in ".{0,16}", q in 1usize..5) {
            prop_assert!(cosine_distance(&a, &a, q).abs() < 1e-12);
            prop_assert!(jaccard_distance(&a, &a, q).abs() < 1e-12);
        }

        #[test]
        fn profile_total_matches_window_count(a in "[a-d]{3,20}") {
            let p = QGramProfile::new(&a, 3);
            prop_assert_eq!(p.total() as usize, a.chars().count() - 2);
        }

        #[test]
        fn fused_trigram_distances_match_reference_bitwise(a in ".{0,20}", b in ".{0,20}") {
            let mut scratch = crate::DistanceScratch::new();
            // Two rounds through the same scratch: the second exercises
            // buffer reuse after the first left state behind.
            for _ in 0..2 {
                let (cos, jac) = trigram_distances_with(&a, &b, &mut scratch);
                prop_assert_eq!(cos.to_bits(), cosine_distance(&a, &b, 3).to_bits());
                prop_assert_eq!(jac.to_bits(), jaccard_distance(&a, &b, 3).to_bits());
            }
        }
    }

    #[test]
    fn fused_trigram_distances_edge_cases() {
        let mut s = crate::DistanceScratch::new();
        // Empty/empty, empty/short, short/short (whole-string grams),
        // short/long (length-tagged keys must not collide).
        for (a, b) in [("", ""), ("", "ab"), ("m", "mp"), ("mp", "amp"), ("ab", "xaby")] {
            let (cos, jac) = trigram_distances_with(a, b, &mut s);
            assert_eq!(cos.to_bits(), cosine_distance(a, b, 3).to_bits(), "cos({a:?},{b:?})");
            assert_eq!(jac.to_bits(), jaccard_distance(a, b, 3).to_bits(), "jac({a:?},{b:?})");
        }
    }
}
