//! Q-gram profiles and profile-based distances (cosine, Jaccard).
//!
//! LEAPME Table I rows 13–14 use the cosine distance and the Jaccard
//! distance between the *3-gram profiles* of the property names. A q-gram
//! profile is the multiset of all contiguous character q-grams of a string;
//! cosine works on the frequency vectors, Jaccard on the gram sets.

use std::collections::HashMap;

/// Multiset of character q-grams of a string.
///
/// Grams are stored with their occurrence counts. Strings shorter than `q`
/// produce a single gram consisting of the whole string (so that very short
/// property names like "MP" still have a non-empty profile), except the
/// empty string, whose profile is empty.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QGramProfile {
    grams: HashMap<String, u32>,
    total: u32,
}

impl QGramProfile {
    /// Build the q-gram profile of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn new(s: &str, q: usize) -> Self {
        assert!(q > 0, "q must be positive");
        let chars: Vec<char> = s.chars().collect();
        let mut grams = HashMap::new();
        let mut total = 0u32;
        if chars.is_empty() {
            return QGramProfile { grams, total };
        }
        if chars.len() < q {
            grams.insert(chars.iter().collect::<String>(), 1);
            return QGramProfile { grams, total: 1 };
        }
        for w in chars.windows(q) {
            *grams.entry(w.iter().collect::<String>()).or_insert(0) += 1;
            total += 1;
        }
        QGramProfile { grams, total }
    }

    /// Number of *distinct* grams in the profile.
    pub fn distinct(&self) -> usize {
        self.grams.len()
    }

    /// Total gram occurrences (multiset cardinality).
    pub fn total(&self) -> u32 {
        self.total.max(self.grams.values().sum())
    }

    /// Occurrence count of a specific gram.
    pub fn count(&self, gram: &str) -> u32 {
        self.grams.get(gram).copied().unwrap_or(0)
    }

    /// Cosine similarity between two profiles' frequency vectors, in `[0, 1]`.
    ///
    /// Two empty profiles have similarity `1.0`; an empty and a non-empty
    /// profile have similarity `0.0`.
    pub fn cosine_similarity(&self, other: &Self) -> f64 {
        if self.grams.is_empty() && other.grams.is_empty() {
            return 1.0;
        }
        if self.grams.is_empty() || other.grams.is_empty() {
            return 0.0;
        }
        let mut dot = 0.0f64;
        for (g, &c) in &self.grams {
            dot += c as f64 * other.count(g) as f64;
        }
        let na: f64 = self.grams.values().map(|&c| (c as f64).powi(2)).sum::<f64>().sqrt();
        let nb: f64 = other.grams.values().map(|&c| (c as f64).powi(2)).sum::<f64>().sqrt();
        (dot / (na * nb)).clamp(0.0, 1.0)
    }

    /// Jaccard similarity between the *sets* of distinct grams, in `[0, 1]`.
    ///
    /// Two empty profiles have similarity `1.0`.
    pub fn jaccard_similarity(&self, other: &Self) -> f64 {
        if self.grams.is_empty() && other.grams.is_empty() {
            return 1.0;
        }
        let inter = self
            .grams
            .keys()
            .filter(|g| other.grams.contains_key(*g))
            .count();
        let union = self.grams.len() + other.grams.len() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }
}

/// Cosine *distance* (`1 − cosine similarity`) between the q-gram profiles
/// of `a` and `b`.
///
/// ```
/// use leapme_textsim::qgram::cosine_distance;
/// assert_eq!(cosine_distance("abc", "abc", 3), 0.0);
/// assert_eq!(cosine_distance("aaa", "zzz", 3), 1.0);
/// ```
pub fn cosine_distance(a: &str, b: &str, q: usize) -> f64 {
    1.0 - QGramProfile::new(a, q).cosine_similarity(&QGramProfile::new(b, q))
}

/// Jaccard *distance* (`1 − Jaccard similarity`) between the q-gram profile
/// sets of `a` and `b`.
pub fn jaccard_distance(a: &str, b: &str, q: usize) -> f64 {
    1.0 - QGramProfile::new(a, q).jaccard_similarity(&QGramProfile::new(b, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn profile_counts() {
        let p = QGramProfile::new("banana", 3);
        // ban, ana, nan, ana -> {ban:1, ana:2, nan:1}
        assert_eq!(p.distinct(), 3);
        assert_eq!(p.count("ana"), 2);
        assert_eq!(p.count("ban"), 1);
        assert_eq!(p.count("xyz"), 0);
        assert_eq!(p.total(), 4);
    }

    #[test]
    fn short_string_profile() {
        let p = QGramProfile::new("mp", 3);
        assert_eq!(p.distinct(), 1);
        assert_eq!(p.count("mp"), 1);
        let empty = QGramProfile::new("", 3);
        assert_eq!(empty.distinct(), 0);
    }

    #[test]
    fn empty_profiles_similarity() {
        let e = QGramProfile::new("", 3);
        let x = QGramProfile::new("abc", 3);
        assert_eq!(e.cosine_similarity(&e), 1.0);
        assert_eq!(e.jaccard_similarity(&e), 1.0);
        assert_eq!(e.cosine_similarity(&x), 0.0);
        assert_eq!(e.jaccard_similarity(&x), 0.0);
    }

    #[test]
    fn distances_distinguish_near_from_far() {
        let near = cosine_distance("camera resolution", "image resolution", 3);
        let far = cosine_distance("camera resolution", "battery life", 3);
        assert!(near < far);
        let nearj = jaccard_distance("camera resolution", "image resolution", 3);
        let farj = jaccard_distance("camera resolution", "battery life", 3);
        assert!(nearj < farj);
    }

    proptest! {
        #[test]
        fn cosine_symmetric_and_bounded(a in ".{0,16}", b in ".{0,16}") {
            let d1 = cosine_distance(&a, &b, 3);
            let d2 = cosine_distance(&b, &a, 3);
            prop_assert!((d1 - d2).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&d1));
        }

        #[test]
        fn jaccard_symmetric_and_bounded(a in ".{0,16}", b in ".{0,16}") {
            let d1 = jaccard_distance(&a, &b, 3);
            let d2 = jaccard_distance(&b, &a, 3);
            prop_assert!((d1 - d2).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&d1));
        }

        #[test]
        fn self_distance_zero(a in ".{0,16}", q in 1usize..5) {
            prop_assert!(cosine_distance(&a, &a, q).abs() < 1e-12);
            prop_assert!(jaccard_distance(&a, &a, q).abs() < 1e-12);
        }

        #[test]
        fn profile_total_matches_window_count(a in "[a-d]{3,20}") {
            let p = QGramProfile::new(&a, 3);
            prop_assert_eq!(p.total() as usize, a.chars().count() - 2);
        }
    }
}
