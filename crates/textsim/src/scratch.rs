//! Caller-provided scratch buffers for the string-distance kernels.
//!
//! The LEAPME name-feature block evaluates eight string distances per
//! property pair, and every one of them used to allocate fresh `char`
//! buffers, DP rows, or gram profiles on every call. A
//! [`DistanceScratch`] owns all of those buffers; the `_with` variants
//! reuse them, so a steady-state eight-distance call performs zero heap
//! allocations (the hash-map members keep their capacity across calls
//! too).

use std::collections::HashMap;

/// Reusable buffers for the `_with` variants of every distance kernel in
/// this crate ([`crate::osa`], [`crate::levenshtein`], [`crate::damerau`],
/// [`crate::lcs`], [`crate::ngram`], [`crate::qgram`], [`crate::jaro`]).
/// One scratch serves all of them — buffers are resized per call and
/// never shrink, so after warm-up no call allocates. Not thread-safe;
/// use one scratch per thread.
#[derive(Debug, Default)]
pub struct DistanceScratch {
    /// Decoded scalar values of the first input.
    pub(crate) ca: Vec<char>,
    /// Decoded scalar values of the second input.
    pub(crate) cb: Vec<char>,
    /// Rolling DP row (`i − 2` for OSA).
    pub(crate) row0: Vec<usize>,
    /// Rolling DP row (`i − 1`).
    pub(crate) row1: Vec<usize>,
    /// Rolling DP row (`i`).
    pub(crate) row2: Vec<usize>,
    /// Flat DP matrix for the Lowrance–Wagner Damerau kernel.
    pub(crate) matrix: Vec<usize>,
    /// Per-character "last seen row" map for the Damerau kernel.
    pub(crate) last_row: HashMap<char, usize>,
    /// Packed 3-gram profile of the first input (fused q-gram kernel).
    pub(crate) qa: HashMap<u64, u32>,
    /// Packed 3-gram profile of the second input.
    pub(crate) qb: HashMap<u64, u32>,
    /// Rolling fractional-cost DP row for the Kondrak n-gram kernel.
    pub(crate) frow0: Vec<f64>,
    /// Rolling fractional-cost DP row (current).
    pub(crate) frow1: Vec<f64>,
    /// Per-character "already matched" flags for the Jaro kernel.
    pub(crate) flags: Vec<bool>,
    /// Matched characters of the first input, in order (Jaro kernel).
    pub(crate) mchars: Vec<char>,
    /// Pattern equality bitmasks for the single-block Myers kernel.
    pub(crate) peq: HashMap<char, u64>,
    /// Per-character offsets into [`Self::peq_masks`] (multi-block Myers).
    pub(crate) peq_idx: HashMap<char, usize>,
    /// Concatenated per-character block masks (multi-block Myers).
    pub(crate) peq_masks: Vec<u64>,
    /// Positive vertical-delta blocks (multi-block Myers).
    pub(crate) pv: Vec<u64>,
    /// Negative vertical-delta blocks (multi-block Myers).
    pub(crate) mv: Vec<u64>,
}

impl DistanceScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Decode `a` and `b` into the given buffers and return views with the
/// shared prefix and suffix trimmed off.
///
/// Trimming the common affixes is exact for all three edit distances in
/// this crate: matching end characters always align with zero cost in
/// some optimal edit script, including scripts with transpositions (the
/// unit tests verify this exhaustively against untrimmed DP references).
/// After trimming, either side may be empty, and the first/last
/// remaining characters of the two sides differ.
pub(crate) fn decode_and_trim<'s>(
    ca: &'s mut Vec<char>,
    cb: &'s mut Vec<char>,
    a: &str,
    b: &str,
) -> (&'s [char], &'s [char]) {
    ca.clear();
    ca.extend(a.chars());
    cb.clear();
    cb.extend(b.chars());
    let mut start = 0usize;
    let shorter = ca.len().min(cb.len());
    while start < shorter && ca[start] == cb[start] {
        start += 1;
    }
    let mut end_a = ca.len();
    let mut end_b = cb.len();
    while end_a > start && end_b > start && ca[end_a - 1] == cb[end_b - 1] {
        end_a -= 1;
        end_b -= 1;
    }
    (&ca[start..end_a], &cb[start..end_b])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trim(a: &str, b: &str) -> (String, String) {
        let (mut ca, mut cb) = (Vec::new(), Vec::new());
        let (ta, tb) = decode_and_trim(&mut ca, &mut cb, a, b);
        (ta.iter().collect(), tb.iter().collect())
    }

    #[test]
    fn trims_prefix_and_suffix_without_overlap() {
        assert_eq!(trim("sitten", "sitting"), ("en".into(), "ing".into()));
        assert_eq!(trim("kitten", "kitchen"), ("t".into(), "ch".into()));
        assert_eq!(trim("abcdef", "abxdef"), ("c".into(), "x".into()));
        assert_eq!(trim("same", "same"), (String::new(), String::new()));
        // Prefix and suffix regions must not double-count shared chars.
        assert_eq!(trim("abcabc", "abc"), ("abc".into(), String::new()));
        assert_eq!(trim("aaa", "aa"), ("a".into(), String::new()));
        assert_eq!(trim("", "xyz"), (String::new(), "xyz".into()));
    }
}
