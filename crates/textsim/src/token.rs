//! Token-level (hybrid) similarity measures.
//!
//! Multi-word attribute names are often better compared token-by-token
//! than character-by-character: `"maximum shutter speed"` vs
//! `"shutter speed max"` is a near-perfect match at the token level but
//! mediocre for char-level edit distances. This module provides the
//! standard hybrid measures used by lexical matching systems such as AML:
//!
//! * [`jaccard`] / [`dice`] / [`overlap`] — set measures over tokens,
//! * [`cosine_tf`] — cosine over token frequency vectors,
//! * [`monge_elkan`] — average best inner similarity (Monge–Elkan) with a
//!   pluggable inner measure,
//! * [`soft_jaccard`] — Jaccard with fuzzy token equality.

use std::collections::{BTreeMap, BTreeSet};

/// Split into lowercase tokens on non-alphanumeric boundaries.
pub fn tokens(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_lowercase)
        .collect()
}

fn token_set(text: &str) -> BTreeSet<String> {
    tokens(text).into_iter().collect()
}

/// Jaccard similarity of the token sets, in `[0, 1]`.
///
/// Two token-less strings are defined as similarity 0 (no evidence).
///
/// ```
/// use leapme_textsim::token::jaccard;
/// assert_eq!(jaccard("shutter speed", "speed shutter"), 1.0);
/// assert_eq!(jaccard("shutter speed", "shutter"), 0.5);
/// ```
pub fn jaccard(a: &str, b: &str) -> f64 {
    let (sa, sb) = (token_set(a), token_set(b));
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Dice similarity `2·|A∩B| / (|A|+|B|)` of the token sets.
pub fn dice(a: &str, b: &str) -> f64 {
    let (sa, sb) = (token_set(a), token_set(b));
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    2.0 * inter as f64 / (sa.len() + sb.len()) as f64
}

/// Overlap coefficient `|A∩B| / min(|A|,|B|)` of the token sets.
///
/// `1.0` whenever one name's tokens are a subset of the other's —
/// useful for "zoom" vs "optical zoom".
pub fn overlap(a: &str, b: &str) -> f64 {
    let (sa, sb) = (token_set(a), token_set(b));
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    inter as f64 / sa.len().min(sb.len()) as f64
}

/// Cosine similarity of token frequency (TF) vectors.
pub fn cosine_tf(a: &str, b: &str) -> f64 {
    let count = |text: &str| {
        let mut m: BTreeMap<String, usize> = BTreeMap::new();
        for t in tokens(text) {
            *m.entry(t).or_insert(0) += 1;
        }
        m
    };
    let (ca, cb) = (count(a), count(b));
    if ca.is_empty() || cb.is_empty() {
        return 0.0;
    }
    let dot: f64 = ca
        .iter()
        .filter_map(|(t, &x)| cb.get(t).map(|&y| (x * y) as f64))
        .sum();
    let na: f64 = ca.values().map(|&x| (x * x) as f64).sum::<f64>().sqrt();
    let nb: f64 = cb.values().map(|&x| (x * x) as f64).sum::<f64>().sqrt();
    (dot / (na * nb)).clamp(0.0, 1.0)
}

/// Monge–Elkan similarity: for each token of `a`, the best `inner`
/// similarity against any token of `b`, averaged over `a`'s tokens.
///
/// Asymmetric by definition; use [`monge_elkan_sym`] for the symmetric
/// max. `inner` must return similarities in `[0, 1]`.
///
/// ```
/// use leapme_textsim::token::monge_elkan;
/// use leapme_textsim::jaro::jaro_winkler_similarity;
/// let sim = monge_elkan("shuter speed", "shutter speed", jaro_winkler_similarity);
/// assert!(sim > 0.9);
/// ```
pub fn monge_elkan(a: &str, b: &str, inner: impl Fn(&str, &str) -> f64) -> f64 {
    let ta = tokens(a);
    let tb = tokens(b);
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for x in &ta {
        let best = tb
            .iter()
            .map(|y| inner(x, y))
            .fold(f64::NEG_INFINITY, f64::max);
        total += best.clamp(0.0, 1.0);
    }
    total / ta.len() as f64
}

/// Symmetric Monge–Elkan: `max(me(a,b), me(b,a))`.
pub fn monge_elkan_sym(a: &str, b: &str, inner: impl Fn(&str, &str) -> f64 + Copy) -> f64 {
    monge_elkan(a, b, inner).max(monge_elkan(b, a, inner))
}

/// Soft Jaccard: tokens count as equal when `inner` similarity ≥
/// `threshold`; greedy one-to-one matching by best similarity.
pub fn soft_jaccard(
    a: &str,
    b: &str,
    threshold: f64,
    inner: impl Fn(&str, &str) -> f64,
) -> f64 {
    let ta = tokens(a);
    let tb = tokens(b);
    if ta.is_empty() && tb.is_empty() {
        return 0.0;
    }
    // Greedy maximum matching over similarity-sorted candidate pairs.
    let mut candidates: Vec<(f64, usize, usize)> = Vec::new();
    for (i, x) in ta.iter().enumerate() {
        for (j, y) in tb.iter().enumerate() {
            let s = inner(x, y);
            if s >= threshold {
                candidates.push((s, i, j));
            }
        }
    }
    candidates.sort_by(|p, q| q.0.partial_cmp(&p.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut used_a = vec![false; ta.len()];
    let mut used_b = vec![false; tb.len()];
    let mut matched = 0usize;
    for (_, i, j) in candidates {
        if !used_a[i] && !used_b[j] {
            used_a[i] = true;
            used_b[j] = true;
            matched += 1;
        }
    }
    let union = ta.len() + tb.len() - matched;
    if union == 0 {
        0.0
    } else {
        matched as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaro::jaro_winkler_similarity;
    use proptest::prelude::*;

    #[test]
    fn set_measures_known_values() {
        assert_eq!(jaccard("a b", "b c"), 1.0 / 3.0);
        assert_eq!(dice("a b", "b c"), 0.5);
        assert_eq!(overlap("zoom", "optical zoom"), 1.0);
        assert_eq!(overlap("a b", "c d"), 0.0);
    }

    #[test]
    fn order_and_case_insensitive() {
        assert_eq!(jaccard("Shutter Speed", "speed shutter"), 1.0);
        assert!((cosine_tf("A_B", "b a") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        for f in [jaccard, dice, overlap, cosine_tf] {
            assert_eq!(f("", ""), 0.0);
            assert_eq!(f("", "x"), 0.0);
        }
        assert_eq!(monge_elkan("", "x", jaro_winkler_similarity), 0.0);
        assert_eq!(soft_jaccard("", "", 0.9, jaro_winkler_similarity), 0.0);
    }

    #[test]
    fn cosine_tf_respects_frequency() {
        // "a a b" vs "a b": tf vectors (2,1) and (1,1).
        let s = cosine_tf("a a b", "a b");
        let expected = 3.0 / (5.0f64.sqrt() * 2.0f64.sqrt());
        assert!((s - expected).abs() < 1e-12);
    }

    #[test]
    fn monge_elkan_tolerates_typos() {
        let exact = monge_elkan("shutter speed", "shutter speed", jaro_winkler_similarity);
        let typo = monge_elkan("shuter sped", "shutter speed", jaro_winkler_similarity);
        let unrelated = monge_elkan("white balance", "shutter speed", jaro_winkler_similarity);
        assert!((exact - 1.0).abs() < 1e-12);
        assert!(typo > 0.9);
        assert!(unrelated < typo);
    }

    #[test]
    fn monge_elkan_asymmetry_and_sym() {
        let inner = jaro_winkler_similarity;
        let ab = monge_elkan("zoom", "optical zoom range", inner);
        let ba = monge_elkan("optical zoom range", "zoom", inner);
        assert!(ab > ba); // every token of "zoom" matches perfectly
        let sym = monge_elkan_sym("zoom", "optical zoom range", inner);
        assert_eq!(sym, ab.max(ba));
    }

    #[test]
    fn soft_jaccard_bridges_typos() {
        let hard = jaccard("shuter speed", "shutter speed");
        let soft = soft_jaccard("shuter speed", "shutter speed", 0.85, jaro_winkler_similarity);
        assert!(hard < 0.5);
        assert_eq!(soft, 1.0);
    }

    #[test]
    fn soft_jaccard_greedy_is_one_to_one() {
        // Both tokens of a want the single token of b; only one may match.
        let s = soft_jaccard("speed speeed", "speed", 0.8, jaro_winkler_similarity);
        // tokens a = {speed, speeed} (2), b = {speed} (1): matched = 1,
        // union = 2 → 0.5.
        assert!((s - 0.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn all_measures_bounded(a in ".{0,24}", b in ".{0,24}") {
            let inner = jaro_winkler_similarity;
            for v in [
                jaccard(&a, &b),
                dice(&a, &b),
                overlap(&a, &b),
                cosine_tf(&a, &b),
                monge_elkan(&a, &b, inner),
                soft_jaccard(&a, &b, 0.9, inner),
            ] {
                prop_assert!((0.0..=1.0).contains(&v), "{v}");
            }
        }

        #[test]
        fn set_measures_symmetric(a in ".{0,24}", b in ".{0,24}") {
            prop_assert_eq!(jaccard(&a, &b).to_bits(), jaccard(&b, &a).to_bits());
            prop_assert_eq!(dice(&a, &b).to_bits(), dice(&b, &a).to_bits());
            prop_assert_eq!(overlap(&a, &b).to_bits(), overlap(&b, &a).to_bits());
        }

        #[test]
        fn identity_on_tokenful_strings(a in "[a-z]{1,8}( [a-z]{1,8}){0,3}") {
            prop_assert_eq!(jaccard(&a, &a), 1.0);
            prop_assert_eq!(dice(&a, &a), 1.0);
            prop_assert!((cosine_tf(&a, &a) - 1.0).abs() < 1e-9);
        }

        #[test]
        fn dice_at_least_jaccard(a in ".{0,20}", b in ".{0,20}") {
            prop_assert!(dice(&a, &b) + 1e-12 >= jaccard(&a, &b));
        }
    }
}
