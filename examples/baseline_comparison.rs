//! LEAPME vs the five baselines on one dataset.
//!
//! A single-split miniature of the paper's Table II: train LEAPME and the
//! supervised Nezhadi baseline on 80% of the phone dataset's sources,
//! run every matcher on the held-out region, and print a comparison
//! table. (The full multi-repetition reproduction is
//! `cargo run --release -p leapme-bench --bin table2`.)
//!
//! Run with: `cargo run --release --example baseline_comparison`

use leapme::baselines::{
    aml::AmlMatcher, fcamap::FcaMapMatcher, lsh::LshMatcher, nezhadi::NezhadiMatcher,
    semprop::SemPropMatcher, Matcher,
};
use leapme::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 11;
    let domain = Domain::Phones;

    println!("== LEAPME vs baselines: {} ==\n", domain.name());

    let dataset = generate(domain, seed);
    let embeddings =
        train_domain_embeddings(&[domain], &EmbeddingTrainingConfig::default(), seed)
            .expect("embeddings");
    let store = PropertyFeatureStore::build(&dataset, &embeddings);

    let mut rng = StdRng::seed_from_u64(seed);
    let split = split_sources(dataset.sources().len(), 0.8, &mut rng).expect("split");
    let train = training_pairs(&dataset, &split.train, 2, &mut rng);
    let candidates = test_pairs(&dataset, &split.train);
    let gt = test_ground_truth(&dataset, &split.train);
    println!(
        "{} training pairs, {} test candidates, {} test ground-truth matches\n",
        train.len(),
        candidates.len(),
        gt.len()
    );

    println!("{:<12} {:>6} {:>6} {:>6}", "matcher", "P", "R", "F1");
    println!("{}", "-".repeat(34));

    // LEAPME.
    let model = Leapme::fit(&store, &train, &LeapmeConfig::default()).expect("fit");
    let graph = model.predict_graph(&store, &candidates).expect("predict");
    let m = Metrics::from_sets(&graph.matches(0.5), &gt);
    print_row("LEAPME", &m);

    // Baselines through the common Matcher trait.
    let semprop = SemPropMatcher::new(&embeddings);
    let mut matchers: Vec<Box<dyn Matcher>> = vec![
        Box::new(NezhadiMatcher::new()),
        Box::new(AmlMatcher::new()),
        Box::new(FcaMapMatcher::new()),
        Box::new(semprop),
        Box::new(LshMatcher::new()),
    ];
    for matcher in &mut matchers {
        matcher.fit(&dataset, &train); // no-op for the unsupervised ones
        let predicted = matcher.predict(&dataset, &candidates);
        let m = Metrics::from_sets(&predicted, &gt);
        print_row(matcher.name(), &m);
    }

    println!(
        "\nexpected shape (paper Table II): LEAPME leads on F1; AML and FCA-Map\n\
         are near-perfect precision / low recall; LSH ignores names entirely."
    );
}

fn print_row(name: &str, m: &Metrics) {
    println!(
        "{:<12} {:>6.2} {:>6.2} {:>6.2}",
        name, m.precision, m.recall, m.f1
    );
}
