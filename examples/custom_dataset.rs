//! Using LEAPME on your own data, with drop-in embedding files.
//!
//! The synthetic domains are only for reproducing the paper's evaluation;
//! the library works on any property instances. This example shows the
//! two integration points a downstream user needs:
//!
//! 1. building a [`Dataset`] from raw `(source, property, entity, value)`
//!    records plus (optionally partial) reference alignments, and
//! 2. loading word embeddings from a standard GloVe-format text file
//!    (e.g. real `glove.840B.300d.txt` vectors) instead of training them.
//!
//! Run with: `cargo run --release --example custom_dataset`

use leapme::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Raw records as they might arrive from a scraper: one line per
/// property instance.
const RAW: &[(&str, &str, &str, &str)] = &[
    // (source, property, entity, value)
    ("shopA", "megapixels", "cam1", "20.1 MP"),
    ("shopA", "megapixels", "cam2", "24.2 MP"),
    ("shopA", "optical zoom", "cam1", "30x"),
    ("shopA", "optical zoom", "cam2", "8x"),
    ("shopA", "weight", "cam1", "299 g"),
    ("shopB", "camera resolution", "p9", "20 megapixels"),
    ("shopB", "camera resolution", "p10", "16 megapixels"),
    ("shopB", "zoom", "p9", "30x optical"),
    ("shopB", "item weight", "p9", "310 g"),
    ("shopC", "effective pixels", "z1", "20.9"),
    ("shopC", "zoom ratio", "z1", "28x"),
    ("shopC", "weight incl battery", "z1", "305 grams"),
];

/// Known alignments (e.g. from a partially curated ontology). Pairs of
/// aligned properties in the same reference group become training
/// positives.
const ALIGNMENTS: &[(&str, &str, &str)] = &[
    // (source, property, reference)
    ("shopA", "megapixels", "resolution"),
    ("shopB", "camera resolution", "resolution"),
    ("shopC", "effective pixels", "resolution"),
    ("shopA", "optical zoom", "zoom"),
    ("shopB", "zoom", "zoom"),
    ("shopC", "zoom ratio", "zoom"),
    ("shopA", "weight", "weight"),
    ("shopB", "item weight", "weight"),
    ("shopC", "weight incl battery", "weight"),
];

fn build_dataset() -> Dataset {
    let sources: Vec<String> = vec!["shopA".into(), "shopB".into(), "shopC".into()];
    let source_id = |name: &str| {
        SourceId(sources.iter().position(|s| s == name).expect("known source") as u16)
    };
    let instances: Vec<Instance> = RAW
        .iter()
        .map(|&(s, p, e, v)| Instance {
            source: source_id(s),
            property: p.to_string(),
            entity: e.to_string(),
            value: v.to_string(),
        })
        .collect();
    let alignment: BTreeMap<PropertyKey, String> = ALIGNMENTS
        .iter()
        .map(|&(s, p, r)| (PropertyKey::new(source_id(s), p), r.to_string()))
        .collect();
    Dataset::new("my-cameras", sources, instances, alignment).expect("consistent dataset")
}

fn main() {
    println!("== LEAPME on custom data ==\n");

    let dataset = build_dataset();
    let stats = dataset.stats();
    println!(
        "custom dataset: {} sources, {} properties, {} instances",
        stats.sources, stats.properties, stats.instances
    );

    // --- Embeddings: write a tiny GloVe-format file, then load it, the
    // same way you would load real pre-trained vectors. ---
    let dir = std::env::temp_dir().join("leapme_custom_example");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("vectors.txt");
    {
        // In real use this file is glove.840B.300d.txt or similar.
        let mut demo = EmbeddingStore::new(4);
        for (w, v) in [
            ("megapixels", [0.9f32, 0.1, 0.0, 0.0]),
            ("resolution", [0.85, 0.15, 0.0, 0.0]),
            ("pixels", [0.8, 0.2, 0.0, 0.0]),
            ("mp", [0.92, 0.08, 0.0, 0.0]),
            ("zoom", [0.0, 0.9, 0.1, 0.0]),
            ("optical", [0.05, 0.85, 0.1, 0.0]),
            ("ratio", [0.0, 0.7, 0.2, 0.1]),
            ("weight", [0.0, 0.0, 0.9, 0.1]),
            ("grams", [0.0, 0.0, 0.85, 0.15]),
            ("g", [0.0, 0.05, 0.8, 0.15]),
            ("item", [0.1, 0.1, 0.4, 0.4]),
            ("battery", [0.0, 0.1, 0.3, 0.6]),
            ("incl", [0.1, 0.1, 0.3, 0.5]),
            ("camera", [0.4, 0.3, 0.2, 0.1]),
            ("effective", [0.6, 0.2, 0.1, 0.1]),
        ] {
            demo.insert(w, v.to_vec()).expect("dims");
        }
        demo.save_text(&path).expect("save vectors");
    }
    let embeddings = EmbeddingStore::load_text(&path).expect("load vectors");
    println!(
        "loaded {} vectors × {} dims from {}",
        embeddings.len(),
        embeddings.dim(),
        path.display()
    );

    // --- Match: train on shops A+B, match shop C against them. ---
    let store = PropertyFeatureStore::build(&dataset, &embeddings);
    let mut rng = StdRng::seed_from_u64(3);
    let train_sources = [SourceId(0), SourceId(1)];
    let train = training_pairs(&dataset, &train_sources, 2, &mut rng);
    println!("\ntraining on shopA × shopB: {} labeled pairs", train.len());

    // A small network suits a small problem.
    let cfg = LeapmeConfig {
        hidden: vec![16, 8],
        ..LeapmeConfig::default()
    };
    let model = Leapme::fit(&store, &train, &cfg).expect("fit");

    let candidates = test_pairs(&dataset, &train_sources);
    let graph = model.predict_graph(&store, &candidates).expect("predict");

    println!("\nmatches for the new source shopC:");
    for (PropertyPair(a, b), score) in graph.top_k(candidates.len()) {
        if score < 0.5 {
            continue;
        }
        let ok = if dataset.matches(&a, &b) { "✓" } else { "✗" };
        println!("  {ok} [{score:.2}] {} ≈ {}", a, b);
    }

    let gt = test_ground_truth(&dataset, &train_sources);
    let metrics = Metrics::from_sets(&graph.matches(0.5), &gt);
    println!("\n{metrics}");

    std::fs::remove_file(&path).ok();
}
