//! Incremental integration: adding a new source to a live property graph.
//!
//! Knowledge graphs grow source by source (paper §I, §VI). Instead of
//! re-matching everything when a new shop is onboarded, LEAPME scores
//! only the pairs touching the new source and merges them into the
//! existing similarity graph. The example:
//!
//! 1. trains a matcher on the first six TV sources and builds their graph,
//! 2. integrates source 7, reporting which of its properties attach to
//!    existing clusters and which look novel,
//! 3. shows the refreshed unified schema.
//!
//! Run with: `cargo run --release --example incremental_integration`

use leapme::core::fusion::fuse;
use leapme::core::incremental::integrate_source;
use leapme::core::sampling;
use leapme::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 17;
    let domain = Domain::Tvs;

    println!("== incremental source integration ==\n");

    let dataset = generate(domain, seed);
    let embeddings =
        train_domain_embeddings(&[domain], &EmbeddingTrainingConfig::default(), seed)
            .expect("embeddings");
    let store = PropertyFeatureStore::build(&dataset, &embeddings);

    // Phase 1: the "existing" knowledge graph covers sources 0-5.
    let existing: Vec<SourceId> = (0..6).map(SourceId).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let train = sampling::training_pairs(&dataset, &existing, 2, &mut rng);
    let model = Leapme::fit(&store, &train, &LeapmeConfig::default()).expect("fit");
    let mut graph = model
        .predict_graph(&store, &dataset.cross_source_pairs(&existing))
        .expect("initial graph");
    println!(
        "existing graph: {} sources, {} properties, {} matches",
        existing.len(),
        graph.nodes().len(),
        graph.matches(0.5).len()
    );

    // Phase 2: source 6 arrives.
    let newcomer = SourceId(6);
    let outcome =
        integrate_source(&model, &store, &dataset, &mut graph, newcomer).expect("integrate");
    println!(
        "\nintegrated {}: scored {} pairs",
        dataset.sources()[newcomer.0 as usize],
        outcome.scored_pairs
    );
    println!("attached properties ({}):", outcome.attached.len());
    for p in outcome.attached.iter().take(8) {
        let idx = outcome.clustering.cluster_of(p).expect("clustered");
        let mates: Vec<String> = outcome.clustering.clusters()[idx]
            .iter()
            .filter(|q| *q != p)
            .take(2)
            .map(|q| q.name.clone())
            .collect();
        println!("  {:<28} ↳ joins {{{}, …}}", p.name, mates.join(", "));
    }
    println!(
        "novel properties (candidate new KG attributes): {}",
        outcome.novel.len()
    );
    for p in outcome.novel.iter().take(6) {
        println!("  {}", p.name);
    }

    // Phase 3: refreshed unified schema.
    let schema = fuse(&dataset, &outcome.clustering);
    println!(
        "\nunified schema after integration: {} fused properties, {} singletons",
        schema.properties.len(),
        schema.singletons.len()
    );
    for p in schema.properties.iter().take(5) {
        println!(
            "  {:<24} ({} members / {} sources)",
            p.canonical_name,
            p.members.len(),
            p.sources.len()
        );
    }
}
