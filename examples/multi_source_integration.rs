//! Multi-source integration: property clustering for a product KG.
//!
//! The paper motivates LEAPME with knowledge-graph construction: after
//! matching properties pairwise, equivalent properties must be *clustered*
//! so their values can be fused (§VI). This example builds the similarity
//! graph for the headphone dataset, derives clusters with both strategies
//! (connected components vs star clustering), and prints the fused
//! property groups a KG pipeline would consume.
//!
//! Run with: `cargo run --release --example multi_source_integration`

use leapme::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 7;
    let domain = Domain::Headphones;

    println!("== property clustering for knowledge-graph fusion ==\n");

    let dataset = generate(domain, seed);
    let embeddings =
        train_domain_embeddings(&[domain], &EmbeddingTrainingConfig::default(), seed)
            .expect("embeddings");
    let store = PropertyFeatureStore::build(&dataset, &embeddings);

    // Train on most sources; cluster the held-out region.
    let mut rng = StdRng::seed_from_u64(seed);
    let split = split_sources(dataset.sources().len(), 0.8, &mut rng).expect("split");
    let train = training_pairs(&dataset, &split.train, 2, &mut rng);
    let model = Leapme::fit(&store, &train, &LeapmeConfig::default()).expect("fit");

    let candidates = test_pairs(&dataset, &split.train);
    let graph = model.predict_graph(&store, &candidates).expect("predict");
    println!(
        "similarity graph: {} nodes, {} scored edges, {} above threshold",
        graph.nodes().len(),
        graph.len(),
        graph.matches(0.5).len()
    );

    // Compare the two clustering strategies the paper's future work
    // proposes to evaluate.
    for (label, clustering) in [
        ("connected components", connected_components(&graph, 0.5)),
        ("star clustering", star_clustering(&graph, 0.5)),
    ] {
        let m = clustering.pairwise_metrics(&dataset);
        let sizes: Vec<usize> = clustering.non_trivial().map(Vec::len).collect();
        println!(
            "\n{label}: {} clusters ({} non-trivial, largest {}), pairwise {m}",
            clustering.len(),
            sizes.len(),
            sizes.iter().max().copied().unwrap_or(0),
        );
    }

    // Show what fusion would see: the members of the biggest star clusters.
    let clustering = star_clustering(&graph, 0.5);
    let mut clusters: Vec<&Vec<PropertyKey>> = clustering.non_trivial().collect();
    clusters.sort_by_key(|c| std::cmp::Reverse(c.len()));
    println!("\nlargest fused property groups:");
    for cluster in clusters.iter().take(5) {
        println!("  ── group of {} properties:", cluster.len());
        for key in cluster.iter().take(6) {
            let reference = dataset.alignment_of(key).unwrap_or("⟨unaligned⟩");
            println!(
                "     {:<28} from {:<22} (ref: {})",
                key.name,
                dataset.sources()[key.source.0 as usize],
                reference
            );
        }
        if cluster.len() > 6 {
            println!("     … and {} more", cluster.len() - 6);
        }
    }
}
