//! Quickstart: end-to-end LEAPME on the camera dataset.
//!
//! Mirrors the paper's motivating example (Fig. 1): camera properties
//! from many web sources, with differently named but semantically
//! equivalent properties ("megapixels" / "camera resolution" /
//! "effective pixels"). The example
//!
//! 1. generates the 24-source synthetic camera dataset,
//! 2. trains GloVe embeddings on the camera corpus,
//! 3. extracts LEAPME's features,
//! 4. trains the classifier on 80% of the sources,
//! 5. matches the remaining properties and reports P/R/F1,
//! 6. prints a Fig. 1-style sample of discovered matches.
//!
//! Run with: `cargo run --release --example quickstart`

use leapme::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 42;

    println!("== LEAPME quickstart: cameras ==\n");

    // 1. Dataset.
    let dataset = generate(Domain::Cameras, seed);
    let stats = dataset.stats();
    println!(
        "dataset: {} sources, {} properties, {} instances, {} matching pairs",
        stats.sources, stats.properties, stats.instances, stats.matching_pairs
    );

    // 2. Embeddings (offline substitute for pre-trained GloVe).
    println!("training domain embeddings…");
    let embeddings = train_domain_embeddings(
        &[Domain::Cameras],
        &EmbeddingTrainingConfig::default(),
        seed,
    )
    .expect("embedding training");
    println!(
        "embeddings: {} words × {} dims",
        embeddings.len(),
        embeddings.dim()
    );
    // A taste of the learned geometry:
    for word in ["megapixels", "shutter"] {
        let nn: Vec<String> = embeddings
            .nearest(word, 3)
            .into_iter()
            .map(|(w, s)| format!("{w} ({s:.2})"))
            .collect();
        println!("  nearest to {word:12}: {}", nn.join(", "));
    }

    // 3. Features (Algorithm 1 steps 1-4).
    println!("\nextracting features…");
    let store = PropertyFeatureStore::build(&dataset, &embeddings);
    println!(
        "{} property vectors of {} dims (pair vectors: {})",
        store.len(),
        29 + 2 * store.dim(),
        store.full_pair_len()
    );

    // 4. Train on 80% of sources (paper protocol, §V-B).
    let mut rng = StdRng::seed_from_u64(seed);
    let split = split_sources(dataset.sources().len(), 0.8, &mut rng).expect("split");
    let train = training_pairs(&dataset, &split.train, 2, &mut rng);
    let positives = train.iter().filter(|(_, y)| *y).count();
    println!(
        "\ntraining on {} sources: {} pairs ({} positive, {} negative)",
        split.train.len(),
        train.len(),
        positives,
        train.len() - positives
    );
    let model = Leapme::fit(&store, &train, &LeapmeConfig::default()).expect("fit");

    // 5. Evaluate on the rest.
    let candidates = test_pairs(&dataset, &split.train);
    let gt = test_ground_truth(&dataset, &split.train);
    println!(
        "scoring {} candidate pairs over the {} held-out sources…",
        candidates.len(),
        split.test.len()
    );
    let graph = model.predict_graph(&store, &candidates).expect("predict");
    let metrics = Metrics::from_sets(&graph.matches(0.5), &gt);
    println!("\nresult: {metrics}");

    // 6. Fig. 1-style sample: the strongest matches found.
    println!("\nstrongest discovered matches:");
    for (PropertyPair(a, b), score) in graph.top_k(12) {
        let verdict = if dataset.matches(&a, &b) { "✓" } else { "✗" };
        println!(
            "  {verdict} [{score:.2}] {:<30} ≈ {:<30} ({} / {})",
            a.name,
            b.name,
            dataset.sources()[a.source.0 as usize],
            dataset.sources()[b.source.0 as usize],
        );
    }
}
