#!/usr/bin/env bash
# Full verification gate: release build, test suite, lints, allocation
# regression, bench-report sanity, durability (kill-and-resume) drill.
#
#   scripts/verify.sh
#
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
# --workspace matters: the repo root is itself a package (the `leapme`
# facade), so a bare `cargo build` would skip the CLI binary the
# durability drill below runs.
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -p leapme-nn --features alloc-count (zero-allocation regression)"
cargo test -p leapme-nn --features alloc-count -q

echo "==> cargo test -p leapme --features alloc-count (steady-state featurize is alloc-free)"
cargo test -p leapme --features alloc-count -q

echo "==> cargo clippy --workspace -- -D warnings"
# Clippy may be unavailable in minimal toolchains; warn instead of fail.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "warning: clippy not installed; skipping lint step" >&2
fi

echo "==> kernel-equivalence suites: bit-parallel/banded/SIMD/int8 vs reference"
# The PR6 fast paths (Myers bit-vector Levenshtein, banded OSA/Damerau,
# SSE2 embedding lanes, int8 inference) each keep their reference
# implementation in-tree with equivalence tests; run them at both the
# serial and a multi-worker thread count so the dispatch seams are
# covered either way.
for t in 1 4; do
    echo "    LEAPME_THREADS=$t"
    LEAPME_THREADS=$t cargo test -q -p leapme-textsim
    LEAPME_THREADS=$t cargo test -q -p leapme-embedding kernels
    LEAPME_THREADS=$t cargo test -q -p leapme-nn quant
    LEAPME_THREADS=$t cargo test -q -p leapme-features pair_table
    LEAPME_THREADS=$t cargo test -q -p leapme-core quantized
done

echo "==> index suites: HNSW/LSH determinism, recall vs oracle, cancellation"
# The PR7 retrieval stack (deterministic HNSW graph, banded name-LSH,
# index-backed blocking) has its guarantees in crates/core/tests/index.rs
# plus the blocking/index unit tests; run them at both thread counts —
# index construction is serial by design, so the counts must agree.
for t in 1 4; do
    echo "    LEAPME_THREADS=$t"
    LEAPME_THREADS=$t cargo test -q -p leapme-core --test index
    LEAPME_THREADS=$t cargo test -q -p leapme-core --lib -- blocking index
done

echo "==> bench smoke run (regenerates BENCH_PR7.json at the baseline corpus size)"
cargo run --release -p leapme-bench --bin bench -- --sources 12 --out BENCH_PR7.json >/dev/null

echo "==> bench smoke: BENCH_PR7.json parses and records speedups, breakdown, retrieval"
python3 - <<'EOF'
import json, math, sys

with open("BENCH_PR7.json") as f:
    report = json.load(f)

def finite(v):
    return isinstance(v, (int, float)) and math.isfinite(v)

if not isinstance(report.get("parallel_unmeasured"), bool):
    sys.exit("BENCH_PR7.json: parallel_unmeasured flag missing")

for mode in ("serial", "parallel"):
    stage = report[mode]
    for key in ("threads_requested", "threads_effective",
                "build_s", "featurize_s", "train_s", "score_s", "total_s"):
        if key not in stage:
            sys.exit(f"BENCH_PR7.json: {mode}.{key} missing")
    if stage["total_s"] <= 0:
        sys.exit(f"BENCH_PR7.json: {mode}.total_s not positive")

for key in ("speedup_build", "speedup_featurize", "speedup_train",
            "speedup_score", "speedup_total"):
    v = report.get(key)
    if not finite(v) or v <= 0:
        sys.exit(f"BENCH_PR7.json: {key} missing or not a positive number")

bd = report.get("featurize_breakdown")
if not isinstance(bd, dict):
    sys.exit("BENCH_PR7.json: featurize_breakdown section missing")
for key in ("char_token_s", "embedding_average_s", "name_distances_s",
            "name_distances_uncached_s", "assembly_s"):
    v = bd.get(key)
    if not finite(v) or v < 0:
        sys.exit(f"BENCH_PR7.json: featurize_breakdown.{key} missing or negative")
kernels = bd.get("name_kernels")
if not isinstance(kernels, dict):
    sys.exit("BENCH_PR7.json: featurize_breakdown.name_kernels missing")
for key in ("myers_levenshtein_s", "osa_banded_s", "damerau_banded_s",
            "lcs_s", "trigram_s", "trigram_profiles_s", "jaro_winkler_s"):
    if not finite(kernels.get(key)):
        sys.exit(f"BENCH_PR7.json: name_kernels.{key} missing or not finite")
dedupe = bd.get("pair_dedupe")
if not isinstance(dedupe, dict):
    sys.exit("BENCH_PR7.json: featurize_breakdown.pair_dedupe missing")
for key in ("unique_name_forms", "table_entries", "table_hits",
            "string_cache_hits", "string_cache_misses"):
    if key not in dedupe:
        sys.exit(f"BENCH_PR7.json: pair_dedupe.{key} missing")
if dedupe["table_entries"] <= 0 or dedupe["table_hits"] <= 0:
    sys.exit("BENCH_PR7.json: pair-dedupe table recorded no entries/hits — "
             "the name-distance pass did not go through the table")
if dedupe["table_entries"] >= report["pairs"]:
    sys.exit("BENCH_PR7.json: dedupe table computed as many entries as there "
             "are candidate pairs — no deduplication happened")

wc = report.get("warm_cache")
if not isinstance(wc, dict):
    sys.exit("BENCH_PR7.json: warm_cache section missing")
if wc.get("cache_hit") is not True:
    sys.exit("BENCH_PR7.json: warm_cache.cache_hit is not true")
if wc.get("store_identical") is not True:
    sys.exit("BENCH_PR7.json: warm cache reload is not bitwise identical")
if not finite(wc.get("cold_build_s")) or not finite(wc.get("cache_load_s")):
    sys.exit("BENCH_PR7.json: warm_cache timings missing")
if wc["cache_load_s"] >= wc["cold_build_s"]:
    sys.exit("BENCH_PR7.json: cache load is not faster than a cold build")

ckpt = report.get("checkpoint")
if not isinstance(ckpt, dict):
    sys.exit("BENCH_PR7.json: checkpoint overhead section missing")
for key in ("epochs", "fit_s", "fit_checkpointed_s", "overhead_ms_per_epoch"):
    if not finite(ckpt.get(key)):
        sys.exit(f"BENCH_PR7.json: checkpoint.{key} missing or not finite")
if ckpt["epochs"] <= 0 or ckpt["fit_s"] <= 0 or ckpt["fit_checkpointed_s"] <= 0:
    sys.exit("BENCH_PR7.json: checkpoint timings not positive")

quant = report.get("quantized")
if not isinstance(quant, dict):
    sys.exit("BENCH_PR7.json: quantized section missing")
for key in ("score_f32_s", "score_int8_s", "calibration_max_abs_error",
            "full_run_max_abs_error"):
    if not finite(quant.get(key)):
        sys.exit(f"BENCH_PR7.json: quantized.{key} missing or not finite")
if not isinstance(quant.get("used_quantized"), bool):
    sys.exit("BENCH_PR7.json: quantized.used_quantized missing")
# The tolerance contract: when the gate kept the int8 path, the whole
# run must stay within 2x the 0.05 calibration tolerance — the
# calibration block bounds the error statistically, it does not
# enumerate every pair.
if quant["used_quantized"] and quant["full_run_max_abs_error"] > 0.10:
    sys.exit("BENCH_PR7.json: quantized run exceeded the documented tolerance")
if not quant["used_quantized"] and quant["full_run_max_abs_error"] != 0.0:
    sys.exit("BENCH_PR7.json: fallback run must be exactly the f32 scores")

# Sublinear candidate generation (DESIGN.md §12): the four retrieval
# metrics must be recorded, the combined candidate set must stay at or
# under 5% of the full n² space, and the ANN index must recover at
# least 98% of the brute-force oracle's top-k on the sampled slice.
ret = report.get("retrieval")
if not isinstance(ret, dict):
    sys.exit("BENCH_PR7.json: retrieval section missing (was bench run "
             "with --stress 0?)")
for key in ("index_build_s", "lsh_build_s", "queries_per_s",
            "candidates_scored_ratio", "pair_completeness",
            "gt_pair_completeness"):
    if not finite(ret.get(key)):
        sys.exit(f"BENCH_PR7.json: retrieval.{key} missing or not finite")
if ret["stress_properties"] < 100_000:
    sys.exit("BENCH_PR7.json: retrieval section must run at 100k+ properties "
             f"(got {ret['stress_properties']})")
if ret["index_build_s"] <= 0 or ret["queries_per_s"] <= 0:
    sys.exit("BENCH_PR7.json: retrieval timings not positive")
if ret["candidates_combined"] <= 0 or ret["full_space"] <= 0:
    sys.exit("BENCH_PR7.json: retrieval recorded no candidates")
if ret["candidates_scored_ratio"] > 0.05:
    sys.exit(f"BENCH_PR7.json: retrieval scored "
             f"{100 * ret['candidates_scored_ratio']:.2f}% of the full pair "
             "space — the sublinear gate is ≤ 5%")
if ret["pair_completeness"] < 0.98:
    sys.exit(f"BENCH_PR7.json: ANN pair completeness vs the brute-force "
             f"oracle is {ret['pair_completeness']:.4f} — the gate is ≥ 0.98")

vs = [report.get("vs_pr6_serial"), report.get("vs_pr6_parallel")]
recorded = [v for v in vs if v is not None]
if not recorded:
    sys.exit("BENCH_PR7.json: no vs-PR6 comparison recorded "
             "(rerun bench with the baseline's corpus: --sources 12)")
for v in recorded:
    for key in ("threads", "featurize_speedup", "train_speedup", "score_speedup"):
        if key not in v:
            sys.exit(f"BENCH_PR7.json: vs_pr6 comparison missing {key}")
print("BENCH_PR7.json OK:",
      ", ".join(f"{k}={report[k]:.3f}" for k in
                ("speedup_train", "speedup_score")),
      "| vs PR6:",
      ", ".join(f"featurize×{v['featurize_speedup']:.2f} train×{v['train_speedup']:.2f}"
                for v in recorded),
      f"| retrieval {ret['stress_properties']} props:",
      f"build {ret['index_build_s']:.1f}s,",
      f"{ret['queries_per_s']:.0f} q/s,",
      f"{100 * ret['candidates_scored_ratio']:.3f}% of n² scored,",
      f"oracle completeness {ret['pair_completeness']:.3f},",
      f"gt completeness {ret['gt_pair_completeness']:.3f}",
      f"| int8 max|Δp| {quant['full_run_max_abs_error']:.4f}",
      f"| warm cache ×{wc['featurize_speedup']:.1f}")
EOF

echo "==> chaos stage: fault-injection suites under --features faults"
for t in 1 4; do
    echo "    LEAPME_THREADS=$t"
    LEAPME_THREADS=$t cargo test -q -p leapme-faults
    LEAPME_THREADS=$t cargo test -q -p leapme-nn --features faults --test fault_injection
    LEAPME_THREADS=$t cargo test -q -p leapme-core --features faults --test fault_injection
    LEAPME_THREADS=$t cargo test -q -p leapme-core --features faults --lib journal
    LEAPME_THREADS=$t cargo test -q -p leapme --features faults \
        --test chaos --test robustness --test durability
done

echo "==> chaos stage: faults compiled out of the release bench"
if ! grep -q '"faults_enabled": false' BENCH_PR7.json; then
    echo "BENCH_PR7.json does not record faults_enabled=false — the bench" \
         "binary was built with the fault hooks armed" >&2
    exit 1
fi

echo "==> durability drill: SIGKILL mid-training, resume, bitwise-identical model"
LEAPME="./target/release/leapme"
DRILL_DIR="$(mktemp -d)"
trap 'rm -rf "$DRILL_DIR"' EXIT

"$LEAPME" generate --domain tvs --seed 7 --out "$DRILL_DIR/ds.json" >/dev/null
"$LEAPME" embed --domains tvs --dim 8 --epochs 2 --seed 7 \
    --out "$DRILL_DIR/emb.txt" >/dev/null

# Reference: one uninterrupted serial run.
LEAPME_THREADS=1 "$LEAPME" train \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --save "$DRILL_DIR/ref.lmp" >/dev/null

# Interrupted run: per-epoch checkpoints; SIGKILL the *binary itself*
# (not a cargo wrapper) as soon as the first checkpoint lands.
LEAPME_THREADS=1 "$LEAPME" train \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --save "$DRILL_DIR/int.lmp" \
    --checkpoint "$DRILL_DIR/train.ckpt" --checkpoint-every 1 >/dev/null &
TRAIN_PID=$!
for _ in $(seq 1 300); do
    [ -f "$DRILL_DIR/train.ckpt" ] && break
    kill -0 "$TRAIN_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -9 "$TRAIN_PID" 2>/dev/null; then
    echo "    killed training (pid $TRAIN_PID) after its first checkpoint"
fi
wait "$TRAIN_PID" 2>/dev/null || true
if [ ! -f "$DRILL_DIR/train.ckpt" ] && [ ! -f "$DRILL_DIR/int.lmp" ]; then
    echo "durability drill: training died before writing a checkpoint" >&2
    exit 1
fi

# Resume from the checkpoint (or rerun if the race let it finish).
LEAPME_THREADS=1 "$LEAPME" train \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --save "$DRILL_DIR/int.lmp" \
    --checkpoint "$DRILL_DIR/train.ckpt" --resume >/dev/null
if ! cmp -s "$DRILL_DIR/ref.lmp" "$DRILL_DIR/int.lmp"; then
    echo "durability drill: resumed model differs from the uninterrupted one" >&2
    exit 1
fi
echo "    resumed model is bitwise identical to the uninterrupted run"

# A zero-second deadline must checkpoint-and-exit with code 3.
set +e
LEAPME_THREADS=1 "$LEAPME" train \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --save "$DRILL_DIR/never.lmp" --timeout-secs 0 >/dev/null 2>&1
TIMEOUT_CODE=$?
set -e
if [ "$TIMEOUT_CODE" -ne 3 ]; then
    echo "durability drill: --timeout-secs 0 exited $TIMEOUT_CODE, expected 3" >&2
    exit 1
fi
echo "    deadline exit code 3 confirmed"

echo "==> feature-cache drill: warm hit, byte-identical scores, corruption heals"
CACHE="$DRILL_DIR/features.lfc"
LEAPME_THREADS=1 "$LEAPME" match \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --feature-cache "$CACHE" --out "$DRILL_DIR/g1.json" \
    > "$DRILL_DIR/m1.out"
if ! grep -q "feature cache rebuilt" "$DRILL_DIR/m1.out"; then
    echo "feature-cache drill: cold run did not report a cache rebuild" >&2
    exit 1
fi
LEAPME_THREADS=1 "$LEAPME" match \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --feature-cache "$CACHE" --out "$DRILL_DIR/g2.json" \
    > "$DRILL_DIR/m2.out"
if ! grep -q "feature cache hit" "$DRILL_DIR/m2.out"; then
    echo "feature-cache drill: warm run did not report a cache hit" >&2
    exit 1
fi
if ! cmp -s "$DRILL_DIR/g1.json" "$DRILL_DIR/g2.json"; then
    echo "feature-cache drill: warm-cache scores differ from the cold run" >&2
    exit 1
fi
echo "    warm run hit the cache and scored byte-identically"
# Flip one byte in the middle of the cache: the CRC must catch it and
# the run must rebuild cleanly instead of loading garbage.
python3 - "$CACHE" <<'EOF'
import sys
path = sys.argv[1]
with open(path, "r+b") as f:
    data = bytearray(f.read())
    mid = len(data) // 2
    data[mid] ^= 0xFF
    f.seek(0)
    f.write(data)
EOF
LEAPME_THREADS=1 "$LEAPME" match \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --feature-cache "$CACHE" --out "$DRILL_DIR/g3.json" \
    > "$DRILL_DIR/m3.out"
if ! grep -q "feature cache rebuilt" "$DRILL_DIR/m3.out"; then
    echo "feature-cache drill: corrupted cache did not trigger a rebuild" >&2
    exit 1
fi
if ! cmp -s "$DRILL_DIR/g1.json" "$DRILL_DIR/g3.json"; then
    echo "feature-cache drill: post-corruption scores differ" >&2
    exit 1
fi
echo "    corrupted cache healed with a clean rebuild and identical scores"

echo "==> quantized drill: --quantized reports its path and stays near the f32 scores"
LEAPME_THREADS=1 "$LEAPME" match \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --quantized --out "$DRILL_DIR/gq.json" \
    > "$DRILL_DIR/mq.out"
if ! grep -q "quantized scoring:" "$DRILL_DIR/mq.out"; then
    echo "quantized drill: --quantized run did not report which path scored" >&2
    exit 1
fi
# Same seed without the flag: the exact f32 reference graph.
LEAPME_THREADS=1 "$LEAPME" match \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --out "$DRILL_DIR/gf.json" >/dev/null
python3 - "$DRILL_DIR/gq.json" "$DRILL_DIR/gf.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    quant = json.load(f)
with open(sys.argv[2]) as f:
    ref = json.load(f)
def scores(graph):
    # The similarity graph serializes its edge map as a list of
    # [pair, score] entries in BTreeMap (pair) order, shared by both runs.
    return [e[1] for e in graph["edges"]]
q, r = scores(quant), scores(ref)
if len(q) != len(r):
    sys.exit(f"quantized drill: {len(q)} scored pairs vs {len(r)} in the f32 run")
worst = max((abs(a - b) for a, b in zip(q, r)), default=0.0)
# 2x the 0.05 calibration tolerance, same contract the bench asserts.
if worst > 0.10:
    sys.exit(f"quantized drill: max |Δp| {worst:.4f} exceeds the tolerance")
print(f"    quantized scores track f32 within |Δp| {worst:.4f} over {len(q)} pairs")
EOF

echo "==> stress smoke: 100k-property match via sublinear ANN retrieval"
# End-to-end sublinear candidate generation (DESIGN.md §12): the
# in-memory stress generator at 100k properties, HNSW-backed blocking,
# training confined to 16 explicit sources (each source holds 50 of
# ~12.5k reference properties, so a handful of sources would share no
# aligned pairs to train on). The quadratic pair space (~5 × 10⁹ pairs)
# is never enumerated — the run only works because retrieval is
# index-backed, which is exactly what this smoke asserts.
LEAPME_THREADS=1 "$LEAPME" match \
    --stress 100000 --blocking ann --blocking-k 4 \
    --train-sources 0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15 --seed 5 \
    --out "$DRILL_DIR/stress_graph.json" > "$DRILL_DIR/stress.out"
if ! grep -q "blocking(ann): scoring" "$DRILL_DIR/stress.out"; then
    echo "stress smoke: run did not report index-backed blocking stats" >&2
    cat "$DRILL_DIR/stress.out" >&2
    exit 1
fi
if ! grep -q "pair completeness" "$DRILL_DIR/stress.out"; then
    echo "stress smoke: run did not report pair completeness" >&2
    exit 1
fi
if [ ! -s "$DRILL_DIR/stress_graph.json" ]; then
    echo "stress smoke: no similarity graph written" >&2
    exit 1
fi
sed 's/^/    /' "$DRILL_DIR/stress.out" | grep "blocking(ann)"

echo "==> verify OK"
