#!/usr/bin/env bash
# Full verification gate: release build, test suite, lints, allocation
# regression, bench-report sanity.
#
#   scripts/verify.sh
#
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -p leapme-nn --features alloc-count (zero-allocation regression)"
cargo test -p leapme-nn --features alloc-count -q

echo "==> cargo clippy --workspace -- -D warnings"
# Clippy may be unavailable in minimal toolchains; warn instead of fail.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "warning: clippy not installed; skipping lint step" >&2
fi

echo "==> bench smoke run (regenerates BENCH_PR2.json at the PR1 corpus size)"
cargo run --release -p leapme-bench --bin bench -- --sources 12 >/dev/null

echo "==> bench smoke: BENCH_PR2.json parses and records speedups"
python3 - <<'EOF'
import json, math, sys

with open("BENCH_PR2.json") as f:
    report = json.load(f)

for mode in ("serial", "parallel"):
    stage = report[mode]
    for key in ("threads_requested", "threads_effective",
                "build_s", "featurize_s", "train_s", "score_s", "total_s"):
        if key not in stage:
            sys.exit(f"BENCH_PR2.json: {mode}.{key} missing")
    if stage["total_s"] <= 0:
        sys.exit(f"BENCH_PR2.json: {mode}.total_s not positive")

for key in ("speedup_build", "speedup_featurize", "speedup_train",
            "speedup_score", "speedup_total"):
    v = report.get(key)
    if not isinstance(v, (int, float)) or not math.isfinite(v) or v <= 0:
        sys.exit(f"BENCH_PR2.json: {key} missing or not a positive number")

vs = [report.get("vs_pr1_serial"), report.get("vs_pr1_parallel")]
recorded = [v for v in vs if v is not None]
if not recorded:
    sys.exit("BENCH_PR2.json: no vs-PR1 comparison recorded "
             "(rerun bench with the baseline's corpus: --sources 12)")
for v in recorded:
    for key in ("threads", "train_speedup", "score_speedup"):
        if key not in v:
            sys.exit(f"BENCH_PR2.json: vs_pr1 comparison missing {key}")
print("BENCH_PR2.json OK:",
      ", ".join(f"{k}={report[k]:.3f}" for k in
                ("speedup_train", "speedup_score")),
      "| vs PR1:",
      ", ".join(f"train×{v['train_speedup']:.2f} score×{v['score_speedup']:.2f}"
                for v in recorded))
EOF

echo "==> chaos stage: fault-injection suites under --features faults"
for t in 1 4; do
    echo "    LEAPME_THREADS=$t"
    LEAPME_THREADS=$t cargo test -q -p leapme-faults
    LEAPME_THREADS=$t cargo test -q -p leapme-nn --features faults --test fault_injection
    LEAPME_THREADS=$t cargo test -q -p leapme-core --features faults --test fault_injection
    LEAPME_THREADS=$t cargo test -q -p leapme --features faults --test chaos --test robustness
done

echo "==> chaos stage: faults compiled out of the release bench"
if ! grep -q '"faults_enabled": false' BENCH_PR2.json; then
    echo "BENCH_PR2.json does not record faults_enabled=false — the bench" \
         "binary was built with the fault hooks armed" >&2
    exit 1
fi

echo "==> verify OK"
