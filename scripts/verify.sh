#!/usr/bin/env bash
# Full verification gate: release build, test suite, lints, allocation
# regression, bench-report sanity, durability (kill-and-resume) drill.
#
#   scripts/verify.sh
#
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
# --workspace matters: the repo root is itself a package (the `leapme`
# facade), so a bare `cargo build` would skip the CLI binary the
# durability drill below runs.
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -p leapme-nn --features alloc-count (zero-allocation regression)"
cargo test -p leapme-nn --features alloc-count -q

echo "==> cargo clippy --workspace -- -D warnings"
# Clippy may be unavailable in minimal toolchains; warn instead of fail.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "warning: clippy not installed; skipping lint step" >&2
fi

echo "==> bench smoke run (regenerates BENCH_PR4.json at the PR1 corpus size)"
cargo run --release -p leapme-bench --bin bench -- --sources 12 --out BENCH_PR4.json >/dev/null

echo "==> bench smoke: BENCH_PR4.json parses and records speedups + checkpoint overhead"
python3 - <<'EOF'
import json, math, sys

with open("BENCH_PR4.json") as f:
    report = json.load(f)

for mode in ("serial", "parallel"):
    stage = report[mode]
    for key in ("threads_requested", "threads_effective",
                "build_s", "featurize_s", "train_s", "score_s", "total_s"):
        if key not in stage:
            sys.exit(f"BENCH_PR4.json: {mode}.{key} missing")
    if stage["total_s"] <= 0:
        sys.exit(f"BENCH_PR4.json: {mode}.total_s not positive")

for key in ("speedup_build", "speedup_featurize", "speedup_train",
            "speedup_score", "speedup_total"):
    v = report.get(key)
    if not isinstance(v, (int, float)) or not math.isfinite(v) or v <= 0:
        sys.exit(f"BENCH_PR4.json: {key} missing or not a positive number")

ckpt = report.get("checkpoint")
if not isinstance(ckpt, dict):
    sys.exit("BENCH_PR4.json: checkpoint overhead section missing")
for key in ("epochs", "fit_s", "fit_checkpointed_s", "overhead_ms_per_epoch"):
    v = ckpt.get(key)
    if not isinstance(v, (int, float)) or not math.isfinite(v):
        sys.exit(f"BENCH_PR4.json: checkpoint.{key} missing or not finite")
if ckpt["epochs"] <= 0 or ckpt["fit_s"] <= 0 or ckpt["fit_checkpointed_s"] <= 0:
    sys.exit("BENCH_PR4.json: checkpoint timings not positive")

vs = [report.get("vs_pr1_serial"), report.get("vs_pr1_parallel")]
recorded = [v for v in vs if v is not None]
if not recorded:
    sys.exit("BENCH_PR4.json: no vs-PR1 comparison recorded "
             "(rerun bench with the baseline's corpus: --sources 12)")
for v in recorded:
    for key in ("threads", "train_speedup", "score_speedup"):
        if key not in v:
            sys.exit(f"BENCH_PR4.json: vs_pr1 comparison missing {key}")
print("BENCH_PR4.json OK:",
      ", ".join(f"{k}={report[k]:.3f}" for k in
                ("speedup_train", "speedup_score")),
      "| vs PR1:",
      ", ".join(f"train×{v['train_speedup']:.2f} score×{v['score_speedup']:.2f}"
                for v in recorded),
      f"| checkpoint tax {ckpt['overhead_ms_per_epoch']:.2f} ms/epoch")
EOF

echo "==> chaos stage: fault-injection suites under --features faults"
for t in 1 4; do
    echo "    LEAPME_THREADS=$t"
    LEAPME_THREADS=$t cargo test -q -p leapme-faults
    LEAPME_THREADS=$t cargo test -q -p leapme-nn --features faults --test fault_injection
    LEAPME_THREADS=$t cargo test -q -p leapme-core --features faults --test fault_injection
    LEAPME_THREADS=$t cargo test -q -p leapme-core --features faults --lib journal
    LEAPME_THREADS=$t cargo test -q -p leapme --features faults \
        --test chaos --test robustness --test durability
done

echo "==> chaos stage: faults compiled out of the release bench"
if ! grep -q '"faults_enabled": false' BENCH_PR4.json; then
    echo "BENCH_PR4.json does not record faults_enabled=false — the bench" \
         "binary was built with the fault hooks armed" >&2
    exit 1
fi

echo "==> durability drill: SIGKILL mid-training, resume, bitwise-identical model"
LEAPME="./target/release/leapme"
DRILL_DIR="$(mktemp -d)"
trap 'rm -rf "$DRILL_DIR"' EXIT

"$LEAPME" generate --domain tvs --seed 7 --out "$DRILL_DIR/ds.json" >/dev/null
"$LEAPME" embed --domains tvs --dim 8 --epochs 2 --seed 7 \
    --out "$DRILL_DIR/emb.txt" >/dev/null

# Reference: one uninterrupted serial run.
LEAPME_THREADS=1 "$LEAPME" train \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --save "$DRILL_DIR/ref.lmp" >/dev/null

# Interrupted run: per-epoch checkpoints; SIGKILL the *binary itself*
# (not a cargo wrapper) as soon as the first checkpoint lands.
LEAPME_THREADS=1 "$LEAPME" train \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --save "$DRILL_DIR/int.lmp" \
    --checkpoint "$DRILL_DIR/train.ckpt" --checkpoint-every 1 >/dev/null &
TRAIN_PID=$!
for _ in $(seq 1 300); do
    [ -f "$DRILL_DIR/train.ckpt" ] && break
    kill -0 "$TRAIN_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -9 "$TRAIN_PID" 2>/dev/null; then
    echo "    killed training (pid $TRAIN_PID) after its first checkpoint"
fi
wait "$TRAIN_PID" 2>/dev/null || true
if [ ! -f "$DRILL_DIR/train.ckpt" ] && [ ! -f "$DRILL_DIR/int.lmp" ]; then
    echo "durability drill: training died before writing a checkpoint" >&2
    exit 1
fi

# Resume from the checkpoint (or rerun if the race let it finish).
LEAPME_THREADS=1 "$LEAPME" train \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --save "$DRILL_DIR/int.lmp" \
    --checkpoint "$DRILL_DIR/train.ckpt" --resume >/dev/null
if ! cmp -s "$DRILL_DIR/ref.lmp" "$DRILL_DIR/int.lmp"; then
    echo "durability drill: resumed model differs from the uninterrupted one" >&2
    exit 1
fi
echo "    resumed model is bitwise identical to the uninterrupted run"

# A zero-second deadline must checkpoint-and-exit with code 3.
set +e
LEAPME_THREADS=1 "$LEAPME" train \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --save "$DRILL_DIR/never.lmp" --timeout-secs 0 >/dev/null 2>&1
TIMEOUT_CODE=$?
set -e
if [ "$TIMEOUT_CODE" -ne 3 ]; then
    echo "durability drill: --timeout-secs 0 exited $TIMEOUT_CODE, expected 3" >&2
    exit 1
fi
echo "    deadline exit code 3 confirmed"

echo "==> verify OK"
