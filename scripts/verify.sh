#!/usr/bin/env bash
# Full verification gate: release build, test suite, lints.
#
#   scripts/verify.sh
#
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace"
# Clippy may be unavailable in minimal toolchains; warn instead of fail.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets
else
    echo "warning: clippy not installed; skipping lint step" >&2
fi

echo "==> verify OK"
