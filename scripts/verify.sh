#!/usr/bin/env bash
# Full verification gate: release build, test suite, lints, allocation
# regression, bench-report sanity, durability (kill-and-resume) drill.
#
#   scripts/verify.sh
#
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
# --workspace matters: the repo root is itself a package (the `leapme`
# facade), so a bare `cargo build` would skip the CLI binary the
# durability drill below runs.
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -p leapme-nn --features alloc-count (zero-allocation regression)"
cargo test -p leapme-nn --features alloc-count -q

echo "==> cargo test -p leapme --features alloc-count (steady-state featurize is alloc-free)"
cargo test -p leapme --features alloc-count -q

echo "==> cargo clippy --workspace -- -D warnings"
# Clippy may be unavailable in minimal toolchains; warn instead of fail.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "warning: clippy not installed; skipping lint step" >&2
fi

echo "==> bench smoke run (regenerates BENCH_PR5.json at the baseline corpus size)"
cargo run --release -p leapme-bench --bin bench -- --sources 12 --out BENCH_PR5.json >/dev/null

echo "==> bench smoke: BENCH_PR5.json parses and records speedups, breakdown, warm cache"
python3 - <<'EOF'
import json, math, sys

with open("BENCH_PR5.json") as f:
    report = json.load(f)

def finite(v):
    return isinstance(v, (int, float)) and math.isfinite(v)

for mode in ("serial", "parallel"):
    stage = report[mode]
    for key in ("threads_requested", "threads_effective",
                "build_s", "featurize_s", "train_s", "score_s", "total_s"):
        if key not in stage:
            sys.exit(f"BENCH_PR5.json: {mode}.{key} missing")
    if stage["total_s"] <= 0:
        sys.exit(f"BENCH_PR5.json: {mode}.total_s not positive")

for key in ("speedup_build", "speedup_featurize", "speedup_train",
            "speedup_score", "speedup_total"):
    v = report.get(key)
    if not finite(v) or v <= 0:
        sys.exit(f"BENCH_PR5.json: {key} missing or not a positive number")

bd = report.get("featurize_breakdown")
if not isinstance(bd, dict):
    sys.exit("BENCH_PR5.json: featurize_breakdown section missing")
for key in ("char_token_s", "embedding_average_s", "name_distances_s", "assembly_s"):
    v = bd.get(key)
    if not finite(v) or v < 0:
        sys.exit(f"BENCH_PR5.json: featurize_breakdown.{key} missing or negative")

wc = report.get("warm_cache")
if not isinstance(wc, dict):
    sys.exit("BENCH_PR5.json: warm_cache section missing")
if wc.get("cache_hit") is not True:
    sys.exit("BENCH_PR5.json: warm_cache.cache_hit is not true")
if wc.get("store_identical") is not True:
    sys.exit("BENCH_PR5.json: warm cache reload is not bitwise identical")
if not finite(wc.get("cold_build_s")) or not finite(wc.get("cache_load_s")):
    sys.exit("BENCH_PR5.json: warm_cache timings missing")
if wc["cache_load_s"] >= wc["cold_build_s"]:
    sys.exit("BENCH_PR5.json: cache load is not faster than a cold build")

ckpt = report.get("checkpoint")
if not isinstance(ckpt, dict):
    sys.exit("BENCH_PR5.json: checkpoint overhead section missing")
for key in ("epochs", "fit_s", "fit_checkpointed_s", "overhead_ms_per_epoch"):
    if not finite(ckpt.get(key)):
        sys.exit(f"BENCH_PR5.json: checkpoint.{key} missing or not finite")
if ckpt["epochs"] <= 0 or ckpt["fit_s"] <= 0 or ckpt["fit_checkpointed_s"] <= 0:
    sys.exit("BENCH_PR5.json: checkpoint timings not positive")

vs = [report.get("vs_pr4_serial"), report.get("vs_pr4_parallel")]
recorded = [v for v in vs if v is not None]
if not recorded:
    sys.exit("BENCH_PR5.json: no vs-PR4 comparison recorded "
             "(rerun bench with the baseline's corpus: --sources 12)")
for v in recorded:
    for key in ("threads", "featurize_speedup", "train_speedup", "score_speedup"):
        if key not in v:
            sys.exit(f"BENCH_PR5.json: vs_pr4 comparison missing {key}")
print("BENCH_PR5.json OK:",
      ", ".join(f"{k}={report[k]:.3f}" for k in
                ("speedup_train", "speedup_score")),
      "| vs PR4:",
      ", ".join(f"featurize×{v['featurize_speedup']:.2f} train×{v['train_speedup']:.2f}"
                for v in recorded),
      f"| warm cache ×{wc['featurize_speedup']:.1f}",
      f"| checkpoint tax {ckpt['overhead_ms_per_epoch']:.2f} ms/epoch")
EOF

echo "==> chaos stage: fault-injection suites under --features faults"
for t in 1 4; do
    echo "    LEAPME_THREADS=$t"
    LEAPME_THREADS=$t cargo test -q -p leapme-faults
    LEAPME_THREADS=$t cargo test -q -p leapme-nn --features faults --test fault_injection
    LEAPME_THREADS=$t cargo test -q -p leapme-core --features faults --test fault_injection
    LEAPME_THREADS=$t cargo test -q -p leapme-core --features faults --lib journal
    LEAPME_THREADS=$t cargo test -q -p leapme --features faults \
        --test chaos --test robustness --test durability
done

echo "==> chaos stage: faults compiled out of the release bench"
if ! grep -q '"faults_enabled": false' BENCH_PR5.json; then
    echo "BENCH_PR5.json does not record faults_enabled=false — the bench" \
         "binary was built with the fault hooks armed" >&2
    exit 1
fi

echo "==> durability drill: SIGKILL mid-training, resume, bitwise-identical model"
LEAPME="./target/release/leapme"
DRILL_DIR="$(mktemp -d)"
trap 'rm -rf "$DRILL_DIR"' EXIT

"$LEAPME" generate --domain tvs --seed 7 --out "$DRILL_DIR/ds.json" >/dev/null
"$LEAPME" embed --domains tvs --dim 8 --epochs 2 --seed 7 \
    --out "$DRILL_DIR/emb.txt" >/dev/null

# Reference: one uninterrupted serial run.
LEAPME_THREADS=1 "$LEAPME" train \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --save "$DRILL_DIR/ref.lmp" >/dev/null

# Interrupted run: per-epoch checkpoints; SIGKILL the *binary itself*
# (not a cargo wrapper) as soon as the first checkpoint lands.
LEAPME_THREADS=1 "$LEAPME" train \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --save "$DRILL_DIR/int.lmp" \
    --checkpoint "$DRILL_DIR/train.ckpt" --checkpoint-every 1 >/dev/null &
TRAIN_PID=$!
for _ in $(seq 1 300); do
    [ -f "$DRILL_DIR/train.ckpt" ] && break
    kill -0 "$TRAIN_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -9 "$TRAIN_PID" 2>/dev/null; then
    echo "    killed training (pid $TRAIN_PID) after its first checkpoint"
fi
wait "$TRAIN_PID" 2>/dev/null || true
if [ ! -f "$DRILL_DIR/train.ckpt" ] && [ ! -f "$DRILL_DIR/int.lmp" ]; then
    echo "durability drill: training died before writing a checkpoint" >&2
    exit 1
fi

# Resume from the checkpoint (or rerun if the race let it finish).
LEAPME_THREADS=1 "$LEAPME" train \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --save "$DRILL_DIR/int.lmp" \
    --checkpoint "$DRILL_DIR/train.ckpt" --resume >/dev/null
if ! cmp -s "$DRILL_DIR/ref.lmp" "$DRILL_DIR/int.lmp"; then
    echo "durability drill: resumed model differs from the uninterrupted one" >&2
    exit 1
fi
echo "    resumed model is bitwise identical to the uninterrupted run"

# A zero-second deadline must checkpoint-and-exit with code 3.
set +e
LEAPME_THREADS=1 "$LEAPME" train \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --save "$DRILL_DIR/never.lmp" --timeout-secs 0 >/dev/null 2>&1
TIMEOUT_CODE=$?
set -e
if [ "$TIMEOUT_CODE" -ne 3 ]; then
    echo "durability drill: --timeout-secs 0 exited $TIMEOUT_CODE, expected 3" >&2
    exit 1
fi
echo "    deadline exit code 3 confirmed"

echo "==> feature-cache drill: warm hit, byte-identical scores, corruption heals"
CACHE="$DRILL_DIR/features.lfc"
LEAPME_THREADS=1 "$LEAPME" match \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --feature-cache "$CACHE" --out "$DRILL_DIR/g1.json" \
    > "$DRILL_DIR/m1.out"
if ! grep -q "feature cache rebuilt" "$DRILL_DIR/m1.out"; then
    echo "feature-cache drill: cold run did not report a cache rebuild" >&2
    exit 1
fi
LEAPME_THREADS=1 "$LEAPME" match \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --feature-cache "$CACHE" --out "$DRILL_DIR/g2.json" \
    > "$DRILL_DIR/m2.out"
if ! grep -q "feature cache hit" "$DRILL_DIR/m2.out"; then
    echo "feature-cache drill: warm run did not report a cache hit" >&2
    exit 1
fi
if ! cmp -s "$DRILL_DIR/g1.json" "$DRILL_DIR/g2.json"; then
    echo "feature-cache drill: warm-cache scores differ from the cold run" >&2
    exit 1
fi
echo "    warm run hit the cache and scored byte-identically"
# Flip one byte in the middle of the cache: the CRC must catch it and
# the run must rebuild cleanly instead of loading garbage.
python3 - "$CACHE" <<'EOF'
import sys
path = sys.argv[1]
with open(path, "r+b") as f:
    data = bytearray(f.read())
    mid = len(data) // 2
    data[mid] ^= 0xFF
    f.seek(0)
    f.write(data)
EOF
LEAPME_THREADS=1 "$LEAPME" match \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --feature-cache "$CACHE" --out "$DRILL_DIR/g3.json" \
    > "$DRILL_DIR/m3.out"
if ! grep -q "feature cache rebuilt" "$DRILL_DIR/m3.out"; then
    echo "feature-cache drill: corrupted cache did not trigger a rebuild" >&2
    exit 1
fi
if ! cmp -s "$DRILL_DIR/g1.json" "$DRILL_DIR/g3.json"; then
    echo "feature-cache drill: post-corruption scores differ" >&2
    exit 1
fi
echo "    corrupted cache healed with a clean rebuild and identical scores"

echo "==> verify OK"
