#!/usr/bin/env bash
# Full verification gate: release build, test suite, lints, allocation
# regression, bench-report sanity, durability (kill-and-resume) drill.
#
#   scripts/verify.sh
#
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
# --workspace matters: the repo root is itself a package (the `leapme`
# facade), so a bare `cargo build` would skip the CLI binary the
# durability drill below runs.
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -p leapme-nn --features alloc-count (zero-allocation regression)"
cargo test -p leapme-nn --features alloc-count -q

echo "==> cargo test -p leapme --features alloc-count (steady-state featurize is alloc-free)"
cargo test -p leapme --features alloc-count -q

echo "==> cargo clippy --workspace -- -D warnings"
# Clippy may be unavailable in minimal toolchains; warn instead of fail.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "warning: clippy not installed; skipping lint step" >&2
fi

echo "==> kernel-equivalence suites: bit-parallel/banded/SIMD/int8 vs reference"
# The PR6 fast paths (Myers bit-vector Levenshtein, banded OSA/Damerau,
# SSE2 embedding lanes, int8 inference) each keep their reference
# implementation in-tree with equivalence tests; run them at both the
# serial and a multi-worker thread count so the dispatch seams are
# covered either way.
for t in 1 4; do
    echo "    LEAPME_THREADS=$t"
    LEAPME_THREADS=$t cargo test -q -p leapme-textsim
    LEAPME_THREADS=$t cargo test -q -p leapme-embedding kernels
    LEAPME_THREADS=$t cargo test -q -p leapme-nn quant
    LEAPME_THREADS=$t cargo test -q -p leapme-features pair_table
    LEAPME_THREADS=$t cargo test -q -p leapme-core quantized
done

echo "==> index suites: HNSW/LSH determinism, recall vs oracle, cancellation"
# The PR7 retrieval stack (deterministic HNSW graph, banded name-LSH,
# index-backed blocking) has its guarantees in crates/core/tests/index.rs
# plus the blocking/index unit tests; run them at both thread counts —
# index construction is serial by design, so the counts must agree.
for t in 1 4; do
    echo "    LEAPME_THREADS=$t"
    LEAPME_THREADS=$t cargo test -q -p leapme-core --test index
    LEAPME_THREADS=$t cargo test -q -p leapme-core --lib -- blocking index
done

echo "==> bench smoke run (regenerates BENCH_PR7.json at the baseline corpus size)"
cargo run --release -p leapme-bench --bin bench -- --sources 12 --out BENCH_PR7.json >/dev/null

echo "==> service latency bench (regenerates BENCH_PR8.json)"
cargo run --release -p leapme-bench --bin latency -- \
    --clients 3 --requests 20 --out BENCH_PR8.json >/dev/null

echo "==> continual bench (regenerates BENCH_PR9.json)"
cargo run --release -p leapme-bench --bin continual -- --out BENCH_PR9.json >/dev/null 2>&1

echo "==> registry bench (regenerates BENCH_PR10.json)"
cargo run --release -p leapme-bench --bin registry -- --out BENCH_PR10.json >/dev/null 2>&1

echo "==> registry bench: v2 zero-copy open ≥ 10x v1 parse, scores bit-identical, budget held"
python3 - <<'EOF'
import json, sys
with open("BENCH_PR10.json") as f:
    report = json.load(f)
if report.get("faults_enabled") is not False:
    sys.exit("BENCH_PR10.json: faults_enabled is not false — the registry "
             "bench was built with the fault hooks armed")
if report.get("scores_bitwise_identical") is not True:
    sys.exit("BENCH_PR10.json: v1- and v2-loaded models disagree on the "
             "reference workload — zero-copy changed the numbers")
po = report.get("pair_open")
if not isinstance(po, dict):
    sys.exit("BENCH_PR10.json: pair_open section missing")
for key in ("model_v1", "model_v2", "cache_v1", "cache_v2"):
    stats = po.get(key)
    if not isinstance(stats, dict) or stats.get("min_open_us", 0) <= 0:
        sys.exit(f"BENCH_PR10.json: pair_open.{key} missing or not positive")
if po["model_v2"]["open_path"] not in ("mmap", "read"):
    sys.exit(f"BENCH_PR10.json: v2 model opened via "
             f"{po['model_v2']['open_path']!r}, not a v2 container path")
speedup = po.get("pair_open_speedup", 0)
if speedup < 10:
    sys.exit(f"BENCH_PR10.json: pair open speedup {speedup:.2f}x — the "
             "zero-copy gate is ≥ 10x over the v1 parse")
sweep = report.get("domain_sweep")
if not isinstance(sweep, list) or not sweep:
    sys.exit("BENCH_PR10.json: domain_sweep section missing")
for point in sweep:
    if point["served"] != point["domains"]:
        sys.exit(f"BENCH_PR10.json: only {point['served']} of "
                 f"{point['domains']} domains answered under the budget")
    if point["domains"] > 1 and point["evictions"] < 1:
        sys.exit(f"BENCH_PR10.json: {point['domains']} domains under a "
                 f"{point['budget_domains']}-domain budget saw no evictions "
                 "— the resident budget never engaged")
biggest = sweep[-1]
print(f"    pair open x{speedup:.1f} (v1 "
      f"{po['cache_v1']['min_open_us'] + po['model_v1']['min_open_us']:.0f}us"
      f" -> v2 "
      f"{po['cache_v2']['min_open_us'] + po['model_v2']['min_open_us']:.0f}us,"
      f" {po['cache_v2']['open_path']}) | scores bit-identical |"
      f" {biggest['domains']} domains under {biggest['budget_domains']}-domain"
      f" budget: {biggest['evictions']} evictions, all served")
EOF

echo "==> continual bench: BENCH_PR9.json records the quality curve, quarantines, decisions"
python3 - <<'EOF'
import json, math, sys
with open("BENCH_PR9.json") as f:
    report = json.load(f)
if report.get("faults_enabled") is not False:
    sys.exit("BENCH_PR9.json: faults_enabled is not false — the continual "
             "bench was built with the fault hooks armed")
curve = report.get("quality_over_time")
if not isinstance(curve, list) or len(curve) != report["epochs"] + 1:
    sys.exit("BENCH_PR9.json: quality_over_time must have one point per "
             "epoch plus the initial fit")
for p in curve:
    for key in ("epoch", "sources", "f1", "drift_features", "drift_scores",
                "quarantined", "generation"):
        if key not in p:
            sys.exit(f"BENCH_PR9.json: quality point missing {key}")
    if not math.isfinite(p["f1"]):
        sys.exit(f"BENCH_PR9.json: epoch {p['epoch']} F1 is not finite")
if curve[0]["f1"] < 0.5:
    sys.exit(f"BENCH_PR9.json: epoch-0 F1 {curve[0]['f1']:.4f} — the initial "
             "fit never learned the base corpus")
if report["quarantined"] < 1:
    sys.exit("BENCH_PR9.json: the defective arrivals were never quarantined — "
             "the validation gate did not engage")
if report["promotions"] + report["rollbacks"] < 1:
    sys.exit("BENCH_PR9.json: drift never triggered a champion/challenger "
             "decision")
if report["max_drift_features"] <= report["drift_threshold"]:
    sys.exit("BENCH_PR9.json: recorded feature drift never crossed the PSI "
             "threshold — the drifting schedule is not drifting")
last_gen = curve[-1]["generation"]
if last_gen != report["promotions"]:
    sys.exit(f"BENCH_PR9.json: final generation {last_gen} disagrees with "
             f"{report['promotions']} promotion(s) — rollbacks moved the champion")
print(f"    epoch-0 f1 {curve[0]['f1']:.4f} -> final {report['final_f1']:.4f} |"
      f" quarantined {report['quarantined']},"
      f" promotions {report['promotions']}, rollbacks {report['rollbacks']},"
      f" labels {report['labels_used']} |"
      f" peak drift {report['max_drift_features']:.3f}"
      f" (threshold {report['drift_threshold']})")
EOF

echo "==> latency bench: BENCH_PR8.json records latency, shed rate, disarmed faults"
python3 - <<'EOF'
import json, sys
with open("BENCH_PR8.json") as f:
    report = json.load(f)
if report.get("faults_enabled") is not False:
    sys.exit("BENCH_PR8.json: faults_enabled is not false — the latency "
             "bench was built with the fault hooks armed")
steady = report.get("steady")
if not isinstance(steady, dict):
    sys.exit("BENCH_PR8.json: steady section missing")
for key in ("requests", "p50_ms", "p99_ms", "mean_ms", "throughput_rps"):
    v = steady.get(key)
    if not isinstance(v, (int, float)) or v <= 0:
        sys.exit(f"BENCH_PR8.json: steady.{key} missing or not positive")
if steady["p99_ms"] < steady["p50_ms"]:
    sys.exit("BENCH_PR8.json: p99 below p50 — percentile math is broken")
over = report.get("overload")
if not isinstance(over, dict):
    sys.exit("BENCH_PR8.json: overload section missing")
for key in ("attempts", "completed", "shed_responses", "shed_rate"):
    if key not in over:
        sys.exit(f"BENCH_PR8.json: overload.{key} missing")
if over["shed_rate"] <= 0:
    sys.exit("BENCH_PR8.json: overload recorded no shed responses — "
             "admission control never engaged under the flood")
if over["shed_responses"] != over["server_shed_count"]:
    sys.exit("BENCH_PR8.json: client-observed 503s "
             f"({over['shed_responses']}) disagree with the server's shed "
             f"counter ({over['server_shed_count']}) — responses are being "
             "lost on the wire")
print(f"    steady p50 {steady['p50_ms']:.1f}ms p99 {steady['p99_ms']:.1f}ms"
      f" at {steady['throughput_rps']:.0f} req/s |"
      f" overload shed rate {100 * over['shed_rate']:.0f}%"
      f" ({over['shed_responses']} of {over['attempts']} attempts)")
EOF

echo "==> bench smoke: BENCH_PR7.json parses and records speedups, breakdown, retrieval"
python3 - <<'EOF'
import json, math, sys

with open("BENCH_PR7.json") as f:
    report = json.load(f)

def finite(v):
    return isinstance(v, (int, float)) and math.isfinite(v)

if not isinstance(report.get("parallel_unmeasured"), bool):
    sys.exit("BENCH_PR7.json: parallel_unmeasured flag missing")

for mode in ("serial", "parallel"):
    stage = report[mode]
    for key in ("threads_requested", "threads_effective",
                "build_s", "featurize_s", "train_s", "score_s", "total_s"):
        if key not in stage:
            sys.exit(f"BENCH_PR7.json: {mode}.{key} missing")
    if stage["total_s"] <= 0:
        sys.exit(f"BENCH_PR7.json: {mode}.total_s not positive")

for key in ("speedup_build", "speedup_featurize", "speedup_train",
            "speedup_score", "speedup_total"):
    v = report.get(key)
    if not finite(v) or v <= 0:
        sys.exit(f"BENCH_PR7.json: {key} missing or not a positive number")

bd = report.get("featurize_breakdown")
if not isinstance(bd, dict):
    sys.exit("BENCH_PR7.json: featurize_breakdown section missing")
for key in ("char_token_s", "embedding_average_s", "name_distances_s",
            "name_distances_uncached_s", "assembly_s"):
    v = bd.get(key)
    if not finite(v) or v < 0:
        sys.exit(f"BENCH_PR7.json: featurize_breakdown.{key} missing or negative")
kernels = bd.get("name_kernels")
if not isinstance(kernels, dict):
    sys.exit("BENCH_PR7.json: featurize_breakdown.name_kernels missing")
for key in ("myers_levenshtein_s", "osa_banded_s", "damerau_banded_s",
            "lcs_s", "trigram_s", "trigram_profiles_s", "jaro_winkler_s"):
    if not finite(kernels.get(key)):
        sys.exit(f"BENCH_PR7.json: name_kernels.{key} missing or not finite")
dedupe = bd.get("pair_dedupe")
if not isinstance(dedupe, dict):
    sys.exit("BENCH_PR7.json: featurize_breakdown.pair_dedupe missing")
for key in ("unique_name_forms", "table_entries", "table_hits",
            "string_cache_hits", "string_cache_misses"):
    if key not in dedupe:
        sys.exit(f"BENCH_PR7.json: pair_dedupe.{key} missing")
if dedupe["table_entries"] <= 0 or dedupe["table_hits"] <= 0:
    sys.exit("BENCH_PR7.json: pair-dedupe table recorded no entries/hits — "
             "the name-distance pass did not go through the table")
if dedupe["table_entries"] >= report["pairs"]:
    sys.exit("BENCH_PR7.json: dedupe table computed as many entries as there "
             "are candidate pairs — no deduplication happened")

wc = report.get("warm_cache")
if not isinstance(wc, dict):
    sys.exit("BENCH_PR7.json: warm_cache section missing")
if wc.get("cache_hit") is not True:
    sys.exit("BENCH_PR7.json: warm_cache.cache_hit is not true")
if wc.get("store_identical") is not True:
    sys.exit("BENCH_PR7.json: warm cache reload is not bitwise identical")
if not finite(wc.get("cold_build_s")) or not finite(wc.get("cache_load_s")):
    sys.exit("BENCH_PR7.json: warm_cache timings missing")
if wc["cache_load_s"] >= wc["cold_build_s"]:
    sys.exit("BENCH_PR7.json: cache load is not faster than a cold build")

ckpt = report.get("checkpoint")
if not isinstance(ckpt, dict):
    sys.exit("BENCH_PR7.json: checkpoint overhead section missing")
for key in ("epochs", "fit_s", "fit_checkpointed_s", "overhead_ms_per_epoch"):
    if not finite(ckpt.get(key)):
        sys.exit(f"BENCH_PR7.json: checkpoint.{key} missing or not finite")
if ckpt["epochs"] <= 0 or ckpt["fit_s"] <= 0 or ckpt["fit_checkpointed_s"] <= 0:
    sys.exit("BENCH_PR7.json: checkpoint timings not positive")

quant = report.get("quantized")
if not isinstance(quant, dict):
    sys.exit("BENCH_PR7.json: quantized section missing")
for key in ("score_f32_s", "score_int8_s", "calibration_max_abs_error",
            "full_run_max_abs_error"):
    if not finite(quant.get(key)):
        sys.exit(f"BENCH_PR7.json: quantized.{key} missing or not finite")
if not isinstance(quant.get("used_quantized"), bool):
    sys.exit("BENCH_PR7.json: quantized.used_quantized missing")
# The tolerance contract: when the gate kept the int8 path, the whole
# run must stay within 2x the 0.05 calibration tolerance — the
# calibration block bounds the error statistically, it does not
# enumerate every pair.
if quant["used_quantized"] and quant["full_run_max_abs_error"] > 0.10:
    sys.exit("BENCH_PR7.json: quantized run exceeded the documented tolerance")
if not quant["used_quantized"] and quant["full_run_max_abs_error"] != 0.0:
    sys.exit("BENCH_PR7.json: fallback run must be exactly the f32 scores")

# Sublinear candidate generation (DESIGN.md §12): the four retrieval
# metrics must be recorded, the combined candidate set must stay at or
# under 5% of the full n² space, and the ANN index must recover at
# least 98% of the brute-force oracle's top-k on the sampled slice.
ret = report.get("retrieval")
if not isinstance(ret, dict):
    sys.exit("BENCH_PR7.json: retrieval section missing (was bench run "
             "with --stress 0?)")
for key in ("index_build_s", "lsh_build_s", "queries_per_s",
            "candidates_scored_ratio", "pair_completeness",
            "gt_pair_completeness"):
    if not finite(ret.get(key)):
        sys.exit(f"BENCH_PR7.json: retrieval.{key} missing or not finite")
if ret["stress_properties"] < 100_000:
    sys.exit("BENCH_PR7.json: retrieval section must run at 100k+ properties "
             f"(got {ret['stress_properties']})")
if ret["index_build_s"] <= 0 or ret["queries_per_s"] <= 0:
    sys.exit("BENCH_PR7.json: retrieval timings not positive")
if ret["candidates_combined"] <= 0 or ret["full_space"] <= 0:
    sys.exit("BENCH_PR7.json: retrieval recorded no candidates")
if ret["candidates_scored_ratio"] > 0.05:
    sys.exit(f"BENCH_PR7.json: retrieval scored "
             f"{100 * ret['candidates_scored_ratio']:.2f}% of the full pair "
             "space — the sublinear gate is ≤ 5%")
if ret["pair_completeness"] < 0.98:
    sys.exit(f"BENCH_PR7.json: ANN pair completeness vs the brute-force "
             f"oracle is {ret['pair_completeness']:.4f} — the gate is ≥ 0.98")

vs = [report.get("vs_pr6_serial"), report.get("vs_pr6_parallel")]
recorded = [v for v in vs if v is not None]
if not recorded:
    sys.exit("BENCH_PR7.json: no vs-PR6 comparison recorded "
             "(rerun bench with the baseline's corpus: --sources 12)")
for v in recorded:
    for key in ("threads", "featurize_speedup", "train_speedup", "score_speedup"):
        if key not in v:
            sys.exit(f"BENCH_PR7.json: vs_pr6 comparison missing {key}")
print("BENCH_PR7.json OK:",
      ", ".join(f"{k}={report[k]:.3f}" for k in
                ("speedup_train", "speedup_score")),
      "| vs PR6:",
      ", ".join(f"featurize×{v['featurize_speedup']:.2f} train×{v['train_speedup']:.2f}"
                for v in recorded),
      f"| retrieval {ret['stress_properties']} props:",
      f"build {ret['index_build_s']:.1f}s,",
      f"{ret['queries_per_s']:.0f} q/s,",
      f"{100 * ret['candidates_scored_ratio']:.3f}% of n² scored,",
      f"oracle completeness {ret['pair_completeness']:.3f},",
      f"gt completeness {ret['gt_pair_completeness']:.3f}",
      f"| int8 max|Δp| {quant['full_run_max_abs_error']:.4f}",
      f"| warm cache ×{wc['featurize_speedup']:.1f}")
EOF

echo "==> chaos stage: fault-injection suites under --features faults"
for t in 1 4; do
    echo "    LEAPME_THREADS=$t"
    LEAPME_THREADS=$t cargo test -q -p leapme-faults
    LEAPME_THREADS=$t cargo test -q -p leapme-nn --features faults --test fault_injection
    LEAPME_THREADS=$t cargo test -q -p leapme-core --features faults --test fault_injection
    LEAPME_THREADS=$t cargo test -q -p leapme-core --features faults --lib journal
    LEAPME_THREADS=$t cargo test -q -p leapme-core --features faults --lib continual
    LEAPME_THREADS=$t cargo test -q -p leapme --features faults \
        --test chaos --test robustness --test durability --test serve_chaos \
        --test continual_chaos
done

echo "==> chaos stage: faults compiled out of the release bench"
for bench_json in BENCH_PR7.json BENCH_PR8.json BENCH_PR9.json BENCH_PR10.json; do
    if ! grep -q '"faults_enabled": false' "$bench_json"; then
        echo "$bench_json does not record faults_enabled=false — the bench" \
             "binary was built with the fault hooks armed" >&2
        exit 1
    fi
done

echo "==> durability drill: SIGKILL mid-training, resume, bitwise-identical model"
LEAPME="./target/release/leapme"
DRILL_DIR="$(mktemp -d)"
trap 'rm -rf "$DRILL_DIR"' EXIT

"$LEAPME" generate --domain tvs --seed 7 --out "$DRILL_DIR/ds.json" >/dev/null
"$LEAPME" embed --domains tvs --dim 8 --epochs 2 --seed 7 \
    --out "$DRILL_DIR/emb.txt" >/dev/null

# Reference: one uninterrupted serial run.
LEAPME_THREADS=1 "$LEAPME" train \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --save "$DRILL_DIR/ref.lmp" >/dev/null

# Interrupted run: per-epoch checkpoints; SIGKILL the *binary itself*
# (not a cargo wrapper) as soon as the first checkpoint lands.
LEAPME_THREADS=1 "$LEAPME" train \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --save "$DRILL_DIR/int.lmp" \
    --checkpoint "$DRILL_DIR/train.ckpt" --checkpoint-every 1 >/dev/null &
TRAIN_PID=$!
for _ in $(seq 1 300); do
    [ -f "$DRILL_DIR/train.ckpt" ] && break
    kill -0 "$TRAIN_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -9 "$TRAIN_PID" 2>/dev/null; then
    echo "    killed training (pid $TRAIN_PID) after its first checkpoint"
fi
wait "$TRAIN_PID" 2>/dev/null || true
if [ ! -f "$DRILL_DIR/train.ckpt" ] && [ ! -f "$DRILL_DIR/int.lmp" ]; then
    echo "durability drill: training died before writing a checkpoint" >&2
    exit 1
fi

# Resume from the checkpoint (or rerun if the race let it finish).
LEAPME_THREADS=1 "$LEAPME" train \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --save "$DRILL_DIR/int.lmp" \
    --checkpoint "$DRILL_DIR/train.ckpt" --resume >/dev/null
if ! cmp -s "$DRILL_DIR/ref.lmp" "$DRILL_DIR/int.lmp"; then
    echo "durability drill: resumed model differs from the uninterrupted one" >&2
    exit 1
fi
echo "    resumed model is bitwise identical to the uninterrupted run"

# A zero-second deadline must checkpoint-and-exit with code 3.
set +e
LEAPME_THREADS=1 "$LEAPME" train \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --save "$DRILL_DIR/never.lmp" --timeout-secs 0 >/dev/null 2>&1
TIMEOUT_CODE=$?
set -e
if [ "$TIMEOUT_CODE" -ne 3 ]; then
    echo "durability drill: --timeout-secs 0 exited $TIMEOUT_CODE, expected 3" >&2
    exit 1
fi
echo "    deadline exit code 3 confirmed"

echo "==> feature-cache drill: warm hit, byte-identical scores, corruption heals"
CACHE="$DRILL_DIR/features.lfc"
LEAPME_THREADS=1 "$LEAPME" match \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --feature-cache "$CACHE" --out "$DRILL_DIR/g1.json" \
    > "$DRILL_DIR/m1.out"
if ! grep -q "feature cache rebuilt" "$DRILL_DIR/m1.out"; then
    echo "feature-cache drill: cold run did not report a cache rebuild" >&2
    exit 1
fi
LEAPME_THREADS=1 "$LEAPME" match \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --feature-cache "$CACHE" --out "$DRILL_DIR/g2.json" \
    > "$DRILL_DIR/m2.out"
if ! grep -q "feature cache hit" "$DRILL_DIR/m2.out"; then
    echo "feature-cache drill: warm run did not report a cache hit" >&2
    exit 1
fi
if ! cmp -s "$DRILL_DIR/g1.json" "$DRILL_DIR/g2.json"; then
    echo "feature-cache drill: warm-cache scores differ from the cold run" >&2
    exit 1
fi
echo "    warm run hit the cache and scored byte-identically"
# Flip one byte in the middle of the cache: the CRC must catch it and
# the run must rebuild cleanly instead of loading garbage.
python3 - "$CACHE" <<'EOF'
import sys
path = sys.argv[1]
with open(path, "r+b") as f:
    data = bytearray(f.read())
    mid = len(data) // 2
    data[mid] ^= 0xFF
    f.seek(0)
    f.write(data)
EOF
LEAPME_THREADS=1 "$LEAPME" match \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --feature-cache "$CACHE" --out "$DRILL_DIR/g3.json" \
    > "$DRILL_DIR/m3.out"
if ! grep -q "feature cache rebuilt" "$DRILL_DIR/m3.out"; then
    echo "feature-cache drill: corrupted cache did not trigger a rebuild" >&2
    exit 1
fi
if ! cmp -s "$DRILL_DIR/g1.json" "$DRILL_DIR/g3.json"; then
    echo "feature-cache drill: post-corruption scores differ" >&2
    exit 1
fi
echo "    corrupted cache healed with a clean rebuild and identical scores"

echo "==> quantized drill: --quantized reports its path and stays near the f32 scores"
LEAPME_THREADS=1 "$LEAPME" match \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --quantized --out "$DRILL_DIR/gq.json" \
    > "$DRILL_DIR/mq.out"
if ! grep -q "quantized scoring:" "$DRILL_DIR/mq.out"; then
    echo "quantized drill: --quantized run did not report which path scored" >&2
    exit 1
fi
# Same seed without the flag: the exact f32 reference graph.
LEAPME_THREADS=1 "$LEAPME" match \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 5 --out "$DRILL_DIR/gf.json" >/dev/null
python3 - "$DRILL_DIR/gq.json" "$DRILL_DIR/gf.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    quant = json.load(f)
with open(sys.argv[2]) as f:
    ref = json.load(f)
def scores(graph):
    # The similarity graph serializes its edge map as a list of
    # [pair, score] entries in BTreeMap (pair) order, shared by both runs.
    return [e[1] for e in graph["edges"]]
q, r = scores(quant), scores(ref)
if len(q) != len(r):
    sys.exit(f"quantized drill: {len(q)} scored pairs vs {len(r)} in the f32 run")
worst = max((abs(a - b) for a, b in zip(q, r)), default=0.0)
# 2x the 0.05 calibration tolerance, same contract the bench asserts.
if worst > 0.10:
    sys.exit(f"quantized drill: max |Δp| {worst:.4f} exceeds the tolerance")
print(f"    quantized scores track f32 within |Δp| {worst:.4f} over {len(q)} pairs")
EOF

echo "==> stress smoke: 100k-property match via sublinear ANN retrieval"
# End-to-end sublinear candidate generation (DESIGN.md §12): the
# in-memory stress generator at 100k properties, HNSW-backed blocking,
# training confined to 16 explicit sources (each source holds 50 of
# ~12.5k reference properties, so a handful of sources would share no
# aligned pairs to train on). The quadratic pair space (~5 × 10⁹ pairs)
# is never enumerated — the run only works because retrieval is
# index-backed, which is exactly what this smoke asserts.
LEAPME_THREADS=1 "$LEAPME" match \
    --stress 100000 --blocking ann --blocking-k 4 \
    --train-sources 0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15 --seed 5 \
    --out "$DRILL_DIR/stress_graph.json" > "$DRILL_DIR/stress.out"
if ! grep -q "blocking(ann): scoring" "$DRILL_DIR/stress.out"; then
    echo "stress smoke: run did not report index-backed blocking stats" >&2
    cat "$DRILL_DIR/stress.out" >&2
    exit 1
fi
if ! grep -q "pair completeness" "$DRILL_DIR/stress.out"; then
    echo "stress smoke: run did not report pair completeness" >&2
    exit 1
fi
if [ ! -s "$DRILL_DIR/stress_graph.json" ]; then
    echo "stress smoke: no similarity graph written" >&2
    exit 1
fi
sed 's/^/    /' "$DRILL_DIR/stress.out" | grep "blocking(ann)"

echo "==> serve drill: concurrent requests, injected torn request, SIGTERM drain"
SERVE_PID=""
# NB: guard the kill — an empty pid would expand to `kill 0` (the whole
# process group, this script included).
trap 'if [ -n "${SERVE_PID:-}" ]; then kill "$SERVE_PID" 2>/dev/null || true; fi; rm -rf "$DRILL_DIR"' EXIT
"$LEAPME" serve \
    --model "$DRILL_DIR/ref.lmp" --dataset "$DRILL_DIR/ds.json" \
    --embeddings "$DRILL_DIR/emb.txt" --addr 127.0.0.1:0 \
    --workers 2 --journal "$DRILL_DIR/serve.journal" \
    > "$DRILL_DIR/serve.out" &
SERVE_PID=$!
SERVE_URL=""
for _ in $(seq 1 300); do
    SERVE_URL="$(sed -n 's/^leapme serve listening on \(http:[^ ]*\).*/\1/p' \
        "$DRILL_DIR/serve.out" 2>/dev/null || true)"
    [ -n "$SERVE_URL" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.1
done
if [ -z "$SERVE_URL" ]; then
    echo "serve drill: daemon never reported a listening address" >&2
    cat "$DRILL_DIR/serve.out" >&2
    exit 1
fi

python3 - "$SERVE_URL" <<'EOF'
import http.client, json, socket, sys, threading, urllib.parse

url = urllib.parse.urlparse(sys.argv[1])
host, port = url.hostname, url.port
failures = []

def roundtrip(method, path, body=None):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request(method, path, body=body,
                     headers={"content-type": "application/json"} if body else {})
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()

# Concurrent scripted requests: interleaved health probes and full
# /match runs; every /match answer must be the same bytes (single-flight
# coalescing or not, the resident generation never changes here).
match_bodies = []
lock = threading.Lock()
def health_worker():
    for _ in range(5):
        status, _ = roundtrip("GET", "/healthz")
        if status != 200:
            with lock:
                failures.append(f"/healthz returned {status} under load")
def match_worker():
    status, body = roundtrip("POST", "/match")
    with lock:
        if status != 200:
            failures.append(f"/match returned {status}")
        else:
            match_bodies.append(body)
threads = [threading.Thread(target=health_worker) for _ in range(2)]
threads += [threading.Thread(target=match_worker) for _ in range(3)]
for t in threads: t.start()
for t in threads: t.join()
if failures:
    sys.exit("serve drill: " + "; ".join(failures))
if len(set(match_bodies)) != 1:
    sys.exit("serve drill: concurrent /match responses were not identical")
json.loads(match_bodies[0])  # must be a parseable similarity graph

# Injected client fault: a torn request — headers promise a body that
# never arrives, then the peer vanishes. The server must absorb it.
s = socket.create_connection((host, port), timeout=10)
s.sendall(b"POST /score HTTP/1.1\r\ncontent-length: 400\r\n\r\n{\"pairs\":")
s.close()

# The daemon survives the fault and still answers.
status, body = roundtrip("GET", "/readyz")
if status != 200:
    sys.exit(f"serve drill: /readyz returned {status} after torn request")
ready = json.loads(body)
if ready.get("status") != "ready":
    sys.exit(f"serve drill: unexpected readiness body {ready!r}")
print(f"    {len(match_bodies)} identical /match responses"
      f" ({len(match_bodies[0])} bytes), torn request absorbed")
EOF

kill -TERM "$SERVE_PID"
SERVE_RC=0
wait "$SERVE_PID" || SERVE_RC=$?
SERVE_PID=""
if [ "$SERVE_RC" -ne 0 ]; then
    echo "serve drill: daemon exited $SERVE_RC after SIGTERM (want 0)" >&2
    cat "$DRILL_DIR/serve.out" >&2
    exit 1
fi
if ! grep -q "drained cleanly" "$DRILL_DIR/serve.out"; then
    echo "serve drill: daemon did not report a clean drain" >&2
    cat "$DRILL_DIR/serve.out" >&2
    exit 1
fi
if ! grep -q '"event":"serve.shutdown"' "$DRILL_DIR/serve.journal"; then
    echo "serve drill: journal has no serve.shutdown record" >&2
    exit 1
fi

echo "==> continual drill: drifting schedule, quarantine, gated refit, journaled rollback"
# The same deterministic scenario BENCH_PR9.json records: every third
# arrival is defective (the gate must quarantine it), drift crosses the
# PSI threshold (refits must trigger), and at least one challenger
# regresses (the holdout gate must roll it back) — all journaled.
CONT_FLAGS="--properties 220 --epochs 3 --sources-per-epoch 2 \
    --properties-per-source 25 --naming-drift 0.3 --value-drift 0.4 \
    --corrupt-every 3 --label-budget 48 --seed 42"
# shellcheck disable=SC2086
"$LEAPME" continual $CONT_FLAGS \
    --journal "$DRILL_DIR/continual.journal" \
    --out "$DRILL_DIR/continual.json" > "$DRILL_DIR/continual.out"
if ! grep -q "quarantine epoch=" "$DRILL_DIR/continual.out"; then
    echo "continual drill: no source was quarantined" >&2
    cat "$DRILL_DIR/continual.out" >&2
    exit 1
fi
for event in quarantine refit-start rollback; do
    if ! grep -q "\"event\":\"$event\"" "$DRILL_DIR/continual.journal"; then
        echo "continual drill: journal has no $event record" >&2
        exit 1
    fi
done
sed -n 's/^\(quarantined=.*\)$/    \1/p' "$DRILL_DIR/continual.out"

# Crash-resume: a run stopped after epoch 2 and resumed over the same
# journal must reproduce the uninterrupted report byte for byte — every
# journaled decision is honored, none is journaled twice.
# shellcheck disable=SC2086
"$LEAPME" continual $CONT_FLAGS \
    --journal "$DRILL_DIR/resume.journal" --stop-after-epoch 2 \
    --out "$DRILL_DIR/partial.json" >/dev/null
# shellcheck disable=SC2086
"$LEAPME" continual $CONT_FLAGS \
    --journal "$DRILL_DIR/resume.journal" \
    --out "$DRILL_DIR/resumed.json" >/dev/null
if ! cmp -s "$DRILL_DIR/continual.json" "$DRILL_DIR/resumed.json"; then
    echo "continual drill: resumed report differs from the uninterrupted run" >&2
    exit 1
fi
for event in promote rollback; do
    UNINTERRUPTED=$(grep -c "\"event\":\"$event\"" "$DRILL_DIR/continual.journal" || true)
    RESUMED=$(grep -c "\"event\":\"$event\"" "$DRILL_DIR/resume.journal" || true)
    if [ "$UNINTERRUPTED" != "$RESUMED" ]; then
        echo "continual drill: resumed journal has $RESUMED $event record(s)," \
             "uninterrupted has $UNINTERRUPTED — decisions were re-journaled" >&2
        exit 1
    fi
done
echo "    resumed report is bitwise identical; journaled decisions honored once"

echo "==> snapshot drill: SIGKILL after integrate, restart recovers the generation bitwise"
SNAP="$DRILL_DIR/resident.snap"
"$LEAPME" serve \
    --model "$DRILL_DIR/ref.lmp" --dataset "$DRILL_DIR/ds.json" \
    --embeddings "$DRILL_DIR/emb.txt" --addr 127.0.0.1:0 \
    --workers 2 --snapshot "$SNAP" \
    > "$DRILL_DIR/snap1.out" &
SERVE_PID=$!
SERVE_URL=""
for _ in $(seq 1 300); do
    SERVE_URL="$(sed -n 's/^leapme serve listening on \(http:[^ ]*\).*/\1/p' \
        "$DRILL_DIR/snap1.out" 2>/dev/null || true)"
    [ -n "$SERVE_URL" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.1
done
if [ -z "$SERVE_URL" ]; then
    echo "snapshot drill: daemon never reported a listening address" >&2
    cat "$DRILL_DIR/snap1.out" >&2
    exit 1
fi
python3 - "$SERVE_URL" <<'EOF'
import http.client, json, sys, urllib.parse
url = urllib.parse.urlparse(sys.argv[1])
csv = ("source,property,entity,value\n"
       "drillshop,screen size,e1,55 inch\n"
       "drillshop,resolution,e1,3840x2160\n")
conn = http.client.HTTPConnection(url.hostname, url.port, timeout=60)
conn.request("POST", "/integrate-source", body=csv,
             headers={"content-type": "text/csv"})
resp = conn.getresponse()
body = resp.read()
if resp.status != 200:
    sys.exit(f"snapshot drill: integrate returned {resp.status}: {body!r}")
if json.loads(body).get("generation") != 1:
    sys.exit(f"snapshot drill: expected generation 1, got {body!r}")
print("    integrated drillshop at generation 1")
EOF
# SIGKILL: no drain, no goodbye — the snapshot on disk is all that's left.
kill -9 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
if [ ! -s "$SNAP" ]; then
    echo "snapshot drill: no snapshot on disk after the integration" >&2
    exit 1
fi
cp "$SNAP" "$DRILL_DIR/resident.snap.before"

"$LEAPME" serve \
    --model "$DRILL_DIR/ref.lmp" --dataset "$DRILL_DIR/ds.json" \
    --embeddings "$DRILL_DIR/emb.txt" --addr 127.0.0.1:0 \
    --workers 2 --snapshot "$SNAP" \
    > "$DRILL_DIR/snap2.out" &
SERVE_PID=$!
RECOVERED=""
for _ in $(seq 1 300); do
    RECOVERED="$(grep "recovered snapshot generation=" "$DRILL_DIR/snap2.out" 2>/dev/null || true)"
    [ -n "$RECOVERED" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.1
done
if ! grep -q "recovered snapshot generation=1" "$DRILL_DIR/snap2.out"; then
    echo "snapshot drill: restart did not recover generation 1" >&2
    cat "$DRILL_DIR/snap2.out" >&2
    exit 1
fi
if ! cmp -s "$SNAP" "$DRILL_DIR/resident.snap.before"; then
    echo "snapshot drill: recovery modified the snapshot file" >&2
    exit 1
fi
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
SERVE_PID=""
echo "    restart recovered generation 1; snapshot bytes unchanged"

echo "==> registry drill: inspect verifies every section, corrupt slab caught, heals on restore"
REG="$DRILL_DIR/registry"
mkdir -p "$REG/alpha" "$REG/beta"
cp "$DRILL_DIR/ref.lmp" "$REG/alpha/model.lmp"
cp "$DRILL_DIR/ds.json" "$REG/alpha/dataset.json"
cp "$CACHE" "$REG/alpha/features.lfc"
cp "$DRILL_DIR/ref.lmp" "$REG/beta/model.lmp"
cp "$DRILL_DIR/ds.json" "$REG/beta/dataset.json"
cp "$DRILL_DIR/emb.txt" "$REG/beta/embeddings.txt"
"$LEAPME" registry --dir "$REG" > "$DRILL_DIR/reg1.out"
for d in alpha beta; do
    if ! grep -q "^$d: .*verified=full" "$DRILL_DIR/reg1.out"; then
        echo "registry drill: inspect did not report domain $d verified" >&2
        cat "$DRILL_DIR/reg1.out" >&2
        exit 1
    fi
done
# Flip one byte deep inside the vector slab — past everything the lazy
# zero-copy open touches. The resident fault-in would map this file
# happily; the inspect sweep must refuse it, typed.
cp "$REG/alpha/features.lfc" "$DRILL_DIR/features.lfc.pristine"
python3 - "$REG/alpha/features.lfc" <<'EOF'
import sys
path = sys.argv[1]
with open(path, "r+b") as f:
    data = bytearray(f.read())
    data[len(data) - 64] ^= 0xFF
    f.seek(0)
    f.write(data)
EOF
set +e
"$LEAPME" registry --dir "$REG" > "$DRILL_DIR/reg2.out" 2>&1
REG_RC=$?
set -e
if [ "$REG_RC" -eq 0 ]; then
    echo "registry drill: inspect accepted a corrupted vector slab" >&2
    cat "$DRILL_DIR/reg2.out" >&2
    exit 1
fi
if ! grep -qi "checksum" "$DRILL_DIR/reg2.out"; then
    echo "registry drill: corruption failure was not a typed checksum error" >&2
    cat "$DRILL_DIR/reg2.out" >&2
    exit 1
fi
cp "$DRILL_DIR/features.lfc.pristine" "$REG/alpha/features.lfc"
"$LEAPME" registry --dir "$REG" >/dev/null
echo "    corrupt slab rejected with a checksum error; pristine copy verifies again"

echo "==> registry hot-swap drill: serve --models, per-domain routing, /reload swaps live"
# A second model trained at a different seed: the swap must visibly
# change what the domain serves.
LEAPME_THREADS=1 "$LEAPME" train \
    --dataset "$DRILL_DIR/ds.json" --embeddings "$DRILL_DIR/emb.txt" \
    --seed 6 --save "$DRILL_DIR/alt.lmp" >/dev/null
"$LEAPME" serve \
    --models "$REG" --addr 127.0.0.1:0 --workers 2 \
    --journal "$DRILL_DIR/regserve.journal" \
    > "$DRILL_DIR/regserve.out" &
SERVE_PID=$!
SERVE_URL=""
for _ in $(seq 1 300); do
    SERVE_URL="$(sed -n 's/^leapme serve listening on \(http:[^ ]*\).*/\1/p' \
        "$DRILL_DIR/regserve.out" 2>/dev/null || true)"
    [ -n "$SERVE_URL" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.1
done
if [ -z "$SERVE_URL" ]; then
    echo "registry hot-swap drill: daemon never reported a listening address" >&2
    cat "$DRILL_DIR/regserve.out" >&2
    exit 1
fi
if ! grep -q "registry domains=2" "$DRILL_DIR/regserve.out"; then
    echo "registry hot-swap drill: daemon did not report 2 registry domains" >&2
    cat "$DRILL_DIR/regserve.out" >&2
    exit 1
fi
python3 - "$SERVE_URL" "$REG" "$DRILL_DIR/alt.lmp" <<'EOF'
import http.client, json, shutil, sys, urllib.parse

url = urllib.parse.urlparse(sys.argv[1])
reg_root, alt_model = sys.argv[2], sys.argv[3]

def roundtrip(method, path, body=None, model=None):
    conn = http.client.HTTPConnection(url.hostname, url.port, timeout=60)
    try:
        headers = {}
        if body:
            headers["content-type"] = "application/json"
        if model is not None:
            headers["x-leapme-model"] = model
        conn.request(method, path, body=body, headers=headers)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()

# Typed selector errors: unknown domain is a 404, garbage selector a 400.
# `/match` routes on the x-leapme-model header; `/score` also accepts
# the body's `model` field.
status, body = roundtrip("POST", "/match", model="nope")
if status != 404 or b"unknown-model" not in body:
    sys.exit(f"hot-swap drill: unknown model gave {status}: {body!r}")
status, body = roundtrip("POST", "/match", model="bad name!")
if status != 400 or b"bad-model" not in body:
    sys.exit(f"hot-swap drill: invalid selector gave {status}: {body!r}")
status, body = roundtrip("POST", "/score",
                         json.dumps({"model": "nope", "pairs": []}))
if status != 404 or b"unknown-model" not in body:
    sys.exit(f"hot-swap drill: /score body selector gave {status}: {body!r}")

# Both domains answer, routed by the header selector.
graphs = {}
for name in ("alpha", "beta"):
    status, body = roundtrip("POST", "/match", model=name)
    if status != 200:
        sys.exit(f"hot-swap drill: /match {name} returned {status}: {body[:200]!r}")
    graphs[name] = body

# Swap alpha's model on disk and /reload: the generation must bump and
# the served scores must change (the alternate seed trains a different
# network), while beta stays untouched.
shutil.copyfile(alt_model, f"{reg_root}/alpha/model.lmp")
status, body = roundtrip("POST", "/reload", json.dumps({"model": "alpha"}))
if status != 200:
    sys.exit(f"hot-swap drill: /reload returned {status}: {body!r}")
reload_info = json.loads(body)
if reload_info.get("model") != "alpha" or reload_info.get("generation", 0) < 1:
    sys.exit(f"hot-swap drill: unexpected reload response {reload_info!r}")
status, after = roundtrip("POST", "/match", model="alpha")
if status != 200:
    sys.exit(f"hot-swap drill: post-swap /match returned {status}")
if after == graphs["alpha"]:
    sys.exit("hot-swap drill: alpha served identical scores after the swap — "
             "the reload never took effect")
status, beta_after = roundtrip("POST", "/match", model="beta")
if status != 200 or beta_after != graphs["beta"]:
    sys.exit("hot-swap drill: the alpha swap disturbed beta's scores")

# /metrics carries the per-domain registry stats and counted the reload.
status, body = roundtrip("GET", "/metrics")
metrics = json.loads(body)
registry = metrics.get("registry")
if not isinstance(registry, dict) or len(registry.get("domains", [])) != 2:
    sys.exit(f"hot-swap drill: /metrics registry section wrong: {registry!r}")
if metrics.get("reloads", 0) < 1:
    sys.exit("hot-swap drill: /metrics did not count the reload")
gens = {d["name"]: d["generation"] for d in registry["domains"]}
print(f"    routed both domains, swap bumped alpha to generation "
      f"{gens.get('alpha')}, beta untouched at {gens.get('beta')}")
EOF
if ! grep -q '"event":"reload"' "$DRILL_DIR/regserve.journal"; then
    echo "registry hot-swap drill: journal has no reload record" >&2
    exit 1
fi
kill -TERM "$SERVE_PID"
SERVE_RC=0
wait "$SERVE_PID" || SERVE_RC=$?
SERVE_PID=""
if [ "$SERVE_RC" -ne 0 ]; then
    echo "registry hot-swap drill: daemon exited $SERVE_RC after SIGTERM (want 0)" >&2
    cat "$DRILL_DIR/regserve.out" >&2
    exit 1
fi

echo "==> verify OK"
