//! # LEAPME — LEArning-based Property Matching with Embeddings
//!
//! A from-scratch Rust reproduction of *"Towards the smart use of
//! embedding and instance features for property matching"* (Ayala,
//! Hernández, Ruiz, Rahm — ICDE 2021).
//!
//! LEAPME matches properties (attributes) of entities coming from many
//! heterogeneous sources — e.g. `"megapixels"`, `"camera resolution"`,
//! and `"effective pixels"` across 24 camera shops — by classifying
//! property pairs with a dense neural network over features built from
//! property names *and* instance values, with heavy use of word
//! embeddings.
//!
//! ## Crates under this facade
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`textsim`] | `leapme-textsim` | eight string-distance families (Table I rows 8–15) |
//! | [`nn`] | `leapme-nn` | matrices, MLP, optimizers, staged LR schedule |
//! | [`embedding`] | `leapme-embedding` | tokenizer, vocab, co-occurrence, GloVe trainer, store |
//! | [`data`] | `leapme-data` | data model + the four synthetic evaluation domains |
//! | [`features`] | `leapme-features` | instance/property/pair features, nine feature configs |
//! | [`core`] | `leapme-core` | Algorithm 1 pipeline, sampling, metrics, clustering, runner |
//! | [`baselines`] | `leapme-baselines` | AML, FCA-Map, Nezhadi, SemProp, LSH |
//!
//! ## Quick start
//!
//! ```no_run
//! use leapme::prelude::*;
//! use rand::SeedableRng;
//!
//! // 1. Generate a multi-source camera dataset (DI2KG'19-style).
//! let dataset = generate(Domain::Cameras, 42);
//!
//! // 2. Train domain embeddings (substitute for pre-trained GloVe).
//! let embeddings =
//!     train_domain_embeddings(&[Domain::Cameras], &EmbeddingTrainingConfig::default(), 42)
//!         .unwrap();
//!
//! // 3. Extract features once.
//! let store = PropertyFeatureStore::build(&dataset, &embeddings);
//!
//! // 4. Split sources, sample training pairs, fit, predict.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let split = split_sources(dataset.sources().len(), 0.8, &mut rng).unwrap();
//! let train = training_pairs(&dataset, &split.train, 2, &mut rng);
//! let model = Leapme::fit(&store, &train, &LeapmeConfig::default()).unwrap();
//! let graph = model
//!     .predict_graph(&store, &test_pairs(&dataset, &split.train))
//!     .unwrap();
//! println!("{} matches found", graph.matches(0.5).len());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use leapme_baselines as baselines;
#[cfg(feature = "faults")]
pub use leapme_faults as faults;
pub use leapme_core as core;
pub use leapme_data as data;
pub use leapme_embedding as embedding;
pub use leapme_features as features;
pub use leapme_nn as nn;
pub use leapme_serve as serve;
pub use leapme_textsim as textsim;

use leapme_data::corpus::{generate_corpus, CorpusConfig};
use leapme_data::domains::Domain;
use leapme_embedding::cooccur::CooccurrenceMatrix;
use leapme_embedding::glove::{train as glove_train, GloVeConfig};
use leapme_embedding::store::EmbeddingStore;
use leapme_embedding::vocab::Vocab;
use leapme_embedding::EmbeddingError;

/// Configuration of [`train_domain_embeddings`].
#[derive(Debug, Clone)]
pub struct EmbeddingTrainingConfig {
    /// Corpus size per domain.
    pub corpus: CorpusConfig,
    /// GloVe hyper-parameters (dimension, epochs, …).
    pub glove: GloVeConfig,
    /// Minimum corpus frequency for a word to be embedded.
    pub min_count: u64,
    /// Co-occurrence window size.
    pub window: usize,
}

impl Default for EmbeddingTrainingConfig {
    fn default() -> Self {
        EmbeddingTrainingConfig {
            corpus: CorpusConfig::default(),
            glove: GloVeConfig::default(),
            min_count: 2,
            window: 6,
        }
    }
}

/// Train GloVe embeddings on the synthetic corpora of one or more domains
/// (the offline substitute for the paper's pre-trained Common Crawl GloVe
/// vectors — see DESIGN.md §2).
///
/// Passing several domains yields one shared embedding space, which the
/// transfer-learning experiments require.
pub fn train_domain_embeddings(
    domains: &[Domain],
    cfg: &EmbeddingTrainingConfig,
    seed: u64,
) -> Result<EmbeddingStore, EmbeddingError> {
    let mut corpus = Vec::new();
    for (i, d) in domains.iter().enumerate() {
        corpus.extend(generate_corpus(
            &d.spec(),
            &cfg.corpus,
            seed.wrapping_add(i as u64),
        ));
    }
    let vocab = Vocab::build(corpus.iter().flatten().map(String::as_str), cfg.min_count);
    let cooc = CooccurrenceMatrix::from_sentences(&vocab, &corpus, cfg.window);
    let mut store = glove_train(&vocab, &cooc, &cfg.glove, seed)?;
    // The paper's 1.9M-word pre-trained vocabulary absorbs most typos; a
    // small trained vocabulary needs the fuzzy OOV fallback to behave
    // equivalently on noisy names (DESIGN.md §2).
    store.set_fuzzy_oov(true);
    Ok(store)
}

/// Deterministic hash-derived embedding store over a stress-generator
/// vocabulary (`leapme_data::stress`).
///
/// Every word gets a unit vector whose direction is a pure function of
/// `(seed, word)` — random directions are exactly the hard case for a
/// metric index (no helpful global structure beyond shared-word
/// clusters), which makes this the honest substrate for ANN retrieval
/// benchmarks at 100k–1M properties where training real GloVe vectors
/// would dominate the run. Same `(cfg, dim, seed)` → byte-identical
/// store.
pub fn stress_embedding_store(
    cfg: &leapme_data::stress::StressConfig,
    dim: usize,
    seed: u64,
) -> EmbeddingStore {
    fn splitmix64(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
    assert!(dim > 0, "embedding dimension must be positive");
    let mut store = EmbeddingStore::new(dim);
    for word in leapme_data::stress::stress_vocabulary(cfg) {
        let mut h = seed;
        for b in word.as_bytes() {
            h = splitmix64(h ^ u64::from(*b));
        }
        let mut v: Vec<f32> = (0..dim)
            .map(|d| {
                let r = splitmix64(h ^ (d as u64).wrapping_mul(0x9E3779B97F4A7C15));
                ((r >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
            })
            .collect();
        let norm = v
            .iter()
            .map(|&x| f64::from(x) * f64::from(x))
            .sum::<f64>()
            .sqrt();
        for x in v.iter_mut() {
            *x = (f64::from(*x) / norm) as f32;
        }
        store
            .insert(&word, v)
            .expect("stress vocabulary words are unique and dimension is fixed");
    }
    store
}

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use crate::{stress_embedding_store, train_domain_embeddings, EmbeddingTrainingConfig};
    pub use leapme_core::analysis::analyze;
    pub use leapme_core::blocking::{
        combined_candidates, retrieval_candidates, AnnBlocker, EmbeddingBlocker, LshBlocker,
        RetrievalMode, TokenBlocker,
    };
    pub use leapme_core::cluster::{connected_components, star_clustering};
    pub use leapme_core::fusion::fuse;
    pub use leapme_core::prcurve::PrCurve;
    pub use leapme_core::metrics::{Metrics, MetricsSummary};
    pub use leapme_core::pipeline::{Leapme, LeapmeConfig, LeapmeModel};
    pub use leapme_core::runner::{run_repeated, RunnerConfig};
    pub use leapme_core::sampling::{
        split_sources, test_ground_truth, test_pairs, training_pairs,
    };
    pub use leapme_core::simgraph::SimilarityGraph;
    pub use leapme_data::domains::{generate, Domain};
    pub use leapme_data::model::{Dataset, Instance, PropertyKey, PropertyPair, SourceId};
    pub use leapme_embedding::store::EmbeddingStore;
    pub use leapme_features::{FeatureConfig, FeatureKind, FeatureScope, PropertyFeatureStore};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_trains_embeddings() {
        let cfg = EmbeddingTrainingConfig {
            corpus: CorpusConfig {
                sentences_per_synonym: 3,
                filler_sentences: 10,
            },
            glove: GloVeConfig {
                dim: 8,
                epochs: 2,
                ..GloVeConfig::default()
            },
            ..EmbeddingTrainingConfig::default()
        };
        let store = train_domain_embeddings(&[Domain::Tvs], &cfg, 1).unwrap();
        assert_eq!(store.dim(), 8);
        assert!(store.len() > 20);
    }

    #[test]
    fn stress_store_is_deterministic_unit_and_covers_vocabulary() {
        let cfg = leapme_data::stress::StressConfig::new(500, 9);
        let a = stress_embedding_store(&cfg, 16, 9);
        let b = stress_embedding_store(&cfg, 16, 9);
        assert_eq!(a.dim(), 16);
        let vocab = leapme_data::stress::stress_vocabulary(&cfg);
        assert_eq!(a.len(), vocab.len());
        for word in vocab.iter().take(50) {
            let va = a.get(word).expect("vocabulary word embedded");
            assert_eq!(va, b.get(word).unwrap(), "determinism for {word}");
            let norm: f64 = va.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
            assert!((norm - 1.0).abs() < 1e-3, "{word}: |v|² = {norm}");
        }
        // A different seed points the directions elsewhere.
        let c = stress_embedding_store(&cfg, 16, 10);
        assert_ne!(a.get(&vocab[0]), c.get(&vocab[0]));
    }

    #[test]
    fn shared_space_covers_both_domains() {
        let cfg = EmbeddingTrainingConfig {
            corpus: CorpusConfig {
                sentences_per_synonym: 3,
                filler_sentences: 5,
            },
            glove: GloVeConfig {
                dim: 8,
                epochs: 2,
                ..GloVeConfig::default()
            },
            ..EmbeddingTrainingConfig::default()
        };
        let store =
            train_domain_embeddings(&[Domain::Tvs, Domain::Headphones], &cfg, 2).unwrap();
        // TV-specific and headphone-specific words both embedded.
        assert!(store.get("hdmi").is_some());
        assert!(store.get("impedance").is_some());
    }
}
