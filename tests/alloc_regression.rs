//! Zero-allocation regression tests for the steady-state featurize path
//! (feature `alloc-count`).
//!
//! Run with `cargo test -p leapme --features alloc-count`. The feature
//! installs leapme-nn's counting `#[global_allocator]`, and each test
//! warms its buffers (thread-local token buffer, feature scratch, string
//! cache), snapshots the process-wide allocation counter, repeats the
//! hot operation, and asserts the counter did not move. Companion to the
//! training-step suite in `leapme-nn` (`network::tests`); DESIGN.md §10
//! documents which paths these counters pin down.
//!
//! All fixture values are ASCII without thousands separators: non-ASCII
//! tokens take the allocating `str::to_lowercase` cold path and
//! comma-bearing numerics pay for one cleaned copy, both by design.
#![cfg(feature = "alloc-count")]

use leapme::embedding::store::EmbeddingStore;
use leapme::features::{instance, property, with_scratch, FeatureConfig, PropertyFeatureStore};
use leapme::nn::alloc_count::allocation_count;
use leapme::nn::threads::THREADS_ENV;

fn embeddings() -> EmbeddingStore {
    let mut s = EmbeddingStore::new(8);
    for (i, w) in ["camera", "resolution", "mp", "digital", "weight", "g"]
        .iter()
        .enumerate()
    {
        let mut v = vec![0.0f32; 8];
        v[i] = 1.0;
        s.insert(w, v).unwrap();
    }
    s
}

/// Assert that repeating `hot` after `warmup` warm rounds performs no
/// heap allocation.
fn assert_steady_state_alloc_free(mut hot: impl FnMut(), context: &str) {
    for _ in 0..3 {
        hot();
    }
    let before = allocation_count();
    for _ in 0..10 {
        hot();
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "{context}: {} allocation(s) in 10 warmed iterations",
        after - before
    );
}

#[test]
fn warmed_instance_extract_into_is_alloc_free() {
    let emb = embeddings();
    let mut out = vec![0.0f32; instance::len(emb.dim())];
    assert_steady_state_alloc_free(
        || {
            for value in ["camera resolution 20.1 mp", "450 g", "digitalCamera 4k"] {
                instance::extract_into(value, &emb, &mut out);
            }
        },
        "instance::extract_into",
    );
}

#[test]
fn warmed_fused_property_extraction_is_alloc_free() {
    let emb = embeddings();
    let values = ["20.1 mp", "18 mp", "digital camera resolution"];
    let mut out = vec![0.0f32; property::len(emb.dim())];
    assert_steady_state_alloc_free(
        || {
            with_scratch(|scratch| {
                property::aggregate_values_into(
                    "cameraResolution",
                    values.iter().copied(),
                    &emb,
                    scratch,
                    &mut out,
                );
            });
        },
        "property::aggregate_values_into",
    );
}

#[test]
fn warmed_fill_pair_block_is_alloc_free() {
    // Serial fill: thread fan-out allocates per spawn, which is the
    // threaded path's own business — this test pins the per-row work.
    // Staying under the fan-out threshold (rather than setting
    // LEAPME_THREADS) keeps the fill serial without making the kernels'
    // `env::var` lookup allocate a `String` per call.
    std::env::remove_var(THREADS_ENV);
    let dataset = leapme::data::domains::generate(leapme::data::domains::Domain::Tvs, 2);
    let emb = embeddings();
    let store = PropertyFeatureStore::build(&dataset, &emb);
    let all_sources: Vec<leapme::data::model::SourceId> = (0..dataset.sources().len())
        .map(|i| leapme::data::model::SourceId(i as u16))
        .collect();
    let pairs = dataset.cross_source_pairs(&all_sources);
    // Below 2 × MIN_ITEMS_PER_THREAD the fill is serial at any thread
    // count — no spawn allocations to excuse.
    let pairs = &pairs[..pairs.len().min(31)];
    let mask = FeatureConfig::full().mask(emb.dim());
    let mut out = vec![0.0f32; pairs.len() * mask.len()];
    assert_steady_state_alloc_free(
        || {
            store
                .fill_pair_block(pairs, &mask, &mut out)
                .expect("fill_pair_block");
        },
        "PropertyFeatureStore::fill_pair_block",
    );
    std::env::remove_var(THREADS_ENV);
}
