//! Zero-allocation regression tests for the steady-state featurize path
//! (feature `alloc-count`).
//!
//! Run with `cargo test -p leapme --features alloc-count`. The feature
//! installs leapme-nn's counting `#[global_allocator]`, and each test
//! warms its buffers (thread-local token buffer, feature scratch, string
//! cache), snapshots the process-wide allocation counter, repeats the
//! hot operation, and asserts the counter did not move. Companion to the
//! training-step suite in `leapme-nn` (`network::tests`); DESIGN.md §10
//! documents which paths these counters pin down.
//!
//! All fixture values are ASCII without thousands separators: non-ASCII
//! tokens take the allocating `str::to_lowercase` cold path and
//! comma-bearing numerics pay for one cleaned copy, both by design.
#![cfg(feature = "alloc-count")]

use leapme::embedding::store::EmbeddingStore;
use leapme::features::{instance, property, with_scratch, FeatureConfig, PropertyFeatureStore};
use leapme::nn::alloc_count::allocation_count;
use leapme::nn::threads::THREADS_ENV;

fn embeddings() -> EmbeddingStore {
    let mut s = EmbeddingStore::new(8);
    for (i, w) in ["camera", "resolution", "mp", "digital", "weight", "g"]
        .iter()
        .enumerate()
    {
        let mut v = vec![0.0f32; 8];
        v[i] = 1.0;
        s.insert(w, v).unwrap();
    }
    s
}

/// Assert that repeating `hot` after `warmup` warm rounds performs no
/// heap allocation.
fn assert_steady_state_alloc_free(mut hot: impl FnMut(), context: &str) {
    for _ in 0..3 {
        hot();
    }
    let before = allocation_count();
    for _ in 0..10 {
        hot();
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "{context}: {} allocation(s) in 10 warmed iterations",
        after - before
    );
}

#[test]
fn warmed_instance_extract_into_is_alloc_free() {
    let emb = embeddings();
    let mut out = vec![0.0f32; instance::len(emb.dim())];
    assert_steady_state_alloc_free(
        || {
            for value in ["camera resolution 20.1 mp", "450 g", "digitalCamera 4k"] {
                instance::extract_into(value, &emb, &mut out);
            }
        },
        "instance::extract_into",
    );
}

#[test]
fn warmed_fused_property_extraction_is_alloc_free() {
    let emb = embeddings();
    let values = ["20.1 mp", "18 mp", "digital camera resolution"];
    let mut out = vec![0.0f32; property::len(emb.dim())];
    assert_steady_state_alloc_free(
        || {
            with_scratch(|scratch| {
                property::aggregate_values_into(
                    "cameraResolution",
                    values.iter().copied(),
                    &emb,
                    scratch,
                    &mut out,
                );
            });
        },
        "property::aggregate_values_into",
    );
}

/// Allocations of one call to `f`.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = allocation_count();
    f();
    allocation_count() - before
}

#[test]
fn v2_container_open_allocation_count_is_independent_of_tensor_size() {
    use leapme::nn::checkpoint::KIND_PIPELINE;
    use leapme::nn::container2::V2Container;
    use leapme::nn::container2::V2Writer;

    let dir = std::env::temp_dir().join("leapme_alloc_v2_open");
    std::fs::create_dir_all(&dir).unwrap();
    // Identical section structure, 256× different payload bytes: the
    // O(1)-open contract (header + table parse only, payload CRCs
    // lazy) means the allocation count must not move with size.
    let write = |name: &str, floats: usize| {
        let path = dir.join(name);
        let mut w = V2Writer::new(KIND_PIPELINE);
        w.bytes("meta", &[1u8; 64]);
        w.f32s("w0", &vec![0.5f32; floats]);
        w.f32s("b0", &vec![0.25f32; floats / 64]);
        w.write(&path).unwrap();
        path
    };
    let small = write("small.l2c", 1 << 10);
    let large = write("large.l2c", 1 << 18);

    // Warm the path-independent machinery (fd tables, page maps).
    for p in [&small, &large] {
        V2Container::open(p, KIND_PIPELINE).unwrap();
    }
    let small_allocs = allocs_during(|| {
        V2Container::open(&small, KIND_PIPELINE).unwrap();
    });
    let large_allocs = allocs_during(|| {
        V2Container::open(&large, KIND_PIPELINE).unwrap();
    });
    assert_eq!(
        small_allocs, large_allocs,
        "v2 open allocated {small_allocs} times for 4 KiB payloads but \
         {large_allocs} for 1 MiB — open must be O(1) in payload size"
    );
}

#[test]
fn v2_cache_open_allocation_count_is_independent_of_property_count() {
    use leapme::core::feature_cache;
    use leapme::data::model::{PropertyKey, SourceId};
    use std::collections::HashMap;

    let dir = std::env::temp_dir().join("leapme_alloc_v2_cache");
    std::fs::create_dir_all(&dir).unwrap();
    let emb = embeddings();
    let dataset = leapme::data::domains::generate(leapme::data::domains::Domain::Tvs, 5);
    let fp = feature_cache::fingerprint(&dataset, &emb);

    // Same layout, 30× the properties: `load_resident` validates the
    // key table in place and defers both the per-key decode and the
    // slab checksum, so the open's allocation count must not move.
    let save = |name: &str, properties: usize| {
        let plen = property::len(emb.dim());
        let mut features = HashMap::with_capacity(properties);
        for i in 0..properties {
            let key = PropertyKey::new(SourceId((i % 3) as u16), format!("prop_{i:05}"));
            features.insert(key, vec![0.5f32; plen]);
        }
        let store = PropertyFeatureStore::from_parts(emb.dim(), features, Default::default());
        let path = dir.join(name);
        feature_cache::save(&path, &store, &fp).unwrap();
        path
    };
    let small = save("small.lfc", 100);
    let large = save("large.lfc", 3000);

    for p in [&small, &large] {
        feature_cache::load_resident(p).unwrap();
    }
    let small_allocs = allocs_during(|| {
        feature_cache::load_resident(&small).unwrap();
    });
    let large_allocs = allocs_during(|| {
        feature_cache::load_resident(&large).unwrap();
    });
    assert_eq!(
        small_allocs, large_allocs,
        "v2 cache open allocated {small_allocs} times for 100 properties \
         but {large_allocs} for 3000 — the open must defer per-key work"
    );
}

#[test]
fn v2_model_load_allocation_count_is_independent_of_layer_width() {
    use leapme::core::pipeline::{Leapme, LeapmeConfig, LeapmeModel};
    use leapme::core::sampling;
    use leapme::nn::network::TrainConfig;
    use leapme::nn::schedule::LrSchedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let dir = std::env::temp_dir().join("leapme_alloc_v2_model");
    std::fs::create_dir_all(&dir).unwrap();
    let dataset = leapme::data::domains::generate(leapme::data::domains::Domain::Tvs, 3);
    let emb = embeddings();
    let store = PropertyFeatureStore::build(&dataset, &emb);
    let sources: Vec<leapme::data::model::SourceId> = (0..dataset.sources().len())
        .map(|i| leapme::data::model::SourceId(i as u16))
        .collect();
    let mut rng = StdRng::seed_from_u64(11);
    let train = sampling::training_pairs(&dataset, &sources, 2, &mut rng);

    // Same topology (one hidden layer), 16× the width: the number of
    // weight tensors — and so the number of load-time allocations — is
    // identical; only the zero-copy mapped bytes grow.
    let save = |name: &str, width: usize| {
        let cfg = LeapmeConfig {
            train: TrainConfig {
                schedule: LrSchedule::new(vec![(2, 1e-3)]),
                ..TrainConfig::default()
            },
            hidden: vec![width],
            ..LeapmeConfig::default()
        };
        let model = Leapme::fit(&store, &train, &cfg).unwrap();
        let path = dir.join(name);
        model.save(&path).unwrap();
        path
    };
    let narrow = save("narrow.lmp", 4);
    let wide = save("wide.lmp", 64);

    for p in [&narrow, &wide] {
        LeapmeModel::load(p).unwrap();
    }
    let narrow_allocs = allocs_during(|| {
        LeapmeModel::load(&narrow).unwrap();
    });
    let wide_allocs = allocs_during(|| {
        LeapmeModel::load(&wide).unwrap();
    });
    assert_eq!(
        narrow_allocs, wide_allocs,
        "loading a 16×-wider model changed the allocation count \
         ({narrow_allocs} → {wide_allocs}); v2 weights must stay zero-copy"
    );
}

#[test]
fn warmed_fill_pair_block_is_alloc_free() {
    // Serial fill: thread fan-out allocates per spawn, which is the
    // threaded path's own business — this test pins the per-row work.
    // Staying under the fan-out threshold (rather than setting
    // LEAPME_THREADS) keeps the fill serial without making the kernels'
    // `env::var` lookup allocate a `String` per call.
    std::env::remove_var(THREADS_ENV);
    let dataset = leapme::data::domains::generate(leapme::data::domains::Domain::Tvs, 2);
    let emb = embeddings();
    let store = PropertyFeatureStore::build(&dataset, &emb);
    let all_sources: Vec<leapme::data::model::SourceId> = (0..dataset.sources().len())
        .map(|i| leapme::data::model::SourceId(i as u16))
        .collect();
    let pairs = dataset.cross_source_pairs(&all_sources);
    // Below 2 × MIN_ITEMS_PER_THREAD the fill is serial at any thread
    // count — no spawn allocations to excuse.
    let pairs = &pairs[..pairs.len().min(31)];
    let mask = FeatureConfig::full().mask(emb.dim());
    let mut out = vec![0.0f32; pairs.len() * mask.len()];
    assert_steady_state_alloc_free(
        || {
            store
                .fill_pair_block(pairs, &mask, &mut out)
                .expect("fill_pair_block");
        },
        "PropertyFeatureStore::fill_pair_block",
    );
    std::env::remove_var(THREADS_ENV);
}
