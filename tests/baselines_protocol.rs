//! Baseline matchers under the shared evaluation protocol: all five run
//! through the `Matcher` trait on a real generated dataset and behave
//! according to their design (name-only matchers ignore values, the
//! instance matcher ignores names, the supervised matcher needs training).

use leapme::baselines::{
    aml::AmlMatcher, fcamap::FcaMapMatcher, lsh::LshMatcher, nezhadi::NezhadiMatcher,
    semprop::SemPropMatcher, Matcher,
};
use leapme::core::sampling;
use leapme::data::corpus::CorpusConfig;
use leapme::embedding::glove::GloVeConfig;
use leapme::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (Dataset, EmbeddingStore, Vec<PropertyPair>, std::collections::BTreeSet<PropertyPair>)
{
    let seed = 77;
    let dataset = generate(Domain::Headphones, seed);
    let embeddings = train_domain_embeddings(
        &[Domain::Headphones],
        &EmbeddingTrainingConfig {
            corpus: CorpusConfig {
                sentences_per_synonym: 8,
                filler_sentences: 30,
            },
            glove: GloVeConfig {
                dim: 16,
                epochs: 8,
                ..GloVeConfig::default()
            },
            ..EmbeddingTrainingConfig::default()
        },
        seed,
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let split = sampling::split_sources(dataset.sources().len(), 0.8, &mut rng).unwrap();
    let examples = sampling::test_examples(&dataset, &split.train, 2, &mut rng);
    let pairs = examples.iter().map(|(p, _)| p.clone()).collect();
    let gt = examples
        .iter()
        .filter(|(_, y)| *y)
        .map(|(p, _)| p.clone())
        .collect();
    (dataset, embeddings, pairs, gt)
}

#[test]
fn every_baseline_produces_sane_metrics() {
    let (dataset, embeddings, pairs, gt) = setup();

    let mut rng = StdRng::seed_from_u64(1);
    let split = sampling::split_sources(dataset.sources().len(), 0.8, &mut rng).unwrap();
    let train = sampling::training_pairs(&dataset, &split.train, 2, &mut rng);

    let semprop = SemPropMatcher::new(&embeddings);
    let mut matchers: Vec<Box<dyn Matcher>> = vec![
        Box::new(NezhadiMatcher::new()),
        Box::new(AmlMatcher::new()),
        Box::new(FcaMapMatcher::new()),
        Box::new(semprop),
        Box::new(LshMatcher::new()),
    ];
    for m in &mut matchers {
        m.fit(&dataset, &train);
        let predicted = m.predict(&dataset, &pairs);
        let metrics = Metrics::from_sets(&predicted, &gt);
        // Every matcher finds *something* and beats random guessing on
        // precision in the 1:2 sampled example space (random ≈ 0.33).
        assert!(
            metrics.recall > 0.05,
            "{}: recall {:.2} ≈ nothing found",
            m.name(),
            metrics.recall
        );
        assert!(
            metrics.precision > 0.4,
            "{}: precision {:.2} worse than chance",
            m.name(),
            metrics.precision
        );
    }
}

#[test]
fn scores_are_bounded_and_symmetric_in_pair_construction() {
    let (dataset, embeddings, pairs, _gt) = setup();
    let semprop = SemPropMatcher::new(&embeddings);
    let matchers: Vec<Box<dyn Matcher>> = vec![
        Box::new(AmlMatcher::new()),
        Box::new(FcaMapMatcher::new()),
        Box::new(semprop),
        Box::new(LshMatcher::new()),
    ];
    for m in &matchers {
        for p in pairs.iter().take(50) {
            let s = m.score(&dataset, p);
            assert!((0.0..=1.0).contains(&s), "{}: score {s} out of range", m.name());
            // PropertyPair is canonical, so reconstructing it flips nothing,
            // but scoring must be stable across calls.
            assert_eq!(s, m.score(&dataset, p), "{} unstable", m.name());
        }
    }
}

#[test]
fn supervised_baseline_requires_training() {
    let (dataset, _embeddings, pairs, _gt) = setup();
    let unfitted = NezhadiMatcher::new();
    assert!(unfitted.predict(&dataset, &pairs).is_empty());
}

#[test]
fn lexical_baselines_blind_to_values_lsh_blind_to_names() {
    let (dataset, _embeddings, pairs, _gt) = setup();
    // Take a pair with identical names (if any exists in the sample) and
    // verify FCA-Map scores it 1.0 regardless of values; conversely LSH's
    // score must be computable for pairs with empty value overlap.
    let aml = AmlMatcher::new();
    for p in pairs.iter().take(200) {
        let score = aml.score(&dataset, p);
        // AML score only depends on the names:
        let recomputed = AmlMatcher::similarity(&p.0.name, &p.1.name);
        assert_eq!(score, recomputed);
    }
    let lsh = LshMatcher::new();
    for p in pairs.iter().take(20) {
        let _ = lsh.score(&dataset, p); // must not panic, names unused
    }
}
