//! Chaos suite: every injectable fault must surface as a structured
//! error or a documented degradation — never a process abort or an
//! unwinding panic escaping the pipeline (DESIGN.md §8).
//!
//! Gated on `--features faults`; `leapme_faults::with_plan` serializes
//! plan installation, so these tests can share one process.
#![cfg(feature = "faults")]

use leapme::data::io::{read_dataset, read_dataset_lenient};
use leapme::faults::with_plan;
use leapme::features::vectorizer::FeatureError;
use leapme::nn::network::TrainConfig;
use leapme::nn::schedule::LrSchedule;
use leapme::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn quick_config() -> LeapmeConfig {
    LeapmeConfig {
        train: TrainConfig {
            schedule: LrSchedule::new(vec![(4, 1e-3)]),
            ..TrainConfig::default()
        },
        hidden: vec![8],
        ..LeapmeConfig::default()
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("leapme_chaos_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Single-token property names (and values) with full vocabulary
/// coverage, so embedding-lookup faults are the *only* source of
/// degradation.
const WORDS: &[&str] = &[
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india", "juliet",
    "kilo", "lima", "mike", "november", "oscar", "papa", "quebec", "romeo", "sierra", "tango",
];

/// Three sources sharing the twenty [`WORDS`] properties; each property
/// holds one instance whose value is its own name.
fn word_dataset() -> Dataset {
    let sources: Vec<String> = (0..3).map(|i| format!("s{i}")).collect();
    let mut instances = Vec::new();
    let mut alignment = BTreeMap::new();
    for s in 0..3u16 {
        for w in WORDS {
            alignment.insert(PropertyKey::new(SourceId(s), *w), w.to_string());
            instances.push(Instance {
                source: SourceId(s),
                property: w.to_string(),
                entity: "e0".into(),
                value: w.to_string(),
            });
        }
    }
    Dataset::new("words", sources, instances, alignment).unwrap()
}

/// An embedding store covering every word in [`WORDS`].
fn word_embeddings() -> EmbeddingStore {
    let mut store = EmbeddingStore::new(8);
    for (i, w) in WORDS.iter().enumerate() {
        let v: Vec<f32> = (0..8).map(|d| 0.05 + 0.01 * (i * 8 + d) as f32).collect();
        store.insert(w, v).unwrap();
    }
    store
}

/// Fit and score the word dataset with the given store; all scores must
/// be finite.
fn fit_and_score(dataset: &Dataset, store: &PropertyFeatureStore, seed: u64) -> Vec<f32> {
    let train_sources = vec![SourceId(0), SourceId(1)];
    let mut rng = StdRng::seed_from_u64(seed);
    let train = training_pairs(dataset, &train_sources, 2, &mut rng);
    let model = Leapme::fit(store, &train, &quick_config()).unwrap();
    let all: Vec<SourceId> = (0..3).map(SourceId).collect();
    let scores = model
        .score_pairs(store, &dataset.cross_source_pairs(&all))
        .unwrap();
    for s in &scores {
        assert!(s.is_finite(), "non-finite score {s}");
    }
    scores
}

const GOOD_CSV: &str = "source,property,entity,value\n\
                        shopA,mp,e1,20 MP\n\
                        shopA,mp,e2,24 MP\n\
                        shopB,resolution,x1,20\n\
                        shopB,resolution,x2,24\n";

#[test]
fn csv_io_fault_is_a_structured_error() {
    let path = tmp("io_fault.csv");
    std::fs::write(&path, GOOD_CSV).unwrap();
    let err = with_plan("seed=1;data.csv.line:io@1.0#1", || {
        read_dataset("chaos", &path, None).unwrap_err()
    });
    assert!(err.to_string().contains("injected fault"), "{err}");
    std::fs::remove_file(path).ok();
}

#[test]
fn csv_malformed_fault_fails_strict_but_only_skips_lenient() {
    let path = tmp("malformed_fault.csv");
    std::fs::write(&path, GOOD_CSV).unwrap();
    let err = with_plan("seed=2;data.csv.row:malformed@1.0#1", || {
        read_dataset("chaos", &path, None).unwrap_err()
    });
    assert!(err.to_string().contains("injected fault"), "{err}");

    let (dataset, report) = with_plan("seed=2;data.csv.row:malformed@0.5", || {
        read_dataset_lenient("chaos", &path, None).unwrap()
    });
    assert!(report.skipped > 0, "no rows skipped: {report:?}");
    assert!(report.imported > 0, "no rows imported: {report:?}");
    assert_eq!(report.imported, dataset.instances().len());
    assert!(report.summary().contains("malformed"));
    std::fs::remove_file(path).ok();
}

#[test]
fn thirty_percent_missing_embeddings_completes_and_reports_degraded() {
    let dataset = word_dataset();
    let embeddings = word_embeddings();
    // Full coverage without faults: nothing degrades.
    let clean = PropertyFeatureStore::try_build(&dataset, &embeddings).unwrap();
    assert!(clean.degradation().is_clean());

    // 30% of embedding lookups miss: properties whose every lookup
    // missed fall back to non-embedding features, the run completes,
    // and the report names them.
    let store = with_plan("seed=9;embedding.lookup:missing-embedding@0.3", || {
        PropertyFeatureStore::try_build(&dataset, &embeddings).unwrap()
    });
    let report = store.degradation();
    assert!(!report.degraded.is_empty(), "no degraded properties");
    assert!(report.degraded.len() < report.total, "everything degraded");
    assert!(report.fraction() > 0.0 && report.fraction() < 1.0);
    assert!(report.summary().contains("degraded"));
    fit_and_score(&dataset, &store, 9);
}

#[test]
fn injected_nan_loss_recovers_in_the_full_pipeline() {
    let dataset = word_dataset();
    let store = PropertyFeatureStore::try_build(&dataset, &word_embeddings()).unwrap();
    // One poisoned epoch: the checkpoint rollback absorbs it and the
    // pipeline still produces finite scores.
    with_plan("seed=7;nn.loss:nan@1.0#1", || {
        fit_and_score(&dataset, &store, 7);
    });
}

#[test]
fn transient_feature_worker_panic_requeues() {
    let dataset = generate(Domain::Tvs, 5);
    let embeddings = EmbeddingStore::new(8);
    let serial = PropertyFeatureStore::try_build_with_threads(&dataset, &embeddings, 1).unwrap();
    let store = with_plan("seed=3;features.worker:panic@1.0#2", || {
        PropertyFeatureStore::try_build_with_threads(&dataset, &embeddings, 4).unwrap()
    });
    assert_eq!(store.len(), serial.len());
    assert_eq!(store.degradation(), serial.degradation());
    for key in dataset.properties() {
        assert_eq!(store.property_vector(&key), serial.property_vector(&key));
    }
}

#[test]
fn persistent_feature_worker_panic_is_a_structured_error() {
    let dataset = generate(Domain::Tvs, 5);
    let embeddings = EmbeddingStore::new(8);
    let err = with_plan("seed=3;features.worker:panic@1.0", || {
        match PropertyFeatureStore::try_build_with_threads(&dataset, &embeddings, 4) {
            Err(e) => e,
            Ok(_) => panic!("build unexpectedly succeeded"),
        }
    });
    match err {
        FeatureError::WorkerPanic { site, message } => {
            assert_eq!(site, "features.worker");
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("expected WorkerPanic, got {other}"),
    }
}

#[test]
fn pair_worker_panic_requeues_or_errors_structurally() {
    let dataset = generate(Domain::Tvs, 5);
    let store = PropertyFeatureStore::try_build(&dataset, &EmbeddingStore::new(8)).unwrap();
    let all: Vec<SourceId> = (0..dataset.sources().len() as u16).map(SourceId).collect();
    let pairs: Vec<(PropertyKey, PropertyKey)> = dataset
        .cross_source_pairs(&all)
        .into_iter()
        .map(|PropertyPair(a, b)| (a, b))
        .collect();
    assert!(pairs.len() >= 32, "need the parallel fill path");
    let cfg = FeatureConfig::full();

    let serial = store
        .pair_matrix_flat_with_threads(&pairs, &cfg, 1)
        .unwrap();
    let requeued = with_plan("seed=4;features.pair.worker:panic@1.0#2", || {
        store.pair_matrix_flat_with_threads(&pairs, &cfg, 4).unwrap()
    });
    assert_eq!(requeued.into_parts(), serial.into_parts());

    let err = with_plan("seed=4;features.pair.worker:panic@1.0", || {
        store
            .pair_matrix_flat_with_threads(&pairs, &cfg, 4)
            .unwrap_err()
    });
    match err {
        FeatureError::WorkerPanic { site, .. } => assert_eq!(site, "features.pair.worker"),
        other => panic!("expected WorkerPanic, got {other}"),
    }
}

/// Every (site, kind) cell of the fault matrix, exercised end to end:
/// the scenario may succeed (documented degradation) or return a
/// structured error, but a panic must never unwind out of the library.
#[test]
fn full_fault_matrix_never_aborts() {
    let csv_path = tmp("matrix.csv");
    std::fs::write(&csv_path, GOOD_CSV).unwrap();
    let dataset = word_dataset();
    let embeddings = word_embeddings();

    let run_pipeline = || {
        let store = PropertyFeatureStore::try_build_with_threads(&dataset, &embeddings, 4)
            .map_err(|e| format!("build: {e}"))?;
        let train_sources = vec![SourceId(0), SourceId(1)];
        let mut rng = StdRng::seed_from_u64(13);
        let train = training_pairs(&dataset, &train_sources, 2, &mut rng);
        let model = Leapme::fit(&store, &train, &quick_config())
            .map_err(|e| format!("fit: {e}"))?;
        let all: Vec<SourceId> = (0..3).map(SourceId).collect();
        let scores = model
            .score_pairs_parallel(&store, &dataset.cross_source_pairs(&all), 4)
            .map_err(|e| format!("score: {e}"))?;
        for s in &scores {
            assert!(s.is_finite(), "non-finite score {s}");
        }
        Ok::<_, String>(())
    };

    let specs = [
        "seed=11;data.csv.line:io@0.5",
        "seed=11;data.csv.row:malformed@0.5",
        "seed=11;embedding.lookup:missing-embedding@0.5",
        "seed=11;features.instance.value:nan@0.5",
        "seed=11;features.instance.value:inf@0.5",
        "seed=11;features.instance.value:oversize@0.5",
        "seed=11;features.worker:panic@1.0",
        "seed=11;features.worker:panic@1.0#2",
        "seed=11;features.pair.worker:panic@1.0",
        "seed=11;nn.loss:nan@1.0",
        "seed=11;nn.loss:nan@1.0#1",
        "seed=11;core.score.worker:panic@1.0",
        "seed=11;core.score.worker:panic@1.0#2",
        "seed=11;core.runner.worker:panic@1.0",
    ];
    for spec in specs {
        let outcome = with_plan(spec, || {
            catch_unwind(AssertUnwindSafe(|| {
                // CSV faults are read-path faults; everything else runs
                // through the training/scoring pipeline. Both are driven
                // for every spec — inactive sites simply never fire.
                let _ = read_dataset("matrix", &csv_path, None);
                let _ = read_dataset_lenient("matrix", &csv_path, None);
                let _ = run_pipeline();
                let runner_cfg = RunnerConfig {
                    repetitions: 2,
                    threads: 2,
                    leapme: quick_config(),
                    ..RunnerConfig::default()
                };
                let store = PropertyFeatureStore::try_build_with_threads(
                    &dataset,
                    &embeddings,
                    1,
                );
                if let Ok(store) = store {
                    let _ = run_repeated(&dataset, &store, &runner_cfg);
                }
            }))
        });
        assert!(outcome.is_ok(), "panic escaped the pipeline under {spec:?}");
    }
    std::fs::remove_file(csv_path).ok();
}
