//! Corruption matrix for the LEAPMECP v2 section container
//! (DESIGN.md §15): property-based drills proving that *no* byte-level
//! damage — bit flips anywhere in the file, truncation at any length,
//! a misaligned section offset smuggled past a recomputed table CRC —
//! ever panics or silently yields wrong data. Every outcome is either
//! a typed [`CheckpointError`] or a verified-identical read.
//!
//! The v1 compatibility half: arbitrary payloads round-trip through
//! the legacy writer and [`open_any`], and every single-bit flip in a
//! v1 file is caught (v1 has no unchecked bytes at all).

use leapme::nn::checkpoint::{self, crc64, CheckpointError, KIND_PIPELINE};
use leapme::nn::container2::{open_any, Opened, V2Container, V2Writer};
use proptest::prelude::*;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("leapme_corruption_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A representative container: a bytes section, two f32 tensors of
/// different sizes, and an empty section (zero-length extents are
/// legal and must stay harmless under corruption).
fn reference_bytes() -> Vec<u8> {
    let mut w = V2Writer::new(KIND_PIPELINE);
    w.bytes("meta", &[7u8; 13]);
    w.f32s("w0", &(0..300).map(|i| i as f32 * 0.25).collect::<Vec<_>>());
    w.f32s("b0", &[1.0, -2.0, 3.5]);
    w.bytes("empty", &[]);
    let path = tmp("reference.l2c");
    w.write(&path).unwrap();
    std::fs::read(&path).unwrap()
}

/// Read every section of `c`, comparing against the pristine copy.
/// Returns `Err` on the first typed failure.
fn read_all_and_compare(
    c: &V2Container,
    pristine: &V2Container,
) -> Result<bool, CheckpointError> {
    c.verify_all()?;
    let mut identical = true;
    for name in ["meta", "empty"] {
        identical &= c.section_bytes(name)? == pristine.section_bytes(name).unwrap();
    }
    for name in ["w0", "b0"] {
        identical &= c.section_f32s(name)? == pristine.section_f32s(name).unwrap();
    }
    Ok(identical)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flip any single bit anywhere in a v2 file: the open + full read
    /// either fails with a typed error or — when the flip lands in a
    /// reserved header byte no contract covers — still reads every
    /// section byte-identical. Silent wrong data is the one outcome
    /// that must never happen.
    #[test]
    fn v2_single_bit_flip_is_typed_or_harmless(
        pos_seed in 0usize..usize::MAX,
        bit in 0u8..8,
    ) {
        let bytes = reference_bytes();
        let pristine = V2Container::from_bytes(bytes.clone(), KIND_PIPELINE).unwrap();
        let pos = pos_seed % bytes.len();
        let mut corrupt = bytes;
        corrupt[pos] ^= 1 << bit;
        match V2Container::from_bytes(corrupt, KIND_PIPELINE) {
            Err(_) => {} // typed at open: header, table CRC, extents
            Ok(c) => match read_all_and_compare(&c, &pristine) {
                Err(_) => {} // typed at section access: payload CRC
                Ok(identical) => prop_assert!(
                    identical,
                    "bit flip at byte {pos} bit {bit} read back silently wrong data"
                ),
            },
        }
    }

    /// Truncate a v2 file at every possible length: opens must fail
    /// typed, or succeed with all sections intact (possible only when
    /// the cut removes trailing zero padding past the last payload).
    #[test]
    fn v2_truncation_is_typed_or_harmless(cut_seed in 0usize..usize::MAX) {
        let bytes = reference_bytes();
        let pristine = V2Container::from_bytes(bytes.clone(), KIND_PIPELINE).unwrap();
        let cut = cut_seed % bytes.len(); // strictly shorter than the file
        let corrupt = bytes[..cut].to_vec();
        match V2Container::from_bytes(corrupt, KIND_PIPELINE) {
            Err(_) => {}
            Ok(c) => match read_all_and_compare(&c, &pristine) {
                Err(_) => {}
                Ok(identical) => prop_assert!(
                    identical,
                    "truncation to {cut} bytes read back silently wrong data"
                ),
            },
        }
    }

    /// Smuggle a misaligned offset past the table CRC: nudge one
    /// entry's offset by 1–63 bytes *and recompute the table CRC* so
    /// only the alignment check can object. It must.
    #[test]
    fn v2_misaligned_offset_is_rejected_even_with_valid_table_crc(
        entry_seed in 0usize..usize::MAX,
        delta in 1u64..64,
    ) {
        let mut bytes = reference_bytes();
        // Header: count at 14..18, table CRC at 18..26, table at 64.
        let count =
            u32::from_le_bytes(bytes[14..18].try_into().unwrap()) as usize;
        prop_assert!(count > 0, "reference container must have sections");
        let entry = 64 + (entry_seed % count) * 64;
        let off_at = entry + 40;
        let offset = u64::from_le_bytes(bytes[off_at..off_at + 8].try_into().unwrap());
        bytes[off_at..off_at + 8].copy_from_slice(&(offset + delta).to_le_bytes());
        let table_crc = crc64(&bytes[64..64 + count * 64]);
        bytes[18..26].copy_from_slice(&table_crc.to_le_bytes());
        prop_assert!(
            V2Container::from_bytes(bytes, KIND_PIPELINE).is_err(),
            "a misaligned section offset must never open"
        );
    }

    /// v1 compatibility round-trip: arbitrary payload bytes written by
    /// the legacy writer come back bit-identical through [`open_any`].
    #[test]
    fn v1_round_trip_through_open_any(seed in 0u64..u64::MAX, len in 0usize..512) {
        let payload = pseudo_bytes(seed, len);
        let path = tmp("v1_roundtrip.lmp");
        checkpoint::write_container(&path, KIND_PIPELINE, &payload).unwrap();
        match open_any(&path, KIND_PIPELINE).unwrap() {
            Opened::V1(back) => prop_assert!(
                back == payload,
                "v1 payload of {len} bytes did not round-trip bitwise"
            ),
            Opened::V2(_) => prop_assert!(false, "v1 file dispatched to the v2 path"),
        }
    }

    /// Every single-bit flip in a v1 container is caught: the legacy
    /// format has no reserved bytes, so magic, version, kind, dtype,
    /// length, payload CRC, or trailer must all object.
    #[test]
    fn v1_single_bit_flip_is_always_typed(
        pos_seed in 0usize..usize::MAX,
        bit in 0u8..8,
        seed in 0u64..u64::MAX,
        len in 1usize..128,
    ) {
        let payload = pseudo_bytes(seed, len);
        let path = tmp("v1_flip.lmp");
        checkpoint::write_container(&path, KIND_PIPELINE, &payload).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            checkpoint::parse_container(&bytes, KIND_PIPELINE).is_err(),
            "v1 bit flip at byte {} bit {} was not detected",
            pos,
            bit
        );
    }
}

/// Deterministic pseudo-random bytes (xorshift64*) so the shimmed
/// proptest harness — which has no `any::<u8>()` strategy — still
/// exercises arbitrary payload content per case.
fn pseudo_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
        })
        .collect()
}
