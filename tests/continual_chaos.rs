//! Chaos suite for the continual-ingestion driver (DESIGN.md §14):
//! injected `continual.*` faults at the validation gate, the
//! champion/challenger refit, and the resident-snapshot persist.
//!
//! The invariants under test:
//!
//! * a quarantined source leaves the resident state byte-identical —
//!   the quality curve after an all-quarantined epoch is bitwise the
//!   curve of a run that never saw the source;
//! * a sabotaged challenger regresses on the holdout and auto-rolls
//!   back, with both the `refit-start` and the decision journaled, and
//!   a resumed run honors the journaled rollback without retraining;
//! * a snapshot fault fails *before* the atomic rename, so the previous
//!   generation survives bitwise and a restart recovers it;
//! * the full `continual.*` fault matrix never lets a panic escape.
//!
//! `scripts/verify.sh` runs this file at `LEAPME_THREADS=1` and `4`;
//! nothing here depends on the worker count, which is the point.

#![cfg(feature = "faults")]

use leapme::core::continual::{
    run_schedule, ContinualConfig, ContinualEvent, QuarantineReason, RunOptions,
};
use leapme::core::journal::RunJournal;
use leapme::core::pipeline::LeapmeConfig;
use leapme::data::drift::{generate_drift_schedule, DriftConfig, DriftSchedule};
use leapme::data::stress::StressConfig;
use leapme::faults::{fired_count, sites, with_plan};
use leapme::nn::network::TrainConfig;
use leapme::nn::schedule::LrSchedule;
use leapme::prelude::*;
use leapme::serve::snapshot::{self, ResidentSnapshot};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

// ---------------------------------------------------------------------
// fixture
// ---------------------------------------------------------------------

/// Serialize the tests in this file: `with_plan` installs a
/// process-global fault plan, so overlapping tests would poison each
/// other's draws.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("leapme_continual_chaos_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Two drifting arrivals (one per epoch) over a 120-property base —
/// the same scenario the `core::continual` unit tests drive.
fn small_drift() -> DriftConfig {
    DriftConfig {
        base: StressConfig {
            properties: 120,
            properties_per_source: 20,
            cluster_size: 4,
            instances_per_property: 1,
            seed: 17,
        },
        epochs: 2,
        sources_per_epoch: 1,
        naming_drift: 0.3,
        value_drift: 0.4,
        corrupt_every: 0,
    }
}

fn embeddings() -> EmbeddingStore {
    leapme::stress_embedding_store(&small_drift().base, 12, 5)
}

/// Fast training config for tests that only compare states bitwise —
/// quality is irrelevant, determinism is everything.
fn quick_cfg() -> ContinualConfig {
    ContinualConfig {
        label_budget: 24,
        model: LeapmeConfig {
            train: TrainConfig {
                schedule: LrSchedule::new(vec![(4, 1e-3)]),
                ..TrainConfig::default()
            },
            hidden: vec![8],
            ..LeapmeConfig::default()
        },
        ..ContinualConfig::default()
    }
}

/// Strong training config for the rollback tests: the champion must be
/// good enough that a sabotaged challenger reliably regresses.
fn strong_cfg() -> ContinualConfig {
    ContinualConfig {
        label_budget: 24,
        model: LeapmeConfig {
            train: TrainConfig {
                schedule: LrSchedule::new(vec![(16, 1e-3), (4, 1e-4)]),
                ..TrainConfig::default()
            },
            hidden: vec![24],
            ..LeapmeConfig::default()
        },
        ..ContinualConfig::default()
    }
}

/// Read back everything journaled so far. `RunJournal::replayed` only
/// surfaces records present at open time, so assertions re-open the
/// file — exactly what a resumed process would see.
fn events(path: &std::path::Path) -> Vec<ContinualEvent> {
    RunJournal::open(path)
        .unwrap()
        .replayed::<ContinualEvent>()
        .unwrap()
}

// ---------------------------------------------------------------------
// quarantine leaves the resident state untouched
// ---------------------------------------------------------------------

/// With every arrival quarantined, the quality curve never moves off
/// epoch 0: same sources, same properties, bitwise the same F1, and the
/// champion generation stays 0 — the gate admitted nothing, so nothing
/// changed.
#[test]
fn quarantining_every_arrival_freezes_the_resident_state() {
    let _guard = serial();
    let schedule = generate_drift_schedule(&small_drift());
    let emb = embeddings();
    let (report, fired) = with_plan("seed=31;continual.validate:malformed@1.0", || {
        let report =
            run_schedule(&schedule, &emb, &quick_cfg(), None, &RunOptions::default()).unwrap();
        (report, fired_count(sites::CONTINUAL_VALIDATE))
    });

    assert_eq!(report.quarantined.len(), schedule.arrivals.len());
    for q in &report.quarantined {
        assert_eq!(q.reason, QuarantineReason::Injected, "{}", q.source);
    }
    assert!(fired >= schedule.arrivals.len() as u64);

    let base = &report.points[0];
    for p in &report.points {
        assert_eq!(p.sources, base.sources, "epoch {}", p.epoch);
        assert_eq!(p.properties, base.properties, "epoch {}", p.epoch);
        assert_eq!(
            p.f1.to_bits(),
            base.f1.to_bits(),
            "epoch {} F1 moved off the epoch-0 state",
            p.epoch
        );
        assert_eq!(p.generation, 0, "epoch {}", p.epoch);
        assert!(p.decision.is_none(), "epoch {}", p.epoch);
    }
    assert_eq!(report.promotions, 0);
    assert_eq!(report.rollbacks, 0);
}

/// Sharper still: a run whose epoch-1 arrival is quarantined is bitwise
/// the run over a schedule that never contained that arrival — per
/// epoch, the same sources, properties, F1 bits, and generation.
#[test]
fn quarantined_source_is_as_if_it_never_arrived() {
    let _guard = serial();
    let schedule = generate_drift_schedule(&small_drift());
    let emb = embeddings();
    let cfg = quick_cfg();

    // `#1` caps the plan at one firing: only the first gate check (the
    // epoch-1 arrival) is rejected; the epoch-2 arrival integrates.
    let faulted = with_plan("seed=32;continual.validate:io@1.0#1", || {
        run_schedule(&schedule, &emb, &cfg, None, &RunOptions::default()).unwrap()
    });
    assert_eq!(faulted.quarantined.len(), 1);
    assert_eq!(faulted.quarantined[0].epoch, 1);

    let pruned = DriftSchedule {
        base: schedule.base.clone(),
        arrivals: schedule
            .arrivals
            .iter()
            .filter(|a| a.epoch != 1)
            .cloned()
            .collect(),
    };
    let reference = run_schedule(&pruned, &emb, &cfg, None, &RunOptions::default()).unwrap();

    assert_eq!(faulted.points.len(), reference.points.len());
    for (a, b) in faulted.points.iter().zip(&reference.points) {
        assert_eq!(a.sources, b.sources, "epoch {}", a.epoch);
        assert_eq!(a.properties, b.properties, "epoch {}", a.epoch);
        assert_eq!(
            a.f1.to_bits(),
            b.f1.to_bits(),
            "epoch {}: quarantined run f1={} vs never-arrived f1={}",
            a.epoch,
            a.f1,
            b.f1
        );
        assert_eq!(a.generation, b.generation, "epoch {}", a.epoch);
        assert_eq!(a.decision, b.decision, "epoch {}", a.epoch);
    }
}

// ---------------------------------------------------------------------
// challenger sabotage → rollback, journaled and honored on resume
// ---------------------------------------------------------------------

/// The `continual.refit` `nan` fault trains the challenger at a zero
/// learning rate: a guaranteed regression the holdout gate must catch.
/// The rollback and the clean epoch-2 decision are both journaled, and
/// a resumed run (fault gone) honors the journaled rollback without
/// training a second challenger.
#[test]
fn sabotaged_challenger_rolls_back_and_the_decision_survives_resume() {
    let _guard = serial();
    let schedule = generate_drift_schedule(&small_drift());
    let emb = embeddings();
    let cfg = strong_cfg();
    let path = tmp("rollback.journal");
    std::fs::remove_file(&path).ok();
    let opts = RunOptions {
        force_refit_every: Some(1),
        stop_after_epoch: Some(1),
        ..RunOptions::default()
    };

    // Crash run: the epoch-1 refit is sabotaged, then the driver stops
    // (simulating a kill after the epoch record landed).
    {
        let journal = RunJournal::open(&path).unwrap();
        let report = with_plan("seed=33;continual.refit:nan@1.0#1", || {
            run_schedule(&schedule, &emb, &cfg, Some(&journal), &opts).unwrap()
        });
        assert_eq!(report.rollbacks, 1, "sabotage must be caught");
        assert_eq!(report.promotions, 0);
        let p1 = &report.points[1];
        assert_eq!(p1.decision.as_deref(), Some("rollback"));
        assert_eq!(p1.generation, 0, "champion must be retained");

        let evs = events(&path);
        assert!(
            evs.iter().any(|e| e.event == "refit-start" && e.epoch == 1),
            "refit-start missing from the journal"
        );
        let rb = evs
            .iter()
            .find(|e| e.event == "rollback" && e.epoch == 1)
            .expect("rollback missing from the journal");
        let (champ, chal) = (rb.champion_f1.unwrap(), rb.challenger_f1.unwrap());
        assert!(
            chal < champ,
            "journaled rollback must show the regression: challenger {chal} vs champion {champ}"
        );
    }

    // Resume with no fault plan installed: the journaled rollback is
    // honored (epoch 1 decides "rollback" again, generation stays 0)
    // and is not journaled twice; epoch 2 refits cleanly and journals
    // its own decision.
    let journal = RunJournal::open(&path).unwrap();
    let resumed = run_schedule(
        &schedule,
        &emb,
        &cfg,
        Some(&journal),
        &RunOptions {
            force_refit_every: Some(1),
            ..RunOptions::default()
        },
    )
    .unwrap();
    let p1 = &resumed.points[1];
    assert_eq!(p1.decision.as_deref(), Some("rollback"));
    assert_eq!(p1.generation, 0);

    let evs = events(&path);
    let epoch1_rollbacks = evs
        .iter()
        .filter(|e| e.event == "rollback" && e.epoch == 1)
        .count();
    assert_eq!(epoch1_rollbacks, 1, "replay must not duplicate the decision");
    assert!(
        evs.iter()
            .any(|e| (e.event == "promote" || e.event == "rollback") && e.epoch == 2),
        "the epoch-2 refit decision must be journaled too"
    );
    std::fs::remove_file(&path).ok();
}

/// An `io` fault in the refit itself (not a bad challenger — a failed
/// training run) also rolls back: the champion is retained and the
/// journal says why.
#[test]
fn refit_io_fault_retains_the_champion() {
    let _guard = serial();
    let schedule = generate_drift_schedule(&small_drift());
    let emb = embeddings();
    let path = tmp("refit-io.journal");
    std::fs::remove_file(&path).ok();
    let journal = RunJournal::open(&path).unwrap();
    let opts = RunOptions {
        force_refit_every: Some(1),
        ..RunOptions::default()
    };
    let report = with_plan("seed=35;continual.refit:io@1.0", || {
        run_schedule(&schedule, &emb, &quick_cfg(), Some(&journal), &opts).unwrap()
    });

    assert_eq!(report.promotions, 0);
    assert_eq!(report.rollbacks, 2, "both forced refits fail and roll back");
    for p in &report.points {
        assert_eq!(p.generation, 0, "epoch {}: champion must survive", p.epoch);
    }
    let evs = events(&path);
    let rb = evs
        .iter()
        .find(|e| e.event == "rollback")
        .expect("rollback missing from the journal");
    assert!(
        rb.detail.as_deref().unwrap_or("").contains("refit failed"),
        "rollback detail should name the failure: {:?}",
        rb.detail
    );
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------
// snapshot faults fail before the rename
// ---------------------------------------------------------------------

/// Both snapshot fault kinds (`torn`, `io`) fail the persist before the
/// atomic rename: the previous generation's bytes survive untouched and
/// a restart recovers them — the in-process half of the SIGKILL drill
/// `scripts/verify.sh` runs against the real server binary.
#[test]
fn snapshot_fault_preserves_the_previous_generation_bitwise() {
    let _guard = serial();
    let schedule = generate_drift_schedule(&small_drift());
    let props = schedule.base.properties();
    let mut graph = SimilarityGraph::new();
    graph.add(PropertyPair::new(props[0].clone(), props[21].clone()), 0.9);
    let path = tmp("resident.snap");
    std::fs::remove_file(&path).ok();

    snapshot::save(
        &path,
        &ResidentSnapshot {
            dataset: schedule.base.clone(),
            graph: graph.clone(),
            generation: 1,
        },
    )
    .unwrap();
    let good_bytes = std::fs::read(&path).unwrap();

    let mut bigger = graph.clone();
    bigger.add(PropertyPair::new(props[1].clone(), props[22].clone()), 0.8);
    for spec in ["seed=36;continual.snapshot:io@1.0#1", "seed=36;continual.snapshot:torn@1.0#1"] {
        let err = with_plan(spec, || {
            snapshot::save(
                &path,
                &ResidentSnapshot {
                    dataset: schedule.base.clone(),
                    graph: bigger.clone(),
                    generation: 2,
                },
            )
        });
        assert!(err.is_err(), "{spec}: the persist must fail");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            good_bytes,
            "{spec}: the previous snapshot must survive bitwise"
        );
        let recovered = snapshot::load(&path).unwrap().expect("snapshot present");
        assert_eq!(recovered.generation, 1, "{spec}: restart recovers generation 1");
    }

    // With the plan gone the same write goes through.
    snapshot::save(
        &path,
        &ResidentSnapshot {
            dataset: schedule.base.clone(),
            graph: bigger,
            generation: 2,
        },
    )
    .unwrap();
    assert_eq!(snapshot::load(&path).unwrap().unwrap().generation, 2);
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------
// the continual.* fault matrix
// ---------------------------------------------------------------------

/// Every (site, kind) cell of the `continual.*` matrix, driven end to
/// end through the scenario driver plus a snapshot persist: the run may
/// quarantine, roll back, or return a structured error, but a panic
/// must never unwind out, and the champion generation only moves on a
/// journaled promotion. verify.sh runs this at `LEAPME_THREADS=1`
/// and `4`.
#[test]
fn continual_fault_matrix_never_aborts() {
    let _guard = serial();
    let schedule = generate_drift_schedule(&small_drift());
    let emb = embeddings();
    let snap_path = tmp("matrix.snap");

    let specs = [
        "seed=41;continual.validate:malformed@0.5",
        "seed=41;continual.validate:io@0.5",
        "seed=41;continual.refit:nan@1.0#1",
        "seed=41;continual.refit:io@1.0#1",
        "seed=41;continual.snapshot:torn@1.0#1",
        "seed=41;continual.snapshot:io@1.0#1",
        "seed=41;core.journal.append:torn@0.5#2",
    ];
    for spec in specs {
        std::fs::remove_file(&snap_path).ok();
        let outcome = with_plan(spec, || {
            catch_unwind(AssertUnwindSafe(|| {
                let opts = RunOptions {
                    force_refit_every: Some(2),
                    ..RunOptions::default()
                };
                // Inactive sites simply never fire; every spec drives
                // the full driver plus one snapshot persist.
                match run_schedule(&schedule, &emb, &quick_cfg(), None, &opts) {
                    Ok(report) => {
                        for p in &report.points {
                            assert!(p.f1.is_finite());
                            assert!(
                                p.generation == 0 || report.promotions > 0,
                                "{spec}: generation moved without a promotion"
                            );
                        }
                    }
                    Err(e) => {
                        // Structured errors are acceptable outcomes —
                        // exercise their Display while we're here.
                        let _ = e.to_string();
                    }
                }
                let _ = snapshot::save(
                    &snap_path,
                    &ResidentSnapshot {
                        dataset: schedule.base.clone(),
                        graph: SimilarityGraph::new(),
                        generation: 1,
                    },
                );
            }))
        });
        assert!(outcome.is_ok(), "panic escaped the driver under {spec:?}");
    }
    std::fs::remove_file(&snap_path).ok();
}
