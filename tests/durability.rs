//! Durability suite: the workspace-level guarantees of DESIGN.md §9.
//!
//! * A saved `.lmp` model scores bitwise identically to the in-memory
//!   model that produced it.
//! * Training interrupted mid-schedule and resumed from its checkpoint
//!   produces a model bitwise identical to an uninterrupted run.
//! * A journaled experiment replays finished repetitions on restart and
//!   aggregates to the same summary as an uninterrupted run.
//! * (With `--features faults`) torn writes, short reads, and flipped
//!   bits surface as typed checkpoint errors — a damaged file is never
//!   loaded silently.

use leapme::core::pipeline::{DurableFitOptions, Leapme, LeapmeConfig, LeapmeModel};
use leapme::core::runner::{run_repeated, run_repeated_durable, RunnerConfig};
use leapme::core::CoreError;
use leapme::nn::network::TrainConfig;
use leapme::nn::schedule::LrSchedule;
use leapme::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("leapme_durability_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A short two-stage schedule so a mid-schedule interruption crosses a
/// learning-rate boundary on resume.
fn quick_config() -> LeapmeConfig {
    LeapmeConfig {
        train: TrainConfig {
            schedule: LrSchedule::new(vec![(6, 1e-3), (2, 1e-4)]),
            ..TrainConfig::default()
        },
        hidden: vec![16],
        ..LeapmeConfig::default()
    }
}

/// Shared fixture: dataset, feature store, training pairs, and a
/// held-out candidate list.
fn fixture(seed: u64) -> (Dataset, EmbeddingStore) {
    let dataset = generate(Domain::Tvs, seed);
    let mut cfg = leapme::EmbeddingTrainingConfig::default();
    cfg.glove.dim = 8;
    cfg.glove.epochs = 2;
    let embeddings = leapme::train_domain_embeddings(&[Domain::Tvs], &cfg, seed).unwrap();
    (dataset, embeddings)
}

fn fit_and_pairs(
    dataset: &Dataset,
    store: &PropertyFeatureStore,
    opts: &DurableFitOptions<'_>,
) -> (Result<LeapmeModel, CoreError>, Vec<PropertyPair>) {
    let train_sources = vec![SourceId(0), SourceId(1), SourceId(2), SourceId(3)];
    let mut rng = StdRng::seed_from_u64(9);
    let train = training_pairs(dataset, &train_sources, 2, &mut rng);
    let test = test_pairs(dataset, &train_sources);
    (
        Leapme::fit_durable(store, &train, &quick_config(), opts),
        test,
    )
}

#[test]
fn saved_model_scores_bitwise_identically_end_to_end() {
    let (dataset, embeddings) = fixture(31);
    let store = PropertyFeatureStore::build(&dataset, &embeddings);
    let (model, test) = fit_and_pairs(&dataset, &store, &DurableFitOptions::default());
    let model = model.unwrap();

    let path = tmp("e2e_roundtrip.lmp");
    model.save(&path).unwrap();
    let loaded = LeapmeModel::load(&path).unwrap();

    let a = model.score_pairs(&store, &test).unwrap();
    let b = loaded.score_pairs(&store, &test).unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits(), "scores must be bitwise equal");
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn interrupted_training_resumes_bitwise_identically() {
    let (dataset, embeddings) = fixture(32);
    let store = PropertyFeatureStore::build(&dataset, &embeddings);
    let ckpt = tmp("e2e_resume.ckpt");
    let _ = std::fs::remove_file(&ckpt);

    // Uninterrupted reference run.
    let (reference, test) = fit_and_pairs(&dataset, &store, &DurableFitOptions::default());
    let reference = reference.unwrap().score_pairs(&store, &test).unwrap();

    // Cancel mid-schedule: the poll counter lets a few epochs through,
    // then flips, forcing a checkpoint-and-stop.
    let polls = AtomicUsize::new(0);
    let cancel = move || polls.fetch_add(1, Ordering::SeqCst) >= 4;
    let (cancelled, _) = fit_and_pairs(
        &dataset,
        &store,
        &DurableFitOptions {
            checkpoint_path: Some(&ckpt),
            cancel: Some(&cancel),
            ..Default::default()
        },
    );
    assert!(
        matches!(cancelled, Err(CoreError::Cancelled)),
        "expected cancellation, got {cancelled:?}"
    );
    assert!(ckpt.exists(), "cancellation must leave a checkpoint behind");

    // Resume to completion and compare scores bitwise.
    let (resumed, test) = fit_and_pairs(
        &dataset,
        &store,
        &DurableFitOptions {
            checkpoint_path: Some(&ckpt),
            resume: true,
            ..Default::default()
        },
    );
    let resumed = resumed.unwrap().score_pairs(&store, &test).unwrap();
    assert!(!ckpt.exists(), "completed run must remove its checkpoint");
    assert_eq!(reference.len(), resumed.len());
    for (x, y) in reference.iter().zip(&resumed) {
        assert_eq!(x.to_bits(), y.to_bits(), "resume must be bitwise equal");
    }
}

#[test]
fn journaled_experiment_replays_and_matches_uninterrupted_summary() {
    let (dataset, embeddings) = fixture(33);
    let store = PropertyFeatureStore::build(&dataset, &embeddings);
    let cfg = RunnerConfig {
        repetitions: 3,
        leapme: quick_config(),
        threads: 1,
        ..RunnerConfig::default()
    };
    let journal = tmp("e2e_runner.journal");
    let _ = std::fs::remove_file(&journal);

    // Uninterrupted reference (plain runner, serial).
    let (ref_summary, ref_outcomes) = run_repeated(&dataset, &store, &cfg).unwrap();

    // First durable pass journals everything; a restart replays it all
    // without recomputing and reaches the identical aggregate.
    let (first, _) = run_repeated_durable(&dataset, &store, &cfg, Some(&journal), None).unwrap();
    let (replayed, outcomes) =
        run_repeated_durable(&dataset, &store, &cfg, Some(&journal), None).unwrap();
    assert_eq!(first, replayed);
    assert_eq!(first, ref_summary);
    assert_eq!(outcomes, ref_outcomes);
    std::fs::remove_file(journal).ok();
}

#[cfg(feature = "faults")]
mod faults {
    use super::*;
    use leapme::faults::with_plan;

    #[test]
    fn torn_checkpoint_write_is_detected_and_recoverable() {
        let (dataset, embeddings) = fixture(34);
        let store = PropertyFeatureStore::build(&dataset, &embeddings);
        let (model, test) = fit_and_pairs(&dataset, &store, &DurableFitOptions::default());
        let model = model.unwrap();
        let path = tmp("faulty_torn.lmp");
        let _ = std::fs::remove_file(&path);

        // The torn write leaves half a container at the destination and
        // reports the failure; loading the wreckage is a typed error.
        with_plan("seed=1;nn.checkpoint.write:torn@1.0#1", || {
            let err = model.save(&path).unwrap_err();
            assert!(matches!(err, CoreError::Checkpoint(_)), "{err}");
            let err = LeapmeModel::load(&path).unwrap_err();
            assert!(matches!(err, CoreError::Checkpoint(_)), "{err}");
        });

        // A clean retry fully recovers: the rewritten file round-trips.
        model.save(&path).unwrap();
        let loaded = LeapmeModel::load(&path).unwrap();
        let a = model.score_pairs(&store, &test).unwrap();
        let b = loaded.score_pairs(&store, &test).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn short_read_and_bit_flip_are_typed_errors_never_silent() {
        let (dataset, embeddings) = fixture(35);
        let store = PropertyFeatureStore::build(&dataset, &embeddings);
        let (model, _) = fit_and_pairs(&dataset, &store, &DurableFitOptions::default());
        let model = model.unwrap();
        let path = tmp("faulty_read.lmp");
        model.save(&path).unwrap();

        for spec in [
            "seed=1;nn.checkpoint.read:short-read@1.0#1",
            "seed=1;nn.checkpoint.read:bit-flip@1.0#1",
            "seed=1;nn.checkpoint.read:io@1.0#1",
        ] {
            with_plan(spec, || {
                let err = LeapmeModel::load(&path).unwrap_err();
                assert!(matches!(err, CoreError::Checkpoint(_)), "{spec}: {err}");
            });
        }
        // Without an armed fault the very same file loads fine.
        LeapmeModel::load(&path).unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn torn_journal_append_loses_one_record_not_the_run() {
        let (dataset, embeddings) = fixture(36);
        let store = PropertyFeatureStore::build(&dataset, &embeddings);
        let cfg = RunnerConfig {
            repetitions: 2,
            leapme: quick_config(),
            threads: 1,
            ..RunnerConfig::default()
        };
        let journal = tmp("faulty_runner.journal");
        let _ = std::fs::remove_file(&journal);

        // The first repetition's append tears mid-line; the bounded
        // retry repairs the torn tail and re-appends, so the run
        // completes as if nothing happened and the journal is clean.
        let (summary, _) = with_plan("seed=1;core.journal.append:torn@1.0#1", || {
            run_repeated_durable(&dataset, &store, &cfg, Some(&journal), None).unwrap()
        });
        let (reference, _) = run_repeated(&dataset, &store, &cfg).unwrap();
        assert_eq!(summary, reference);
        let j = leapme::core::journal::RunJournal::open(&journal).unwrap();
        assert_eq!(j.len(), 2, "both repetitions journaled, no torn tail");
        assert!(!j.truncated_tail());
        drop(j);
        std::fs::remove_file(&journal).ok();

        // A *persistent* append failure exhausts the retry budget and
        // surfaces as a typed journal error — never an infinite loop.
        let fresh = tmp("faulty_runner_exhaust.journal");
        let _ = std::fs::remove_file(&fresh);
        let err = with_plan("seed=1;core.journal.append:io@1.0", || {
            run_repeated_durable(&dataset, &store, &cfg, Some(&fresh), None).unwrap_err()
        });
        match err {
            CoreError::Journal(leapme::core::journal::JournalError::RetriesExhausted {
                attempts,
                ..
            }) => assert!(attempts >= 2, "budget actually spent: {attempts}"),
            other => panic!("expected retries-exhausted journal error, got {other}"),
        }
        std::fs::remove_file(fresh).ok();
    }
}
