//! End-to-end integration: dataset generation → embedding training →
//! feature extraction → classifier training → similarity graph →
//! clustering, across every crate in the workspace.

use leapme::core::sampling;
use leapme::data::corpus::CorpusConfig;
use leapme::embedding::glove::GloVeConfig;
use leapme::nn::network::TrainConfig;
use leapme::nn::schedule::LrSchedule;
use leapme::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Small but real embedding setup shared by the integration tests.
fn embeddings(domain: Domain, seed: u64) -> EmbeddingStore {
    train_domain_embeddings(
        &[domain],
        &EmbeddingTrainingConfig {
            corpus: CorpusConfig {
                sentences_per_synonym: 10,
                filler_sentences: 40,
            },
            glove: GloVeConfig {
                dim: 16,
                epochs: 10,
                ..GloVeConfig::default()
            },
            ..EmbeddingTrainingConfig::default()
        },
        seed,
    )
    .expect("embedding training")
}

fn quick_config() -> LeapmeConfig {
    LeapmeConfig {
        train: TrainConfig {
            schedule: LrSchedule::new(vec![(8, 1e-3), (2, 1e-4)]),
            ..TrainConfig::default()
        },
        hidden: vec![32, 16],
        ..LeapmeConfig::default()
    }
}

#[test]
fn full_pipeline_on_tvs() {
    let seed = 71;
    let dataset = generate(Domain::Tvs, seed);
    let stats = dataset.stats();
    assert_eq!(stats.sources, 8);
    assert!(stats.matching_pairs > 50);

    let embeddings = embeddings(Domain::Tvs, seed);
    let store = PropertyFeatureStore::build(&dataset, &embeddings);
    assert_eq!(store.len(), dataset.properties().len());

    let mut rng = StdRng::seed_from_u64(seed);
    let split = split_sources(dataset.sources().len(), 0.8, &mut rng).unwrap();
    let train = training_pairs(&dataset, &split.train, 2, &mut rng);
    let model = Leapme::fit(&store, &train, &quick_config()).unwrap();

    // Evaluate on the paper's sampled test examples.
    let examples = sampling::test_examples(&dataset, &split.train, 2, &mut rng);
    let pairs: Vec<PropertyPair> = examples.iter().map(|(p, _)| p.clone()).collect();
    let gt = examples
        .iter()
        .filter(|(_, y)| *y)
        .map(|(p, _)| p.clone())
        .collect();
    let graph = model.predict_graph(&store, &pairs).unwrap();
    let metrics = Metrics::from_sets(&graph.matches(0.5), &gt);
    assert!(
        metrics.f1 > 0.5,
        "end-to-end quality collapsed: {metrics}"
    );

    // Clustering consumes the graph.
    let clusters = star_clustering(&graph, 0.5);
    assert!(clusters.non_trivial().count() > 0);
    let cluster_metrics = clusters.pairwise_metrics(&dataset);
    assert!(cluster_metrics.f1 > 0.0);
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let dataset = generate(Domain::Headphones, 5);
        let embeddings = embeddings(Domain::Headphones, 5);
        let store = PropertyFeatureStore::build(&dataset, &embeddings);
        let mut rng = StdRng::seed_from_u64(5);
        let split = split_sources(dataset.sources().len(), 0.8, &mut rng).unwrap();
        let train = training_pairs(&dataset, &split.train, 2, &mut rng);
        let model = Leapme::fit(&store, &train, &quick_config()).unwrap();
        let test = test_pairs(&dataset, &split.train);
        model.score_pairs(&store, &test).unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn feature_dimensions_consistent_across_crates() {
    let dataset = generate(Domain::Headphones, 9);
    let embeddings = embeddings(Domain::Headphones, 9);
    let store = PropertyFeatureStore::build(&dataset, &embeddings);
    let d = store.dim();
    // Table I arithmetic at this dimension.
    assert_eq!(store.full_pair_len(), 29 + 2 * d + 8);
    for cfg in FeatureConfig::all() {
        let props = dataset.properties();
        let (a, b) = (&props[0], props.iter().find(|p| p.source != props[0].source).unwrap());
        let v = store.pair_vector(a, b, &cfg).unwrap();
        assert_eq!(v.len(), cfg.feature_count(d), "{cfg}");
    }
}

#[test]
fn sampled_eval_protocol_consistency() {
    // The runner and a manual evaluation with the same seed must agree.
    use leapme::core::runner::{run_once, RunnerConfig};
    let dataset = generate(Domain::Tvs, 13);
    let embeddings = embeddings(Domain::Tvs, 13);
    let store = PropertyFeatureStore::build(&dataset, &embeddings);
    let cfg = RunnerConfig {
        repetitions: 1,
        leapme: quick_config(),
        base_seed: 13,
        ..RunnerConfig::default()
    };
    let a = run_once(&dataset, &store, &cfg, 0).unwrap();
    let b = run_once(&dataset, &store, &cfg, 0).unwrap();
    assert_eq!(a.metrics, b.metrics);
    assert!(a.test_pairs > 0);
    assert!(a.train_pairs > 0);
}
