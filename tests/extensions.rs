//! Integration tests for the extension modules (blocking, fusion,
//! incremental matching, PR curves, calibration, feature importance) —
//! the paper's future-work surface, exercised end-to-end through the
//! facade.

use leapme::core::blocking::{
    combined_candidates, evaluate_blocking, EmbeddingBlocker, TokenBlocker,
};
use leapme::core::calibration::calibration_report;
use leapme::core::fusion::fuse;
use leapme::core::importance::permutation_importance;
use leapme::core::incremental::integrate_source;
use leapme::core::prcurve::PrCurve;
use leapme::core::sampling;
use leapme::data::corpus::CorpusConfig;
use leapme::embedding::glove::GloVeConfig;
use leapme::nn::network::TrainConfig;
use leapme::nn::schedule::LrSchedule;
use leapme::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn embeddings(domain: Domain, seed: u64) -> EmbeddingStore {
    train_domain_embeddings(
        &[domain],
        &EmbeddingTrainingConfig {
            corpus: CorpusConfig {
                sentences_per_synonym: 10,
                filler_sentences: 40,
            },
            glove: GloVeConfig {
                dim: 16,
                epochs: 10,
                ..GloVeConfig::default()
            },
            ..EmbeddingTrainingConfig::default()
        },
        seed,
    )
    .unwrap()
}

fn quick_config() -> LeapmeConfig {
    LeapmeConfig {
        train: TrainConfig {
            schedule: LrSchedule::new(vec![(8, 1e-3), (2, 1e-4)]),
            ..TrainConfig::default()
        },
        hidden: vec![32, 16],
        ..LeapmeConfig::default()
    }
}

#[test]
fn blocked_matching_preserves_most_quality() {
    let seed = 90;
    let dataset = generate(Domain::Tvs, seed);
    let emb = embeddings(Domain::Tvs, seed);
    let store = PropertyFeatureStore::build(&dataset, &emb);

    let mut rng = StdRng::seed_from_u64(seed);
    let split = split_sources(dataset.sources().len(), 0.8, &mut rng).unwrap();
    let train = training_pairs(&dataset, &split.train, 2, &mut rng);
    let model = Leapme::fit(&store, &train, &quick_config()).unwrap();

    // Full-space matching vs blocked matching on the held-out region.
    let full: Vec<PropertyPair> = test_pairs(&dataset, &split.train);
    let gt = test_ground_truth(&dataset, &split.train);

    let candidates = combined_candidates(
        &dataset,
        &emb,
        &TokenBlocker::default(),
        &EmbeddingBlocker { k: 25 },
    );
    let stats = evaluate_blocking(&dataset, &candidates);
    assert!(stats.reduction_ratio > 0.3);

    let blocked: Vec<PropertyPair> = full
        .iter()
        .filter(|p| candidates.contains(*p))
        .cloned()
        .collect();
    assert!(blocked.len() < full.len());

    let full_matches = model.predict_graph(&store, &full).unwrap().matches(0.5);
    let blocked_matches = model.predict_graph(&store, &blocked).unwrap().matches(0.5);
    let full_m = Metrics::from_sets(&full_matches, &gt);
    let blocked_m = Metrics::from_sets(&blocked_matches, &gt);
    // Blocking can only lose recall, and should lose little.
    assert!(blocked_m.recall <= full_m.recall + 1e-12);
    assert!(
        blocked_m.recall > full_m.recall * 0.75,
        "blocking lost too much recall: {} vs {}",
        blocked_m.recall,
        full_m.recall
    );
}

#[test]
fn fusion_builds_unified_schema_from_predictions() {
    let seed = 91;
    let dataset = generate(Domain::Headphones, seed);
    let emb = embeddings(Domain::Headphones, seed);
    let store = PropertyFeatureStore::build(&dataset, &emb);
    let mut rng = StdRng::seed_from_u64(seed);
    let split = split_sources(dataset.sources().len(), 0.8, &mut rng).unwrap();
    let train = training_pairs(&dataset, &split.train, 2, &mut rng);
    let model = Leapme::fit(&store, &train, &quick_config()).unwrap();
    let graph = model
        .predict_graph(&store, &test_pairs(&dataset, &split.train))
        .unwrap();

    let clustering = star_clustering(&graph, 0.5);
    let schema = fuse(&dataset, &clustering);
    assert!(!schema.properties.is_empty());
    // Every fused property spans at least two sources and has samples.
    for p in &schema.properties {
        assert!(p.sources.len() >= 2 || p.members.len() >= 2);
        assert!(!p.sample_values.is_empty() || p.instance_count == 0);
    }
    // Rendering works.
    assert!(schema.to_text().contains("unified schema"));
}

#[test]
fn incremental_integration_through_facade() {
    let seed = 92;
    let dataset = generate(Domain::Tvs, seed);
    let emb = embeddings(Domain::Tvs, seed);
    let store = PropertyFeatureStore::build(&dataset, &emb);
    let train_sources: Vec<SourceId> = (0..6).map(SourceId).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let train = sampling::training_pairs(&dataset, &train_sources, 2, &mut rng);
    let model = Leapme::fit(&store, &train, &quick_config()).unwrap();
    let mut graph = model
        .predict_graph(&store, &dataset.cross_source_pairs(&train_sources))
        .unwrap();

    let before_nodes = graph.nodes().len();
    let out = integrate_source(&model, &store, &dataset, &mut graph, SourceId(7)).unwrap();
    assert!(out.scored_pairs > 0);
    assert!(graph.nodes().len() > before_nodes);
    assert!(!out.attached.is_empty());
}

#[test]
fn prcurve_and_calibration_over_real_scores() {
    let seed = 93;
    let dataset = generate(Domain::Tvs, seed);
    let emb = embeddings(Domain::Tvs, seed);
    let store = PropertyFeatureStore::build(&dataset, &emb);
    let mut rng = StdRng::seed_from_u64(seed);
    let split = split_sources(dataset.sources().len(), 0.8, &mut rng).unwrap();
    let train = training_pairs(&dataset, &split.train, 2, &mut rng);
    let model = Leapme::fit(&store, &train, &quick_config()).unwrap();

    let examples = sampling::test_examples(&dataset, &split.train, 2, &mut rng);
    let pairs: Vec<PropertyPair> = examples.iter().map(|(p, _)| p.clone()).collect();
    let scores = model.score_pairs(&store, &pairs).unwrap();
    let scored: Vec<(f32, bool)> = scores
        .iter()
        .zip(&examples)
        .map(|(&s, (_, y))| (s, *y))
        .collect();

    let curve = PrCurve::from_scores(&scored).expect("positives exist");
    let best = curve.best_f1();
    assert!(best.f1 > 0.5, "best F1 {}", best.f1);
    assert!(curve.average_precision() > 0.5);
    // The fixed 0.5 threshold cannot beat the curve's optimum.
    let fixed = {
        let predicted: std::collections::BTreeSet<PropertyPair> = pairs
            .iter()
            .zip(&scores)
            .filter(|(_, &s)| s >= 0.5)
            .map(|(p, _)| p.clone())
            .collect();
        let gt = examples
            .iter()
            .filter(|(_, y)| *y)
            .map(|(p, _)| p.clone())
            .collect();
        Metrics::from_sets(&predicted, &gt).f1
    };
    assert!(best.f1 + 1e-9 >= fixed);

    let report = calibration_report(&scored, 10).expect("non-empty");
    assert_eq!(report.samples, scored.len());
    assert!(report.brier < 0.3, "brier {}", report.brier);
    assert!(report.ece < 0.5);
}

#[test]
fn importance_through_facade() {
    let seed = 94;
    let dataset = generate(Domain::Headphones, seed);
    let emb = embeddings(Domain::Headphones, seed);
    let store = PropertyFeatureStore::build(&dataset, &emb);
    let mut rng = StdRng::seed_from_u64(seed);
    let split = split_sources(dataset.sources().len(), 0.8, &mut rng).unwrap();
    let train = training_pairs(&dataset, &split.train, 2, &mut rng);
    // Importance needs the full feature configuration.
    let model = Leapme::fit(&store, &train, &quick_config()).unwrap();
    let examples = sampling::test_examples(&dataset, &split.train, 2, &mut rng);
    let report = permutation_importance(&model, &store, &examples, seed).unwrap();
    assert_eq!(report.blocks.len(), 4);
    assert!(report.baseline_f1 > 0.5);
}
