//! Property-based invariants spanning crates: generated datasets obey the
//! model's contracts at every seed, and the feature stack stays
//! layout-consistent over them.

use leapme::data::domains::{generate, Domain};
use leapme::data::model::{PropertyPair, SourceId};
use leapme::features::{FeatureConfig, PropertyFeatureStore};
use leapme::prelude::*;
use proptest::prelude::*;

fn small_embeddings(dim: usize) -> EmbeddingStore {
    let mut s = EmbeddingStore::new(dim);
    for (i, w) in [
        "screen", "size", "resolution", "panel", "brand", "price", "weight", "battery", "model",
        "hdmi", "refresh", "rate", "smart", "inch", "color",
    ]
    .iter()
    .enumerate()
    {
        let mut v = vec![0.0f32; dim];
        v[i % dim] = 1.0;
        s.insert(w, v).unwrap();
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Dataset invariants hold for arbitrary generation seeds.
    #[test]
    fn generated_datasets_are_consistent(seed in 0u64..500) {
        let ds = generate(Domain::Tvs, seed);
        let stats = ds.stats();
        prop_assert_eq!(stats.sources, 8);
        prop_assert!(stats.aligned_properties <= stats.properties);

        // Ground truth only contains cross-source, same-reference pairs.
        for PropertyPair(a, b) in ds.ground_truth_pairs() {
            prop_assert_ne!(a.source, b.source);
            prop_assert_eq!(ds.alignment_of(&a), ds.alignment_of(&b));
            prop_assert!(ds.alignment_of(&a).is_some());
        }

        // Schemas have unique names and cover all instances.
        for sid in 0..stats.sources {
            let schema = ds.schema_of(SourceId(sid as u16));
            let set: std::collections::BTreeSet<&String> = schema.iter().collect();
            prop_assert_eq!(set.len(), schema.len());
        }

        // JSON round trip is lossless with respect to ground truth.
        let back = Dataset::from_json(&ds.to_json()).unwrap();
        prop_assert_eq!(back.ground_truth_pairs(), ds.ground_truth_pairs());
    }

    /// Pair feature vectors are symmetric, finite, and layout-stable for
    /// arbitrary seeds.
    #[test]
    fn pair_features_are_symmetric_and_finite(seed in 0u64..200) {
        let ds = generate(Domain::Headphones, seed);
        let emb = small_embeddings(6);
        let store = PropertyFeatureStore::build(&ds, &emb);
        let props = ds.properties();
        let a = &props[0];
        let b = props
            .iter()
            .find(|p| p.source != a.source)
            .expect("multi-source dataset");

        let ab = store.full_pair_vector(a, b).unwrap();
        let ba = store.full_pair_vector(b, a).unwrap();
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.len(), store.full_pair_len());
        prop_assert!(ab.iter().all(|v| v.is_finite()));

        // Every configuration projects to its advertised width.
        for cfg in FeatureConfig::all() {
            let v = store.pair_vector(a, b, &cfg).unwrap();
            prop_assert_eq!(v.len(), cfg.feature_count(store.dim()));
        }
    }

    /// Cross-source pair counts follow the handshake formula.
    #[test]
    fn cross_source_pair_count_formula(seed in 0u64..100) {
        let ds = generate(Domain::Phones, seed);
        let all: Vec<SourceId> = (0..ds.sources().len()).map(|i| SourceId(i as u16)).collect();
        let pairs = ds.cross_source_pairs(&all);
        // Σ over source pairs of |schema_i| · |schema_j|.
        let sizes: Vec<usize> = all.iter().map(|&s| ds.schema_of(s).len()).collect();
        let mut expected = 0usize;
        for i in 0..sizes.len() {
            for j in i + 1..sizes.len() {
                expected += sizes[i] * sizes[j];
            }
        }
        prop_assert_eq!(pairs.len(), expected);
    }
}
