//! Shape assertions from the paper's evaluation (§V-C), checked on a
//! reduced budget so they run inside `cargo test`:
//!
//! * LEAPME (all features) beats every unsupervised baseline in F1;
//! * unsupervised lexical baselines have (near-)perfect precision but
//!   limited recall;
//! * embedding features beat non-embedding features on name matching;
//! * 80% training sources beat 20%.

use leapme::baselines::{aml::AmlMatcher, fcamap::FcaMapMatcher, lsh::LshMatcher, Matcher};
use leapme::core::runner::{run_repeated, RunnerConfig};
use leapme::core::sampling;
use leapme::data::corpus::CorpusConfig;
use leapme::embedding::glove::GloVeConfig;
use leapme::nn::network::TrainConfig;
use leapme::nn::schedule::LrSchedule;
use leapme::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(domain: Domain, seed: u64) -> (Dataset, EmbeddingStore, PropertyFeatureStore) {
    let dataset = generate(domain, seed);
    let embeddings = train_domain_embeddings(
        &[domain],
        &EmbeddingTrainingConfig {
            corpus: CorpusConfig {
                sentences_per_synonym: 12,
                filler_sentences: 40,
            },
            glove: GloVeConfig {
                dim: 24,
                epochs: 12,
                ..GloVeConfig::default()
            },
            ..EmbeddingTrainingConfig::default()
        },
        seed,
    )
    .unwrap();
    let store = PropertyFeatureStore::build(&dataset, &embeddings);
    (dataset, embeddings, store)
}

fn runner(features: FeatureConfig, fraction: f64, seed: u64) -> RunnerConfig {
    RunnerConfig {
        train_fraction: fraction,
        repetitions: 2,
        leapme: LeapmeConfig {
            features,
            train: TrainConfig {
                schedule: LrSchedule::new(vec![(8, 1e-3), (4, 1e-4)]),
                ..TrainConfig::default()
            },
            hidden: vec![48, 24],
            ..LeapmeConfig::default()
        },
        base_seed: seed,
        ..RunnerConfig::default()
    }
}

#[test]
fn leapme_beats_unsupervised_baselines() {
    let seed = 40;
    let (dataset, _emb, store) = setup(Domain::Tvs, seed);
    let (leapme, _) =
        run_repeated(&dataset, &store, &runner(FeatureConfig::full(), 0.8, seed)).unwrap();

    // Baselines on the identical protocol (single rep is enough for a
    // strict ordering at this margin).
    let mut rng = StdRng::seed_from_u64(leapme_seed(seed));
    let split = sampling::split_sources(dataset.sources().len(), 0.8, &mut rng).unwrap();
    let _ = sampling::training_pairs(&dataset, &split.train, 2, &mut rng);
    let examples = sampling::test_examples(&dataset, &split.train, 2, &mut rng);
    let pairs: Vec<PropertyPair> = examples.iter().map(|(p, _)| p.clone()).collect();
    let gt = examples
        .iter()
        .filter(|(_, y)| *y)
        .map(|(p, _)| p.clone())
        .collect();

    for matcher in [
        Box::new(AmlMatcher::new()) as Box<dyn Matcher>,
        Box::new(FcaMapMatcher::new()),
        Box::new(LshMatcher::new()),
    ] {
        let m = Metrics::from_sets(&matcher.predict(&dataset, &pairs), &gt);
        assert!(
            leapme.f1_mean > m.f1,
            "{} (F1 {:.2}) not beaten by LEAPME (F1 {:.2})",
            matcher.name(),
            m.f1,
            leapme.f1_mean
        );
    }
}

fn leapme_seed(base: u64) -> u64 {
    leapme::core::runner::repetition_seed(base, 0)
}

#[test]
fn unsupervised_lexical_baselines_are_high_precision_low_recall() {
    let seed = 41;
    let (dataset, _emb, _store) = setup(Domain::Headphones, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let split = sampling::split_sources(dataset.sources().len(), 0.8, &mut rng).unwrap();
    let examples = sampling::test_examples(&dataset, &split.train, 2, &mut rng);
    let pairs: Vec<PropertyPair> = examples.iter().map(|(p, _)| p.clone()).collect();
    let gt = examples
        .iter()
        .filter(|(_, y)| *y)
        .map(|(p, _)| p.clone())
        .collect();

    for matcher in [
        Box::new(AmlMatcher::new()) as Box<dyn Matcher>,
        Box::new(FcaMapMatcher::new()),
    ] {
        let m = Metrics::from_sets(&matcher.predict(&dataset, &pairs), &gt);
        assert!(
            m.precision > 0.85,
            "{} precision {:.2} not high",
            matcher.name(),
            m.precision
        );
        assert!(
            m.recall < 0.8,
            "{} recall {:.2} unexpectedly high",
            matcher.name(),
            m.recall
        );
    }
}

#[test]
fn embeddings_beat_non_embeddings_on_names() {
    let seed = 42;
    let (dataset, _emb, store) = setup(Domain::Phones, seed);
    let emb_cfg = FeatureConfig {
        scope: FeatureScope::Names,
        kind: FeatureKind::Embeddings,
    };
    let nonemb_cfg = FeatureConfig {
        scope: FeatureScope::Names,
        kind: FeatureKind::NonEmbeddings,
    };
    let (with_emb, _) = run_repeated(&dataset, &store, &runner(emb_cfg, 0.8, seed)).unwrap();
    let (without_emb, _) =
        run_repeated(&dataset, &store, &runner(nonemb_cfg, 0.8, seed)).unwrap();
    assert!(
        with_emb.f1_mean > without_emb.f1_mean,
        "emb {:.3} vs -emb {:.3}",
        with_emb.f1_mean,
        without_emb.f1_mean
    );
}

#[test]
fn more_training_sources_help() {
    let seed = 43;
    let (dataset, _emb, store) = setup(Domain::Tvs, seed);
    let (low, _) =
        run_repeated(&dataset, &store, &runner(FeatureConfig::full(), 0.2, seed)).unwrap();
    let (high, _) =
        run_repeated(&dataset, &store, &runner(FeatureConfig::full(), 0.8, seed)).unwrap();
    assert!(
        high.f1_mean >= low.f1_mean - 0.02,
        "80% ({:.3}) should not trail 20% ({:.3})",
        high.f1_mean,
        low.f1_mean
    );
}
