//! Robustness: poisoned inputs must never panic the pipeline or leak
//! non-finite scores (DESIGN.md §8).
//!
//! These tests run without the `faults` feature — they poison the
//! *data* (NaN/±Inf/1e308 literals, empty and whitespace-only property
//! names, zero embedding coverage), not the code paths.

use leapme::nn::network::TrainConfig;
use leapme::nn::schedule::LrSchedule;
use leapme::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Numeric literals that historically break careless float pipelines.
const POISON_VALUES: &[&str] = &[
    "NaN", "nan", "inf", "-inf", "1e308", "-1e308", "9e307", "", "  ", "∞",
];

fn quick_config() -> LeapmeConfig {
    LeapmeConfig {
        train: TrainConfig {
            schedule: LrSchedule::new(vec![(4, 1e-3)]),
            ..TrainConfig::default()
        },
        hidden: vec![8],
        ..LeapmeConfig::default()
    }
}

/// A four-source dataset whose values are drawn from `values` and whose
/// schema includes an empty-named and a whitespace-only property.
fn poisoned_dataset(values: &[&str]) -> Dataset {
    let sources: Vec<String> = (0..4).map(|i| format!("s{i}")).collect();
    // (local name, reference name); "" and "   " are deliberately
    // degenerate but aligned, so they appear in training pairs too.
    let schema = [
        ("weight", "weight"),
        ("price", "price"),
        ("", "blank"),
        ("   ", "space"),
    ];
    let mut instances = Vec::new();
    let mut alignment = BTreeMap::new();
    let mut v = 0usize;
    for s in 0..4u16 {
        for (name, reference) in schema {
            alignment.insert(PropertyKey::new(SourceId(s), name), reference.to_string());
            for e in 0..3 {
                instances.push(Instance {
                    source: SourceId(s),
                    property: name.to_string(),
                    entity: format!("e{e}"),
                    value: values[v % values.len()].to_string(),
                });
                v += 1;
            }
        }
    }
    Dataset::new("poisoned", sources, instances, alignment).unwrap()
}

/// Fit + score on a poisoned dataset; every score must be a finite
/// probability. Returns the scores for extra assertions.
fn fit_and_score(dataset: &Dataset, seed: u64) -> Vec<f32> {
    let store = PropertyFeatureStore::try_build(dataset, &EmbeddingStore::new(8)).unwrap();
    let train_sources = vec![SourceId(0), SourceId(1), SourceId(2)];
    let mut rng = StdRng::seed_from_u64(seed);
    let train = training_pairs(dataset, &train_sources, 2, &mut rng);
    assert!(!train.is_empty());
    let model = Leapme::fit(&store, &train, &quick_config()).unwrap();
    let all_sources: Vec<SourceId> = (0..4).map(SourceId).collect();
    let candidates = dataset.cross_source_pairs(&all_sources);
    assert!(!candidates.is_empty());
    model.score_pairs(&store, &candidates).unwrap()
}

#[test]
fn poisoned_values_and_degenerate_names_score_finite() {
    let dataset = poisoned_dataset(POISON_VALUES);
    let scores = fit_and_score(&dataset, 7);
    for s in &scores {
        assert!(s.is_finite(), "non-finite score {s}");
        assert!((0.0..=1.0).contains(s), "score {s} out of [0, 1]");
    }
}

#[test]
fn zero_embedding_coverage_still_trains_in_degraded_mode() {
    // An empty embedding store resolves nothing: every property loses
    // its embedding signal and the run must fall back to the 29
    // non-embedding features for all of them.
    let dataset = generate(Domain::Tvs, 23);
    let store = PropertyFeatureStore::try_build(&dataset, &EmbeddingStore::new(16)).unwrap();
    assert!((store.degradation().fraction() - 1.0).abs() < f64::EPSILON);
    assert_eq!(store.degradation().total, dataset.properties().len());
    assert!(store.degradation().summary().contains("100%"));

    let mut rng = StdRng::seed_from_u64(23);
    let split = split_sources(dataset.sources().len(), 0.8, &mut rng).unwrap();
    let train = training_pairs(&dataset, &split.train, 2, &mut rng);
    let model = Leapme::fit(&store, &train, &quick_config()).unwrap();
    let graph = model
        .predict_graph(&store, &test_pairs(&dataset, &split.train))
        .unwrap();
    assert!(!graph.is_empty());
    for (_, score) in graph.iter() {
        assert!(score.is_finite());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any mix of poison literals trains and scores finite.
    #[test]
    fn arbitrary_poison_mixes_never_panic(
        picks in proptest::collection::vec(0usize..POISON_VALUES.len(), 3..10),
        seed in 0u64..1000,
    ) {
        let values: Vec<&str> = picks.iter().map(|&i| POISON_VALUES[i]).collect();
        let dataset = poisoned_dataset(&values);
        let scores = fit_and_score(&dataset, seed);
        for s in &scores {
            prop_assert!(s.is_finite(), "non-finite score {}", s);
        }
    }
}
