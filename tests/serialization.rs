//! Cross-crate serialization: datasets, embeddings, trained models, and
//! similarity graphs survive round trips and still interoperate.

use leapme::core::sampling;
use leapme::core::pipeline::{Leapme, LeapmeConfig, LeapmeModel};
use leapme::core::simgraph::SimilarityGraph;
use leapme::nn::network::TrainConfig;
use leapme::nn::schedule::LrSchedule;
use leapme::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_embeddings() -> EmbeddingStore {
    let mut s = EmbeddingStore::new(8);
    let words = [
        "screen", "size", "resolution", "panel", "brand", "price", "weight", "model", "hdmi",
        "inch", "refresh", "rate",
    ];
    for (i, w) in words.iter().enumerate() {
        let mut v = vec![0.0f32; 8];
        v[i % 8] = 1.0;
        v[(i + 3) % 8] = 0.5;
        s.insert(w, v).unwrap();
    }
    s
}

#[test]
fn dataset_round_trip_preserves_everything() {
    let dataset = generate(Domain::Tvs, 3);
    let json = dataset.to_json();
    let back = Dataset::from_json(&json).unwrap();
    assert_eq!(back.stats(), dataset.stats());
    assert_eq!(back.ground_truth_pairs(), dataset.ground_truth_pairs());
    // Indices are rebuilt: instance lookups still work.
    let key = dataset.properties().into_iter().next().unwrap();
    assert_eq!(
        back.instances_of(&key).len(),
        dataset.instances_of(&key).len()
    );
}

#[test]
fn embedding_text_round_trip_preserves_features() {
    let emb = small_embeddings();
    let dir = std::env::temp_dir().join("leapme_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("itest_vectors.txt");
    emb.save_text(&path).unwrap();
    let loaded = EmbeddingStore::load_text(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let dataset = generate(Domain::Tvs, 4);
    let store_a = PropertyFeatureStore::build(&dataset, &emb);
    let store_b = PropertyFeatureStore::build(&dataset, &loaded);
    let props = dataset.properties();
    let a = &props[0];
    let b = props.iter().find(|p| p.source != a.source).unwrap();
    assert_eq!(
        store_a.full_pair_vector(a, b),
        store_b.full_pair_vector(a, b)
    );
}

#[test]
fn trained_model_round_trip_scores_identically() {
    let dataset = generate(Domain::Tvs, 5);
    let emb = small_embeddings();
    let store = PropertyFeatureStore::build(&dataset, &emb);
    let mut rng = StdRng::seed_from_u64(5);
    let split = sampling::split_sources(dataset.sources().len(), 0.8, &mut rng).unwrap();
    let train = sampling::training_pairs(&dataset, &split.train, 2, &mut rng);
    let cfg = LeapmeConfig {
        train: TrainConfig {
            schedule: LrSchedule::constant(3, 1e-3),
            ..TrainConfig::default()
        },
        hidden: vec![8],
        ..LeapmeConfig::default()
    };
    let model = Leapme::fit(&store, &train, &cfg).unwrap();

    let json = serde_json::to_string(&model).unwrap();
    let restored: LeapmeModel = serde_json::from_str(&json).unwrap();

    let test = sampling::test_pairs(&dataset, &split.train);
    assert_eq!(
        model.score_pairs(&store, &test).unwrap(),
        restored.score_pairs(&store, &test).unwrap()
    );
}

#[test]
fn similarity_graph_round_trip() {
    let dataset = generate(Domain::Headphones, 6);
    let props = dataset.properties();
    let mut graph = SimilarityGraph::new();
    let mut n = 0;
    'outer: for a in &props {
        for b in &props {
            if a.source != b.source {
                graph.add(PropertyPair::new(a.clone(), b.clone()), 0.1 * (n % 10) as f32);
                n += 1;
                if n >= 50 {
                    break 'outer;
                }
            }
        }
    }
    let json = serde_json::to_string(&graph).unwrap();
    let back: SimilarityGraph = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), graph.len());
    assert_eq!(back.matches(0.5), graph.matches(0.5));
    assert_eq!(back.nodes(), graph.nodes());
}
