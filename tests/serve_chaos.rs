//! Chaos suite for `leapme serve` (DESIGN.md §13): hostile clients,
//! deadline expiry mid-score, overload, injected `serve.*` faults, and
//! the graceful-drain contract.
//!
//! Every test drives a real in-process server over real TCP sockets —
//! the same accept loop, worker pool, and parser the binary runs. The
//! invariants under test:
//!
//! * no panic escapes the worker pool (injected or real);
//! * overload sheds with `503 + Retry-After`, never unbounded memory;
//! * a deadline expiry returns the partial results already computed,
//!   flagged degraded;
//! * warm-served responses are byte-identical to the batch pipeline on
//!   the same pairs;
//! * at shutdown every admitted request completes — the drain is clean.

use leapme::core::pipeline::{Leapme, LeapmeConfig, LeapmeModel};
use leapme::core::sampling;
use leapme::nn::network::TrainConfig;
use leapme::nn::schedule::LrSchedule;
use leapme::prelude::*;
use leapme::serve::{self, ServeConfig, ServeState};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

// ---------------------------------------------------------------------
// fixture
// ---------------------------------------------------------------------

/// Serialize the tests in this file: each one runs a real server with
/// real sockets (and, under `--features faults`, a process-global fault
/// plan), so overlapping them would let one test's chaos leak into
/// another's assertions.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Expensive shared pieces, built once: the dataset, a trained model,
/// and the embeddings persisted to a temp file (the store is rebuilt
/// per test because it is consumed by the server state).
fn fixture() -> &'static (Dataset, LeapmeModel, std::path::PathBuf) {
    static FIXTURE: OnceLock<(Dataset, LeapmeModel, std::path::PathBuf)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = generate(Domain::Tvs, 41);
        let mut ecfg = leapme::EmbeddingTrainingConfig::default();
        ecfg.glove.dim = 8;
        ecfg.glove.epochs = 2;
        let embeddings = leapme::train_domain_embeddings(&[Domain::Tvs], &ecfg, 41).unwrap();
        let emb_path = std::env::temp_dir()
            .join("leapme_serve_chaos_tests")
            .join("emb.txt");
        std::fs::create_dir_all(emb_path.parent().unwrap()).unwrap();
        embeddings.save_text(&emb_path).unwrap();

        let store = PropertyFeatureStore::build(&dataset, &embeddings);
        let train_sources = vec![SourceId(0), SourceId(1), SourceId(2), SourceId(3)];
        let mut rng = StdRng::seed_from_u64(9);
        let train = training_pairs(&dataset, &train_sources, 2, &mut rng);
        let cfg = LeapmeConfig {
            train: TrainConfig {
                schedule: LrSchedule::new(vec![(4, 1e-3)]),
                ..TrainConfig::default()
            },
            hidden: vec![8],
            ..LeapmeConfig::default()
        };
        let model = Leapme::fit(&store, &train, &cfg).unwrap();
        (dataset, model, emb_path)
    })
}

/// Fresh embeddings + feature store for one server instance.
fn load_parts() -> (EmbeddingStore, PropertyFeatureStore) {
    let (dataset, _, emb_path) = fixture();
    let mut embeddings = EmbeddingStore::load_text(emb_path).unwrap();
    embeddings.set_fuzzy_oov(true);
    let store = PropertyFeatureStore::build(dataset, &embeddings);
    (embeddings, store)
}

/// Start a server on an OS-assigned port with the shared fixture.
fn start_server(config: ServeConfig) -> (serve::ServerHandle, Arc<ServeState>) {
    let (dataset, model, _) = fixture();
    let (embeddings, store) = load_parts();
    let state = Arc::new(ServeState::new(
        model.clone(),
        embeddings,
        dataset.clone(),
        store,
        None,
        config,
    ));
    let handle = serve::start(Arc::clone(&state), None).unwrap();
    (handle, state)
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 8,
        io_timeout: Duration::from_millis(400),
        request_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    }
}

// ---------------------------------------------------------------------
// a deliberately low-level HTTP client
// ---------------------------------------------------------------------

/// Write `raw` to a fresh connection and read until EOF.
fn raw_roundtrip(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).unwrap();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &str,
    body: &str,
) -> String {
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n{extra_headers}\r\n{body}",
        body.len()
    );
    raw_roundtrip(addr, raw.as_bytes())
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    request_with_headers(addr, method, path, "", body)
}

/// Status code from a raw response.
fn status_of(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"))
}

/// Body (everything after the blank line).
fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

/// Extract an unsigned JSON number field from a flat JSON body.
fn json_u64(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let rest = &body[body.find(&pat).unwrap_or_else(|| panic!("{key} in {body}")) + pat.len()..];
    rest.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

/// A `/score` body for the first `n` cross-source candidate pairs.
fn score_body(dataset: &Dataset, n: usize) -> (Vec<PropertyPair>, String) {
    let pairs: Vec<PropertyPair> = sampling::test_pairs(dataset, &[]).into_iter().take(n).collect();
    let quads: Vec<(u16, String, u16, String)> = pairs
        .iter()
        .map(|PropertyPair(a, b)| (a.source.0, a.name.clone(), b.source.0, b.name.clone()))
        .collect();
    let body = format!(
        "{{\"pairs\":{}}}",
        serde_json::to_string(&quads).unwrap()
    );
    (pairs, body)
}

// ---------------------------------------------------------------------
// happy paths + byte identity with the batch pipeline
// ---------------------------------------------------------------------

#[test]
fn health_ready_and_metrics_answer() {
    let _g = serial();
    let (handle, _state) = start_server(quick_config());
    let addr = handle.addr();

    let health = request(addr, "GET", "/healthz", "");
    assert_eq!(status_of(&health), 200);
    assert!(body_of(&health).contains("\"ok\""));

    let ready = request(addr, "GET", "/readyz", "");
    assert_eq!(status_of(&ready), 200);
    assert!(body_of(&ready).contains("\"ready\""));
    assert!(body_of(&ready).contains("\"generation\":0"));

    let metrics = request(addr, "GET", "/metrics", "");
    assert_eq!(status_of(&metrics), 200);
    assert!(body_of(&metrics).contains("\"draining\":false"));

    let missing = request(addr, "GET", "/nope", "");
    assert_eq!(status_of(&missing), 404);
    let wrong_method = request(addr, "POST", "/healthz", "");
    assert_eq!(status_of(&wrong_method), 405);

    handle.shutdown();
    assert!(handle.join().clean);
}

#[test]
fn warm_score_is_byte_identical_to_batch_scoring() {
    let _g = serial();
    let (dataset, model, _) = fixture();
    let (_, store) = load_parts();
    let (handle, _state) = start_server(quick_config());

    let (pairs, body) = score_body(dataset, 64);
    let response = request(handle.addr(), "POST", "/score", &body);
    assert_eq!(status_of(&response), 200);

    // The served scores must be byte-identical to the batch pipeline's
    // on the same pairs: same scorer, same serializer, same bytes.
    let expected = model.score_pairs(&store, &pairs).unwrap();
    let expected_json = format!(
        "\"scores\":{}",
        serde_json::to_string(&expected).unwrap()
    );
    assert!(
        body_of(&response).contains(&expected_json),
        "served scores diverge from batch scores"
    );
    assert!(body_of(&response).contains("\"degraded\":false"));

    handle.shutdown();
    assert!(handle.join().clean);
}

#[test]
fn warm_match_is_byte_identical_to_batch_graph() {
    let _g = serial();
    let (dataset, model, _) = fixture();
    let (_, store) = load_parts();
    let (handle, state) = start_server(quick_config());

    let response = request(handle.addr(), "POST", "/match", "");
    assert_eq!(status_of(&response), 200);

    // Exactly the bytes `match --model` would write for the same
    // dataset: all cross-source pairs through the same streaming
    // scorer, pretty-printed by the same serializer.
    let candidates = sampling::test_pairs(dataset, &[]);
    let graph = model.predict_graph(&store, &candidates).unwrap();
    let expected = serde_json::to_string_pretty(&graph).unwrap();
    assert_eq!(body_of(&response), expected, "served graph diverges from batch graph");

    // A second identical request may be answered by the single-flight
    // cache; either way the bytes are the same.
    let again = request(handle.addr(), "POST", "/match", "");
    assert_eq!(body_of(&again), expected);
    drop(state);

    handle.shutdown();
    assert!(handle.join().clean);
}

// ---------------------------------------------------------------------
// hostile inputs
// ---------------------------------------------------------------------

#[test]
fn malformed_and_unknown_inputs_get_typed_400s() {
    let _g = serial();
    let (handle, _state) = start_server(quick_config());
    let addr = handle.addr();

    let bad_json = request(addr, "POST", "/score", "{not json");
    assert_eq!(status_of(&bad_json), 400);
    assert!(body_of(&bad_json).contains("malformed-json"));

    let unknown = request(
        addr,
        "POST",
        "/score",
        "{\"pairs\":[[0,\"no-such-property\",1,\"also-missing\"]]}",
    );
    assert_eq!(status_of(&unknown), 400);
    assert!(body_of(&unknown).contains("unknown-property"));

    let bad_source = request(addr, "POST", "/score", "{\"pairs\":[[99,\"x\",0,\"y\"]]}");
    assert_eq!(status_of(&bad_source), 400);
    assert!(body_of(&bad_source).contains("unknown-source"));

    let bad_deadline =
        request_with_headers(addr, "POST", "/match", "x-leapme-deadline-ms: soon\r\n", "");
    assert_eq!(status_of(&bad_deadline), 400);
    assert!(body_of(&bad_deadline).contains("bad-deadline"));

    let bad_csv = request(addr, "POST", "/integrate-source", "\u{1}\u{2}\u{3}");
    assert_eq!(status_of(&bad_csv), 400);

    handle.shutdown();
    assert!(handle.join().clean);
}

#[test]
fn oversized_body_is_rejected_before_buffering() {
    let _g = serial();
    let mut config = quick_config();
    config.limits.max_body_bytes = 1024;
    let (handle, _state) = start_server(config);

    // Declared 10 MiB against a 1 KiB cap: rejected at the header, no
    // body bytes ever read or buffered.
    let raw = format!(
        "POST /score HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n",
        10 * 1024 * 1024
    );
    let response = raw_roundtrip(handle.addr(), raw.as_bytes());
    assert_eq!(status_of(&response), 413);
    assert!(body_of(&response).contains("payload-too-large"));

    // The server is unharmed.
    assert_eq!(status_of(&request(handle.addr(), "GET", "/healthz", "")), 200);
    handle.shutdown();
    assert!(handle.join().clean);
}

#[test]
fn slow_loris_is_cut_off_by_the_read_timeout() {
    let _g = serial();
    let (handle, state) = start_server(quick_config());

    // Dribble a partial head and stall past the io timeout.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"POST /score HTTP/1.1\r\nhost:").unwrap();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    assert_eq!(status_of(&out), 408, "slow-loris gets a request timeout");

    // The worker moved on; the server still answers.
    assert_eq!(status_of(&request(handle.addr(), "GET", "/healthz", "")), 200);
    assert!(
        state.metrics.client_errors.load(std::sync::atomic::Ordering::Relaxed) >= 1
    );
    handle.shutdown();
    assert!(handle.join().clean);
}

#[test]
fn mid_request_disconnect_is_absorbed() {
    let _g = serial();
    let (handle, state) = start_server(quick_config());

    // Half a request, then vanish.
    {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .write_all(b"POST /score HTTP/1.1\r\ncontent-length: 100\r\n\r\n{\"pa")
            .unwrap();
    } // dropped: RST/EOF mid-body

    // Wait for a worker to process the carcass, then prove liveness.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while state.metrics.disconnects.load(std::sync::atomic::Ordering::Relaxed) == 0
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        state.metrics.disconnects.load(std::sync::atomic::Ordering::Relaxed) >= 1,
        "mid-request disconnect should be counted, not crash anything"
    );
    assert_eq!(status_of(&request(handle.addr(), "GET", "/healthz", "")), 200);
    handle.shutdown();
    assert!(handle.join().clean);
}

// ---------------------------------------------------------------------
// deadlines and overload
// ---------------------------------------------------------------------

#[test]
fn deadline_expiry_mid_score_returns_degraded_partials() {
    let _g = serial();
    let (dataset, _, _) = fixture();
    let (handle, _state) = start_server(quick_config());

    let (pairs, body) = score_body(dataset, 256);
    // A zero-millisecond deadline expires before the first chunk.
    let response = request_with_headers(
        handle.addr(),
        "POST",
        "/score",
        "x-leapme-deadline-ms: 0\r\n",
        &body,
    );
    assert_eq!(status_of(&response), 200, "partials are a success, not an error");
    assert!(response.contains("x-leapme-degraded: true"), "degraded header set");
    let resp_body = body_of(&response);
    assert!(resp_body.contains("\"degraded\":true"));
    let scored = json_u64(resp_body, "scored");
    assert!(
        (scored as usize) < pairs.len(),
        "deadline must cut the run short ({scored} of {})",
        pairs.len()
    );

    handle.shutdown();
    assert!(handle.join().clean);
}

#[test]
fn overload_sheds_with_503_and_retry_after_not_memory() {
    let _g = serial();
    let mut config = quick_config();
    config.workers = 1;
    config.queue_depth = 2;
    config.io_timeout = Duration::from_millis(300);
    let (handle, state) = start_server(config);
    let addr = handle.addr();

    // Flood with idle connections: 1 occupies the worker, 2 fill the
    // queue, the rest must be shed immediately — not buffered.
    let mut conns: Vec<TcpStream> = (0..10)
        .map(|_| {
            let s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        })
        .collect();

    let mut shed_seen = 0;
    for stream in conns.iter_mut() {
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        if out.is_empty() {
            continue; // admitted conn we never wrote to: closed on timeout
        }
        if status_of(&out) == 503 {
            shed_seen += 1;
            assert!(out.contains("retry-after:"), "shed responses advertise Retry-After");
            assert!(body_of(&out).contains("overloaded"));
        }
    }
    assert!(shed_seen >= 1, "a 10-deep flood over a 3-slot server must shed");
    assert!(
        state.metrics.shed.load(std::sync::atomic::Ordering::Relaxed) >= shed_seen,
        "metrics record the shed connections"
    );

    // The flood is over; service resumes.
    assert_eq!(status_of(&request(addr, "GET", "/healthz", "")), 200);
    handle.shutdown();
    assert!(handle.join().clean);
}

// ---------------------------------------------------------------------
// graceful drain
// ---------------------------------------------------------------------

#[test]
fn drain_completes_in_flight_requests_and_journals_the_shutdown() {
    let _g = serial();
    let journal_path = std::env::temp_dir()
        .join("leapme_serve_chaos_tests")
        .join("drain.journal");
    std::fs::create_dir_all(journal_path.parent().unwrap()).unwrap();
    let _ = std::fs::remove_file(&journal_path);

    let (dataset, model, _) = fixture();
    let (embeddings, store) = load_parts();
    let journal = leapme::core::journal::RunJournal::open(&journal_path).unwrap();
    let state = Arc::new(ServeState::new(
        model.clone(),
        embeddings,
        dataset.clone(),
        store,
        Some(journal),
        quick_config(),
    ));
    let handle = serve::start(Arc::clone(&state), None).unwrap();
    let addr = handle.addr();

    // A client whose request is mid-flight when the drain starts.
    let (_, body) = score_body(dataset, 128);
    let client = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let head = format!(
            "POST /score HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).unwrap();
        // Trickle the body so the request is still in flight at SIGTERM.
        let (a, b) = body.as_bytes().split_at(body.len() / 2);
        stream.write_all(a).unwrap();
        std::thread::sleep(Duration::from_millis(120));
        stream.write_all(b).unwrap();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        out
    });

    std::thread::sleep(Duration::from_millis(60)); // let the request be admitted
    handle.shutdown();
    let report = handle.join();

    let response = client.join().unwrap();
    assert_eq!(
        status_of(&response),
        200,
        "the in-flight request must complete through the drain"
    );
    assert!(report.clean, "no admitted connection may be dropped: {report:?}");
    assert!(report.completed >= 1);

    // New connections are refused (or told 503) after the drain.
    assert!(
        TcpStream::connect(addr).map(|mut s| {
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            out.is_empty() || status_of(&out) == 503
        }).unwrap_or(true),
        "post-drain connections must not be served"
    );

    let journaled = std::fs::read_to_string(&journal_path).unwrap();
    assert!(journaled.contains("serve.start"), "startup journaled");
    assert!(journaled.contains("serve.shutdown"), "shutdown journaled");
    assert!(journaled.contains("\"clean\":true"));
}

// ---------------------------------------------------------------------
// source integration against the resident graph
// ---------------------------------------------------------------------

#[test]
fn integrate_source_swaps_resident_state_atomically() {
    let _g = serial();
    let (handle, state) = start_server(quick_config());
    let addr = handle.addr();

    let csv = "source,property,entity,value\n\
               newshop,screen size,e1,55 inch\n\
               newshop,resolution,e1,3840x2160\n";
    let response = request(addr, "POST", "/integrate-source", csv);
    assert_eq!(status_of(&response), 200, "integration failed: {response}");
    let resp_body = body_of(&response);
    assert!(resp_body.contains("newshop"));
    assert_eq!(json_u64(resp_body, "generation"), 1);
    assert_eq!(json_u64(resp_body, "imported_rows"), 2);

    // The resident dataset grew; readyz reflects the new generation.
    let ready = request(addr, "GET", "/readyz", "");
    assert!(body_of(&ready).contains("\"generation\":1"));
    {
        let resident = state.single().expect("single-model mode").resident.read().unwrap();
        assert!(resident.dataset.sources().iter().any(|s| s == "newshop"));
        assert_eq!(resident.generation, 1);
    }

    // Uploading rows for an already-resident source is refused.
    let dup = request(addr, "POST", "/integrate-source", csv);
    assert_eq!(status_of(&dup), 400);
    assert!(body_of(&dup).contains("existing-source"));

    handle.shutdown();
    assert!(handle.join().clean);
}

// ---------------------------------------------------------------------
// keep-alive: bounded multi-request connections
// ---------------------------------------------------------------------

/// Write one request on an already-open connection and read exactly one
/// framed response (headers, then `content-length` bytes of body) —
/// without consuming the connection, unlike [`raw_roundtrip`].
fn exchange(stream: &mut TcpStream, raw: &[u8]) -> String {
    stream.write_all(raw).unwrap();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 512];
    let head_end = loop {
        if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break p + 4;
        }
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "connection closed mid-response: {buf:?}");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).unwrap().to_ascii_lowercase();
    let clen: usize = head
        .split("content-length:")
        .nth(1)
        .and_then(|r| r.split_whitespace().next())
        .and_then(|v| v.parse().ok())
        .expect("content-length in response head");
    while buf.len() < head_end + clen {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "connection closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    String::from_utf8_lossy(&buf[..head_end + clen]).into_owned()
}

/// `Connection: keep-alive` grants a second request on the same socket;
/// the response at the budget edge advertises `connection: close` and
/// the server hangs up. A request without the header closes immediately.
#[test]
fn keep_alive_is_granted_explicitly_and_bounded_by_the_budget() {
    let _g = serial();
    let (handle, _state) = start_server(ServeConfig {
        keep_alive_max_requests: 2,
        ..quick_config()
    });
    let addr = handle.addr();

    let keep_alive_get =
        b"GET /healthz HTTP/1.1\r\nhost: test\r\nconnection: keep-alive\r\ncontent-length: 0\r\n\r\n";
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    let first = exchange(&mut stream, keep_alive_get);
    assert_eq!(status_of(&first), 200);
    assert!(
        first.to_ascii_lowercase().contains("connection: keep-alive"),
        "first response must advertise keep-alive: {first}"
    );

    // Same socket, second request: budget of 2 is now spent, so the
    // response says close and the stream reaches EOF.
    let second = exchange(&mut stream, keep_alive_get);
    assert_eq!(status_of(&second), 200);
    assert!(
        second.to_ascii_lowercase().contains("connection: close"),
        "budget-edge response must advertise close: {second}"
    );
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server wrote past the keep-alive budget");

    // No `connection: keep-alive` header → one exchange, then EOF.
    let mut plain = TcpStream::connect(addr).unwrap();
    plain.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let only = exchange(
        &mut plain,
        b"GET /healthz HTTP/1.1\r\nhost: test\r\ncontent-length: 0\r\n\r\n",
    );
    assert_eq!(status_of(&only), 200);
    assert!(only.to_ascii_lowercase().contains("connection: close"));
    let mut rest = Vec::new();
    plain.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    handle.shutdown();
    assert!(handle.join().clean);
}

// ---------------------------------------------------------------------
// generation-pinned snapshots around integrate-source
// ---------------------------------------------------------------------

/// With `snapshot_path` configured, a successful integration persists
/// the new generation before the swap, and a restart-shaped load
/// recovers exactly the resident state the server is serving.
#[test]
fn integrate_persists_a_generation_pinned_snapshot() {
    let _g = serial();
    let snap_path = std::env::temp_dir()
        .join("leapme_serve_chaos_tests")
        .join("resident.snap");
    std::fs::remove_file(&snap_path).ok();
    let (handle, state) = start_server(ServeConfig {
        snapshot_path: Some(snap_path.clone()),
        ..quick_config()
    });

    let csv = "source,property,entity,value\n\
               snapshop,screen size,e1,55 inch\n\
               snapshop,resolution,e1,3840x2160\n";
    let response = request(handle.addr(), "POST", "/integrate-source", csv);
    assert_eq!(status_of(&response), 200, "integration failed: {response}");
    assert_eq!(json_u64(body_of(&response), "generation"), 1);

    let snap = leapme::serve::snapshot::load(&snap_path)
        .unwrap()
        .expect("snapshot persisted before the swap");
    assert_eq!(snap.generation, 1);
    assert!(snap.dataset.sources().iter().any(|s| s == "snapshop"));
    {
        let resident = state.single().expect("single-model mode").resident.read().unwrap();
        assert_eq!(resident.generation, snap.generation);
        assert_eq!(resident.graph.len(), snap.graph.len());
    }

    handle.shutdown();
    assert!(handle.join().clean);
    std::fs::remove_file(&snap_path).ok();
}

// ---------------------------------------------------------------------
// injected faults: the serve.* sites
// ---------------------------------------------------------------------

#[cfg(feature = "faults")]
mod faults {
    use super::*;
    use leapme::faults::{fired_count, sites, with_plan};
    use std::sync::atomic::Ordering;

    /// The full serve fault matrix: each site fires once at probability
    /// 1; the server must absorb the fault, record it, and keep serving.
    #[test]
    fn serve_fault_matrix_never_kills_the_server() {
        let _g = serial();

        // -- serve.handler: a panicking handler costs one 500 ---------
        with_plan("seed=11;serve.handler:panic@1.0#1", || {
            let (handle, state) = start_server(quick_config());
            let poisoned = request(handle.addr(), "GET", "/healthz", "");
            assert_eq!(status_of(&poisoned), 500, "panic surfaces as a 500");
            assert!(body_of(&poisoned).contains("internal"));
            assert_eq!(state.metrics.worker_panics.load(Ordering::Relaxed), 1);
            assert_eq!(fired_count(sites::SERVE_HANDLER), 1);
            // The worker survived; the very next request succeeds.
            assert_eq!(status_of(&request(handle.addr(), "GET", "/healthz", "")), 200);
            handle.shutdown();
            assert!(handle.join().clean);
        });

        // -- serve.read (io): a failing socket read costs one 400 -----
        with_plan("seed=12;serve.read:io@1.0#1", || {
            let (handle, _state) = start_server(quick_config());
            let failed = request(handle.addr(), "GET", "/healthz", "");
            assert_eq!(status_of(&failed), 400);
            assert_eq!(status_of(&request(handle.addr(), "GET", "/healthz", "")), 200);
            handle.shutdown();
            assert!(handle.join().clean);
        });

        // -- serve.read (torn): a torn read is a silent disconnect ----
        with_plan("seed=13;serve.read:torn@1.0#1", || {
            let (handle, state) = start_server(quick_config());
            let out = request(handle.addr(), "GET", "/healthz", "");
            assert!(out.is_empty(), "torn request gets no response, got {out:?}");
            assert_eq!(state.metrics.disconnects.load(Ordering::Relaxed), 1);
            assert_eq!(status_of(&request(handle.addr(), "GET", "/healthz", "")), 200);
            handle.shutdown();
            assert!(handle.join().clean);
        });

        // -- serve.write: a failing response write is counted ---------
        with_plan("seed=14;serve.write:io@1.0#1", || {
            let (handle, state) = start_server(quick_config());
            let out = request(handle.addr(), "GET", "/healthz", "");
            assert!(out.is_empty(), "failed write means no bytes reach the client");
            assert_eq!(state.metrics.write_failures.load(Ordering::Relaxed), 1);
            assert_eq!(status_of(&request(handle.addr(), "GET", "/healthz", "")), 200);
            handle.shutdown();
            assert!(handle.join().clean);
        });

        // -- serve.accept: a dropped accept loses one connection ------
        with_plan("seed=15;serve.accept:io@1.0#1", || {
            let (handle, state) = start_server(quick_config());
            let out = request(handle.addr(), "GET", "/healthz", "");
            assert!(out.is_empty(), "faulted accept drops the connection");
            assert_eq!(state.metrics.accept_faults.load(Ordering::Relaxed), 1);
            assert_eq!(status_of(&request(handle.addr(), "GET", "/healthz", "")), 200);
            handle.shutdown();
            assert!(handle.join().clean);
        });
    }

    /// Sustained handler chaos under load: every response is either a
    /// success or a typed 500, the panic count matches the fired count,
    /// and the drain is still clean.
    #[test]
    fn sustained_handler_panics_never_escape_the_pool() {
        let _g = serial();
        with_plan("seed=21;serve.handler:panic@0.5", || {
            let (handle, state) = start_server(quick_config());
            let mut survived = 0;
            let mut poisoned = 0;
            for _ in 0..20 {
                match status_of(&request(handle.addr(), "GET", "/healthz", "")) {
                    200 => survived += 1,
                    500 => poisoned += 1,
                    other => panic!("unexpected status {other}"),
                }
            }
            assert_eq!(survived + poisoned, 20, "every request gets an answer");
            assert_eq!(
                state.metrics.worker_panics.load(Ordering::Relaxed),
                fired_count(sites::SERVE_HANDLER),
                "every fired panic is one caught panic"
            );
            handle.shutdown();
            let report = handle.join();
            assert!(report.clean);
            assert_eq!(report.worker_panics, poisoned as u64);
        });
    }

    /// A `continual.snapshot` fault during `integrate-source` refuses
    /// the swap: the client gets a typed 500, the resident generation
    /// never moves, no snapshot file appears — and once the fault
    /// clears, the very same upload integrates and persists normally.
    #[test]
    fn snapshot_fault_refuses_the_swap_and_keeps_disk_and_memory_agreed() {
        let _g = serial();
        let snap_path = std::env::temp_dir()
            .join("leapme_serve_chaos_tests")
            .join("faulted.snap");
        std::fs::remove_file(&snap_path).ok();
        let (handle, state) = start_server(ServeConfig {
            snapshot_path: Some(snap_path.clone()),
            ..quick_config()
        });
        let csv = "source,property,entity,value\n\
                   faultshop,screen size,e1,55 inch\n";

        with_plan("seed=16;continual.snapshot:io@1.0#1", || {
            let refused = request(handle.addr(), "POST", "/integrate-source", csv);
            assert_eq!(status_of(&refused), 500, "swap must be refused: {refused}");
            assert!(body_of(&refused).contains("snapshot-failed"));
            assert_eq!(fired_count(sites::CONTINUAL_SNAPSHOT), 1);
        });
        assert!(!snap_path.exists(), "no partial snapshot may survive");
        {
            let resident = state.single().expect("single-model mode").resident.read().unwrap();
            assert_eq!(resident.generation, 0, "refused swap must not move memory");
            assert!(!resident.dataset.sources().iter().any(|s| s == "faultshop"));
        }

        // Fault cleared: the retry goes through and persists gen 1.
        let ok = request(handle.addr(), "POST", "/integrate-source", csv);
        assert_eq!(status_of(&ok), 200, "retry after the fault: {ok}");
        assert_eq!(json_u64(body_of(&ok), "generation"), 1);
        assert_eq!(
            leapme::serve::snapshot::load(&snap_path).unwrap().unwrap().generation,
            1
        );

        handle.shutdown();
        assert!(handle.join().clean);
        std::fs::remove_file(&snap_path).ok();
    }
}
