//! Registry-mode serve suite (DESIGN.md §15): a server over a
//! `--models` directory routes by model selector, faults domains in
//! lazily, hot-swaps on `POST /reload`, and answers the typed errors
//! the contract promises — 400 `bad-model` for a malformed or missing
//! selector, 404 `unknown-model` for a well-formed but absent one.
//!
//! Like `serve_chaos`, every test drives a real in-process server over
//! real TCP sockets.

use leapme::core::feature_cache;
use leapme::core::pipeline::{Leapme, LeapmeConfig};
use leapme::core::registry::{ModelRegistry, RegistryConfig};
use leapme::core::sampling;
use leapme::nn::network::TrainConfig;
use leapme::nn::schedule::LrSchedule;
use leapme::prelude::*;
use leapme::serve::{self, ServeConfig, ServeState};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Serialize the tests: each runs a real server on real sockets.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Build one domain directory: train a small model on the synthetic
/// domain, persist `model.lmp` + `dataset.json`, and either a warm
/// `features.lfc` (the zero-copy fast path) or raw `embeddings.txt`
/// (the rebuild path).
fn write_domain(root: &Path, name: &str, domain: Domain, warm_cache: bool) {
    let dir = root.join(name);
    std::fs::create_dir_all(&dir).unwrap();
    let dataset = generate(domain, 4);
    let embeddings = EmbeddingStore::new(8);
    let store = PropertyFeatureStore::build(&dataset, &embeddings);
    let sources: Vec<SourceId> = (0..dataset.sources().len() as u16).map(SourceId).collect();
    let mut rng = StdRng::seed_from_u64(17);
    let train = training_pairs(&dataset, &sources, 2, &mut rng);
    let cfg = LeapmeConfig {
        train: TrainConfig {
            schedule: LrSchedule::new(vec![(2, 1e-3)]),
            ..TrainConfig::default()
        },
        hidden: vec![4],
        ..LeapmeConfig::default()
    };
    let model = Leapme::fit(&store, &train, &cfg).unwrap();
    model.save(&dir.join("model.lmp")).unwrap();
    std::fs::write(dir.join("dataset.json"), dataset.to_json()).unwrap();
    if warm_cache {
        let fp = feature_cache::fingerprint(&dataset, &embeddings);
        feature_cache::save(&dir.join("features.lfc"), &store, &fp).unwrap();
    } else {
        embeddings.save_text(&dir.join("embeddings.txt")).unwrap();
    }
}

/// A two-domain registry root, built once and shared read-only.
fn registry_root() -> &'static PathBuf {
    static ROOT: OnceLock<PathBuf> = OnceLock::new();
    ROOT.get_or_init(|| {
        let root = std::env::temp_dir()
            .join("leapme_serve_registry_tests")
            .join(format!("root-{}", std::process::id()));
        std::fs::create_dir_all(&root).unwrap();
        write_domain(&root, "tvs", Domain::Tvs, true);
        write_domain(&root, "headphones", Domain::Headphones, false);
        root
    })
}

fn start_registry_server() -> (serve::ServerHandle, Arc<ServeState>) {
    let registry = ModelRegistry::open(registry_root(), RegistryConfig::default()).unwrap();
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 8,
        io_timeout: Duration::from_millis(400),
        request_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let state = Arc::new(ServeState::with_registry(Arc::new(registry), None, config));
    let handle = serve::start(Arc::clone(&state), None).unwrap();
    (handle, state)
}

fn raw_roundtrip(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).unwrap();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &str,
    body: &str,
) -> String {
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n{extra_headers}\r\n{body}",
        body.len()
    );
    raw_roundtrip(addr, raw.as_bytes())
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    request_with_headers(addr, method, path, "", body)
}

fn status_of(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"))
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

/// A `/score` body for the first `n` cross-source pairs of `dataset`,
/// optionally carrying a `model` selector field.
fn score_body(dataset: &Dataset, n: usize, model: Option<&str>) -> String {
    let pairs: Vec<PropertyPair> =
        sampling::test_pairs(dataset, &[]).into_iter().take(n).collect();
    let quads: Vec<(u16, String, u16, String)> = pairs
        .iter()
        .map(|PropertyPair(a, b)| (a.source.0, a.name.clone(), b.source.0, b.name.clone()))
        .collect();
    match model {
        Some(m) => format!(
            "{{\"model\":{},\"pairs\":{}}}",
            serde_json::to_string(m).unwrap(),
            serde_json::to_string(&quads).unwrap()
        ),
        None => format!("{{\"pairs\":{}}}", serde_json::to_string(&quads).unwrap()),
    }
}

#[test]
fn readyz_lists_domains_and_metrics_report_registry_stats() {
    let _g = serial();
    let (handle, _state) = start_registry_server();
    let addr = handle.addr();

    let ready = request(addr, "GET", "/readyz", "");
    assert_eq!(status_of(&ready), 200);
    let body = body_of(&ready);
    assert!(body.contains("\"headphones\""), "{body}");
    assert!(body.contains("\"tvs\""), "{body}");

    let metrics = request(addr, "GET", "/metrics", "");
    assert_eq!(status_of(&metrics), 200);
    let body = body_of(&metrics);
    assert!(body.contains("\"registry\""), "{body}");
    assert!(body.contains("\"resident_bytes\""), "{body}");
    assert!(body.contains("\"evictions\""), "{body}");

    handle.shutdown();
}

#[test]
fn score_routes_by_body_field_and_header() {
    let _g = serial();
    let (handle, _state) = start_registry_server();
    let addr = handle.addr();
    let tvs = generate(Domain::Tvs, 4);

    // Selector in the body.
    let resp = request(addr, "POST", "/score", &score_body(&tvs, 4, Some("tvs")));
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(body_of(&resp).contains("\"scores\""));

    // Selector in the header.
    let resp = request_with_headers(
        addr,
        "POST",
        "/score",
        "x-leapme-model: tvs\r\n",
        &score_body(&tvs, 4, None),
    );
    assert_eq!(status_of(&resp), 200, "{resp}");

    // The body field wins over the header: tvs pairs are unknown in the
    // headphones domain, so routing by the header here would 400 with
    // unknown-property — the body selector keeps it 200.
    let resp = request_with_headers(
        addr,
        "POST",
        "/score",
        "x-leapme-model: headphones\r\n",
        &score_body(&tvs, 4, Some("tvs")),
    );
    assert_eq!(status_of(&resp), 200, "{resp}");

    handle.shutdown();
}

#[test]
fn typed_errors_bad_model_and_unknown_model() {
    let _g = serial();
    let (handle, _state) = start_registry_server();
    let addr = handle.addr();
    let tvs = generate(Domain::Tvs, 4);

    // No selector at all.
    let resp = request(addr, "POST", "/score", &score_body(&tvs, 2, None));
    assert_eq!(status_of(&resp), 400, "{resp}");
    assert!(body_of(&resp).contains("bad-model"), "{resp}");

    // Malformed selector (shape violation, not an absent name).
    let resp = request(addr, "POST", "/score", &score_body(&tvs, 2, Some("no spaces!")));
    assert_eq!(status_of(&resp), 400, "{resp}");
    assert!(body_of(&resp).contains("bad-model"), "{resp}");

    // Well-formed but absent.
    let resp = request(addr, "POST", "/score", &score_body(&tvs, 2, Some("fridges")));
    assert_eq!(status_of(&resp), 404, "{resp}");
    assert!(body_of(&resp).contains("unknown-model"), "{resp}");

    // match has the same contract via the header.
    let resp = request_with_headers(addr, "POST", "/match", "x-leapme-model: fridges\r\n", "");
    assert_eq!(status_of(&resp), 404, "{resp}");
    assert!(body_of(&resp).contains("unknown-model"), "{resp}");

    handle.shutdown();
}

#[test]
fn match_scores_one_domain_and_integrate_is_refused() {
    let _g = serial();
    let (handle, _state) = start_registry_server();
    let addr = handle.addr();

    let resp = request_with_headers(addr, "POST", "/match", "x-leapme-model: tvs\r\n", "");
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(body_of(&resp).contains("\"edges\"") || body_of(&resp).contains("\"pairs\""));

    // integrate-source mutates single-model resident state; in
    // registry mode it is a typed client error, not a 500.
    let resp = request(
        addr,
        "POST",
        "/integrate-source",
        "source,property,entity,value\nx,width,e0,10 cm\n",
    );
    assert_eq!(status_of(&resp), 400, "{resp}");
    assert!(body_of(&resp).contains("registry-mode"), "{resp}");

    handle.shutdown();
}

#[test]
fn reload_hot_swaps_one_domain() {
    let _g = serial();
    let (handle, state) = start_registry_server();
    let addr = handle.addr();
    let tvs = generate(Domain::Tvs, 4);

    // Fault the domain in, pin its generation.
    let resp = request(addr, "POST", "/score", &score_body(&tvs, 2, Some("tvs")));
    assert_eq!(status_of(&resp), 200, "{resp}");
    let gen_before = state.registry().unwrap().get("tvs").unwrap().generation;

    // Reload via body selector: generation bumps, artifacts re-open.
    let resp = request(addr, "POST", "/reload", "{\"model\":\"tvs\"}");
    assert_eq!(status_of(&resp), 200, "{resp}");
    let body = body_of(&resp);
    assert!(body.contains("\"generation\""), "{body}");
    assert!(body.contains("\"open_path\""), "{body}");
    let gen_after = state.registry().unwrap().get("tvs").unwrap().generation;
    assert_eq!(gen_after, gen_before + 1);

    // Scoring still works against the swapped-in generation.
    let resp = request(addr, "POST", "/score", &score_body(&tvs, 2, Some("tvs")));
    assert_eq!(status_of(&resp), 200, "{resp}");

    // Reload of an unknown domain is the typed 404.
    let resp = request(addr, "POST", "/reload", "{\"model\":\"fridges\"}");
    assert_eq!(status_of(&resp), 404, "{resp}");
    assert!(body_of(&resp).contains("unknown-model"), "{resp}");

    // Reload without a selector is the typed 400.
    let resp = request(addr, "POST", "/reload", "");
    assert_eq!(status_of(&resp), 400, "{resp}");
    assert!(body_of(&resp).contains("bad-model"), "{resp}");

    handle.shutdown();
}

#[test]
fn single_mode_rejects_selectors_and_reload() {
    let _g = serial();
    // A plain single-model server: selectors are contract violations.
    let dataset = generate(Domain::Tvs, 4);
    let embeddings = EmbeddingStore::new(8);
    let store = PropertyFeatureStore::build(&dataset, &embeddings);
    let sources: Vec<SourceId> = (0..dataset.sources().len() as u16).map(SourceId).collect();
    let mut rng = StdRng::seed_from_u64(17);
    let train = training_pairs(&dataset, &sources, 2, &mut rng);
    let cfg = LeapmeConfig {
        train: TrainConfig {
            schedule: LrSchedule::new(vec![(2, 1e-3)]),
            ..TrainConfig::default()
        },
        hidden: vec![4],
        ..LeapmeConfig::default()
    };
    let model = Leapme::fit(&store, &train, &cfg).unwrap();
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 8,
        io_timeout: Duration::from_millis(400),
        request_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let state = Arc::new(ServeState::new(
        model,
        embeddings,
        dataset.clone(),
        store,
        None,
        config,
    ));
    let handle = serve::start(Arc::clone(&state), None).unwrap();
    let addr = handle.addr();

    let resp = request(addr, "POST", "/score", &score_body(&dataset, 2, Some("tvs")));
    assert_eq!(status_of(&resp), 400, "{resp}");
    assert!(body_of(&resp).contains("bad-model"), "{resp}");

    let resp = request_with_headers(addr, "POST", "/match", "x-leapme-model: tvs\r\n", "");
    assert_eq!(status_of(&resp), 400, "{resp}");
    assert!(body_of(&resp).contains("bad-model"), "{resp}");

    let resp = request(addr, "POST", "/reload", "{\"model\":\"tvs\"}");
    assert_eq!(status_of(&resp), 400, "{resp}");
    assert!(body_of(&resp).contains("registry-mode"), "{resp}");

    handle.shutdown();
}
