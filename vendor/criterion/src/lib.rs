//! Minimal in-tree stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — with a simple mean-of-samples timer instead of criterion's
//! statistical machinery. Results print as `group/name  time: <mean>`.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted for compatibility;
/// the stub times the routine per batch element either way).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Benchmark driver configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark and print its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            budget: self.criterion.measurement_time,
            warm_up: self.criterion.warm_up_time,
            samples: self.criterion.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean_ns = if bencher.iters > 0 {
            bencher.total.as_nanos() as f64 / bencher.iters as f64
        } else {
            f64::NAN
        };
        println!(
            "{}/{:<32} time: {}",
            self.name,
            id,
            format_ns(mean_ns)
        );
        self
    }

    /// End the group (no-op; matches criterion's API).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    budget: Duration,
    warm_up: Duration,
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` repeatedly within the warm-up + measurement budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up (also sizes the per-sample iteration count).
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let budget_iters =
            (self.budget.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64;
        let iters_per_sample = (budget_iters / self.samples as u64).clamp(1, 1 << 24);

        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.total += start.elapsed();
            self.iters += iters_per_sample;
            if self.total >= self.budget {
                break;
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.warm_up + self.budget;
        let min_iters = self.samples as u64;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline && self.iters >= min_iters {
                break;
            }
            if self.iters >= 1 << 20 {
                break;
            }
        }
    }
}

/// Define a benchmark group runner, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (e.g. `--bench`); nothing to parse
            // for this stub.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_iter_and_iter_batched() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("smoke");
        g.bench_function("iter", |b| b.iter(|| black_box(21u64) * 2));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn formats_time_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }
}
