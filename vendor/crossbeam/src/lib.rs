//! Minimal in-tree stand-in for `crossbeam`, backed by `std::thread::scope`
//! (stable since Rust 1.63). Only the `thread::scope` API surface this
//! workspace uses is provided.

#![forbid(unsafe_code)]

pub mod thread {
    use std::any::Any;

    /// Handle to a scoped thread, mirroring crossbeam's
    /// `ScopedJoinHandle::join` signature.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Scope passed to the `scope` closure; crossbeam's spawn closures take
    /// the scope as an argument, hence the reconstructed wrapper below.
    #[derive(Clone, Copy)]
    pub struct Scope<'env, 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'env, 'scope> Scope<'env, 'scope> {
        /// Spawn a scoped thread. The closure receives the scope back,
        /// matching crossbeam's `|_| ...` spawn signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'env, 'scope>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a thread scope; all spawned threads are joined before
    /// this returns. Always `Ok` — std scopes propagate child panics by
    /// resuming them in the parent, so the crossbeam-style error arm is
    /// unreachable here.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'env, 'scope>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_borrows() {
        let data = [1u32, 2, 3, 4];
        let total: u32 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_from_scope_argument() {
        let n = crate::thread::scope(|scope| {
            let h = scope.spawn(|inner| {
                let h2 = inner.spawn(|_| 21);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
