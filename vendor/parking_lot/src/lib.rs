//! Minimal in-tree stand-in for `parking_lot`: non-poisoning `Mutex` and
//! `RwLock` with the parking_lot calling convention (`lock()` returns the
//! guard directly, no `Result`). Backed by std locks; poisoning is
//! neutralized by unwrapping into the inner guard, which matches
//! parking_lot semantics for the no-panic-while-locked usage here.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Non-poisoning mutex with parking_lot's API shape.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, returning the guard directly.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Non-poisoning reader-writer lock with parking_lot's API shape.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
