//! Minimal in-tree stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with
//! `arg in strategy` bindings, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`, numeric range strategies, regex-like string
//! strategies (literals, `.`, `[...]` classes, `(...)` groups, and
//! `{n}`/`{min,max}`/`*`/`+`/`?` repetition), and
//! `collection::{vec, hash_set}`.
//!
//! Cases are generated deterministically from the test name and case
//! index (no shrinking); the case count defaults to 96 and can be
//! overridden with `PROPTEST_CASES`.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Failure raised by `prop_assert*` macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Construct a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Deterministic per-test RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start as f64
                    + (self.end as f64 - self.start as f64) * rng.unit_f64();
                if v >= self.end as f64 { self.start } else { v as $t }
            }
        }
    )*};
}

impl_strategy_float_range!(f32, f64);

impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let nodes = regex_lite::parse(self);
        let mut out = String::new();
        for node in &nodes {
            node.emit(rng, &mut out);
        }
        out
    }
}

/// Regex-lite pattern parsing and generation for string strategies.
mod regex_lite {
    use super::TestRng;

    pub(crate) enum Node {
        Lit(char),
        Dot,
        Class(Vec<(char, char)>),
        Group(Vec<Node>),
        Repeat(Box<Node>, u32, u32),
    }

    impl Node {
        pub(crate) fn emit(&self, rng: &mut TestRng, out: &mut String) {
            match self {
                Node::Lit(c) => out.push(*c),
                Node::Dot => out.push(sample_any_char(rng)),
                Node::Class(ranges) => {
                    let total: u32 = ranges
                        .iter()
                        .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                        .sum();
                    let mut pick = rng.below(total as u64) as u32;
                    for (lo, hi) in ranges {
                        let size = *hi as u32 - *lo as u32 + 1;
                        if pick < size {
                            out.push(char::from_u32(*lo as u32 + pick).unwrap());
                            return;
                        }
                        pick -= size;
                    }
                    unreachable!("class sampling out of bounds");
                }
                Node::Group(nodes) => {
                    for n in nodes {
                        n.emit(rng, out);
                    }
                }
                Node::Repeat(inner, min, max) => {
                    let n = *min + rng.below((*max - *min + 1) as u64) as u32;
                    for _ in 0..n {
                        inner.emit(rng, out);
                    }
                }
            }
        }
    }

    /// `.` samples printable ASCII most of the time with an occasional
    /// multi-byte character, exercising unicode paths without making
    /// every case non-ASCII.
    fn sample_any_char(rng: &mut TestRng) -> char {
        const EXOTIC: &[char] = &['é', 'ß', 'λ', 'Ω', '漢', '字', '→', '😀', 'ñ', 'ü'];
        if rng.below(8) == 0 {
            EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
        } else {
            char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap() // ' '..='~'
        }
    }

    pub(crate) fn parse(pattern: &str) -> Vec<Node> {
        let mut chars = pattern.chars().peekable();
        let nodes = parse_seq(&mut chars, None);
        assert!(
            chars.next().is_none(),
            "unbalanced pattern: {pattern:?}"
        );
        nodes
    }

    fn parse_seq(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        terminator: Option<char>,
    ) -> Vec<Node> {
        let mut nodes = Vec::new();
        loop {
            match chars.peek().copied() {
                None => {
                    assert!(terminator.is_none(), "unterminated group in pattern");
                    return nodes;
                }
                Some(c) if Some(c) == terminator => {
                    chars.next();
                    return nodes;
                }
                Some('(') => {
                    chars.next();
                    let inner = parse_seq(chars, Some(')'));
                    push_with_repeat(chars, &mut nodes, Node::Group(inner));
                }
                Some('[') => {
                    chars.next();
                    let class = parse_class(chars);
                    push_with_repeat(chars, &mut nodes, Node::Class(class));
                }
                Some('.') => {
                    chars.next();
                    push_with_repeat(chars, &mut nodes, Node::Dot);
                }
                Some('\\') => {
                    chars.next();
                    let escaped = chars.next().expect("dangling escape in pattern");
                    push_with_repeat(chars, &mut nodes, Node::Lit(escaped));
                }
                Some(c) => {
                    chars.next();
                    push_with_repeat(chars, &mut nodes, Node::Lit(c));
                }
            }
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = chars.next().expect("unterminated character class");
            match c {
                ']' => {
                    if let Some(p) = pending {
                        ranges.push((p, p));
                    }
                    assert!(!ranges.is_empty(), "empty character class");
                    return ranges;
                }
                '-' if pending.is_some() && chars.peek() != Some(&']') => {
                    let lo = pending.take().unwrap();
                    let hi = chars.next().unwrap();
                    assert!(lo <= hi, "inverted class range {lo}-{hi}");
                    ranges.push((lo, hi));
                }
                '\\' => {
                    if let Some(p) = pending.replace(chars.next().unwrap()) {
                        ranges.push((p, p));
                    }
                }
                c => {
                    if let Some(p) = pending.replace(c) {
                        ranges.push((p, p));
                    }
                }
            }
        }
    }

    fn push_with_repeat(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        nodes: &mut Vec<Node>,
        node: Node,
    ) {
        let node = match chars.peek().copied() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                let (min, max) = match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repeat min"),
                        hi.trim().parse().expect("bad repeat max"),
                    ),
                    None => {
                        let n: u32 = spec.trim().parse().expect("bad repeat count");
                        (n, n)
                    }
                };
                assert!(min <= max, "inverted repeat {{{min},{max}}}");
                Node::Repeat(Box::new(node), min, max)
            }
            Some('*') => {
                chars.next();
                Node::Repeat(Box::new(node), 0, 8)
            }
            Some('+') => {
                chars.next();
                Node::Repeat(Box::new(node), 1, 8)
            }
            Some('?') => {
                chars.next();
                Node::Repeat(Box::new(node), 0, 1)
            }
            _ => node,
        };
        nodes.push(node);
    }
}

/// Size argument for collection strategies: an exact size or a range.
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

/// Collection strategies (`vec`, `hash_set`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec<S::Value>` with sizes drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of elements from `element`, length within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with sizes drawn from `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `HashSet` of elements from `element`, cardinality within `size`
    /// (retries duplicates to honor the minimum).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let target = self.size.min + rng.below(span.max(1)) as usize;
            let mut out = HashSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 64 + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            assert!(
                out.len() >= self.size.min,
                "hash_set strategy could not reach minimum size {} (value space too small?)",
                self.size.min
            );
            out
        }
    }
}

/// Per-block runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(96),
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Test-runner entry used by the `proptest!` macro expansion.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    for i in 0..config.cases {
        let mut rng = TestRng::new(base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(e) = case(&mut rng) {
            panic!("property `{name}` failed at case {i}: {e}");
        }
    }
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
/// An optional leading `#![proptest_config(expr)]` sets the case count
/// for every test in the block.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        $vis fn $name() {
            $crate::run_cases(&$config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&$strat, __rng);)+
                let __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( ($config:expr) ) => {};
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(__l == __r, "assertion failed: {:?} == {:?}", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(__l == __r, $($fmt)*);
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(__l != __r, "assertion failed: {:?} != {:?}", __l, __r);
    }};
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn string_strategy_respects_pattern() {
        let mut rng = crate::TestRng::new(42);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-d]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn grouped_pattern_generates() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..100 {
            let s = crate::Strategy::generate(&"[a-z]{1,8}( [a-z]{1,8}){0,3}", &mut rng);
            for word in s.split(' ') {
                assert!(!word.is_empty(), "{s:?}");
                assert!(word.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            }
        }
    }

    #[test]
    fn class_with_trailing_dash_and_specials() {
        let mut rng = crate::TestRng::new(9);
        for _ in 0..100 {
            let s = crate::Strategy::generate(&"[a-zA-Z0-9 _-]{0,40}", &mut rng);
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '_' || c == '-'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn collection_sizes_respected() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..50 {
            let v = crate::Strategy::generate(
                &crate::collection::vec(-1.0f32..1.0, 6usize),
                &mut rng,
            );
            assert_eq!(v.len(), 6);
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
            let hs = crate::Strategy::generate(
                &crate::collection::hash_set("[a-f]{1,3}", 2..10),
                &mut rng,
            );
            assert!((2..10).contains(&hs.len()), "{}", hs.len());
        }
    }

    proptest! {
        #[test]
        fn macro_binds_multiple_args(a in 0u64..100, b in "[x-z]{2}", v in crate::collection::vec(1usize..4, 0..5)) {
            prop_assert!(a < 100);
            prop_assert_eq!(b.chars().count(), 2);
            prop_assert!(v.len() < 5);
            prop_assert_ne!(b.len(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_case_info() {
        crate::run_cases(&ProptestConfig::default(), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
