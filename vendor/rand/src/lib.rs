//! Minimal in-tree stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the exact API surface it uses: `StdRng` (seedable
//! from a `u64`), the `Rng` extension methods `gen`, `gen_range`, and
//! `gen_bool`, and `SliceRandom::{shuffle, choose}`.
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — a fast,
//! high-quality generator. It is **not** stream-compatible with the real
//! `rand::rngs::StdRng` (ChaCha12); everything in this workspace only
//! relies on determinism given a seed, not on a specific stream.

#![forbid(unsafe_code)]

/// Core random number generation: a source of `u64`/`u32` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding support (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Construct a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the `Standard` distribution in real rand).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Types with a uniform sampler over a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_uniform<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// The successor value, used to turn inclusive ranges into exclusive
    /// ones. Saturates at the type's maximum.
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: low >= high");
                let span = (high as i128 - low as i128) as u128;
                // Modulo reduction; the bias is ≪ 2⁻⁶⁴ for the spans used here.
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (low as i128 + draw) as $t
            }
            fn successor(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: low >= high");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = low as f64 + (high as f64 - low as f64) * unit;
                if v >= high as f64 { high } else { v as $t }
            }
            fn successor(self) -> Self {
                self // inclusive float ranges are not used in this workspace
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        if lo == hi {
            return lo;
        }
        T::sample_uniform(lo, hi.successor(), rng)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random helpers on slices (subset of rand's `SliceRandom`).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_uniform(0, i + 1, rng);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[usize::sample_uniform(0, self.len(), rng)])
        }
    }
}

/// Named generators (subset: `StdRng`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state; the
            // all-zero state is unreachable this way.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for checkpoint persistence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from state words previously returned by
        /// [`Self::state`]. The all-zero state is a fixed point of
        /// xoshiro256++ (the generator would emit zeros forever), so it
        /// is replaced by the seed-0 expansion.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                <StdRng as SeedableRng>::seed_from_u64(0)
            } else {
                StdRng { s }
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers namespace, mirroring `rand::seq`.
pub mod seq {
    pub use super::SliceRandom;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The all-zero fixed point is rejected, not propagated: a
        // generator rebuilt from zeros still produces nonzero output.
        let mut z = StdRng::from_state([0; 4]);
        assert!((0..4).any(|_| z.next_u64() != 0));
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let f: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(2..=4u8);
            assert!((2..=4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left input unchanged");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
