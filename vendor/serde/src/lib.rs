//! Minimal in-tree stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the serde API surface it actually uses. The design differs
//! from real serde internally — serialization goes through an owned
//! [`Value`] tree instead of a streaming visitor — but the trait *names*
//! and call-site shapes match:
//!
//! * `#[derive(Serialize, Deserialize)]` (via the sibling `serde_derive`
//!   proc-macro crate, re-exported behind the `derive` feature);
//! * `#[serde(skip)]`, `#[serde(default)]`, `#[serde(default = "path")]`,
//!   and `#[serde(with = "module")]` field attributes;
//! * hand-written `with`-modules of the form
//!   `fn serialize<S: Serializer>(&T, S) -> Result<S::Ok, S::Error>` /
//!   `fn deserialize<'de, D: Deserializer<'de>>(D) -> Result<T, D::Error>`.
//!
//! `serde_json` (also vendored) renders [`Value`] trees to JSON text and
//! parses them back.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An owned, JSON-shaped data tree.
///
/// Map keys are full `Value`s so that maps with non-string keys (tuples,
/// integers) can be represented; JSON rendering encodes such keys as
/// compact-JSON strings.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value does not fit `i64` or the
    /// source type is unsigned).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with arbitrary (usually string) keys, in insertion order.
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// Look up a string key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| matches!(k, Value::Str(s) if s == key))
                .map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization-side error support, mirroring `serde::ser`.
pub mod ser {
    /// Trait every serializer error type implements.
    pub trait Error: Sized + std::fmt::Display {
        /// Build an error from a display-able message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization-side error support, mirroring `serde::de`.
pub mod de {
    /// Trait every deserializer error type implements.
    pub trait Error: Sized + std::fmt::Display {
        /// Build an error from a display-able message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// The concrete error produced by [`crate::Deserialize::from_value`].
    #[derive(Debug, Clone, PartialEq)]
    pub struct DeError(String);

    impl DeError {
        /// Construct from a message.
        pub fn new(msg: impl Into<String>) -> Self {
            DeError(msg.into())
        }
    }

    impl std::fmt::Display for DeError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for DeError {}

    impl Error for DeError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            DeError(msg.to_string())
        }
    }

    impl super::ser::Error for DeError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            DeError(msg.to_string())
        }
    }
}

/// A type that can be rendered into a [`Value`] tree.
pub trait Serialize {
    /// Convert into the value tree.
    fn to_value(&self) -> Value;

    /// Serde-compatible entry point: feed the value tree to a serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// A sink for value trees (serde's `Serializer`, collapsed to one method).
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Consume a finished value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A type that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(value: &Value) -> Result<Self, de::DeError>;

    /// Serde-compatible entry point: pull a value tree out of a
    /// deserializer and rebuild from it.
    fn deserialize<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        Self::from_value(&value).map_err(<D::Error as de::Error>::custom)
    }
}

/// A source of value trees (serde's `Deserializer`, collapsed).
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Produce the complete value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// In-memory (de)serializers used by derive-generated code for
/// `#[serde(with = "...")]` fields.
pub mod value {
    use super::{de::DeError, Value};

    /// Serializer whose output *is* the value tree. Never fails.
    pub struct ValueSerializer;

    impl super::Serializer for ValueSerializer {
        type Ok = Value;
        type Error = DeError;

        fn serialize_value(self, value: Value) -> Result<Value, DeError> {
            Ok(value)
        }
    }

    /// Deserializer reading from an owned value tree.
    pub struct ValueDeserializer(Value);

    impl ValueDeserializer {
        /// Wrap an owned value.
        pub fn new(value: Value) -> Self {
            ValueDeserializer(value)
        }
    }

    impl<'de> super::Deserializer<'de> for ValueDeserializer {
        type Error = DeError;

        fn take_value(self) -> Result<Value, DeError> {
            Ok(self.0)
        }
    }
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize implementations for std types.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(de::DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::DeError> {
                let n: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| de::DeError::new("unsigned value out of signed range"))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(de::DeError::new(format!(
                        "expected integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(|_| de::DeError::new(concat!(
                    "integer out of range for ", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::DeError> {
                let n: u64 = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| de::DeError::new("negative value for unsigned type"))?,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(de::DeError::new(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(|_| de::DeError::new(concat!(
                    "integer out of range for ", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::DeError> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN), // non-finite floats render as null
                    other => Err(de::DeError::new(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de::DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(de::DeError::new(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::DeError::new(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        let v: Vec<T> = Vec::from_value(value)?;
        let n = v.len();
        v.try_into()
            .map_err(|_| de::DeError::new(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, de::DeError> {
                const ARITY: usize = [$(stringify!($idx)),+].len();
                match value {
                    Value::Seq(items) if items.len() == ARITY => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(de::DeError::new(format!(
                        "expected {ARITY}-tuple sequence, got {other:?}"
                    ))),
                }
            }
        }
    )+};
}

impl_serde_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
);

/// Parse a map key that was JSON-encoded as a string back into a value
/// tree. JSON objects only allow string keys, so maps with tuple or
/// numeric keys store the key as compact JSON inside the string; this is
/// the inverse used by the map `Deserialize` impls below.
fn parse_key_fallback(s: &str) -> Option<Value> {
    fn parse(input: &mut std::iter::Peekable<std::str::Chars>) -> Option<Value> {
        while matches!(input.peek(), Some(c) if c.is_whitespace()) {
            input.next();
        }
        match input.peek()? {
            '[' => {
                input.next();
                let mut items = Vec::new();
                loop {
                    while matches!(input.peek(), Some(c) if c.is_whitespace()) {
                        input.next();
                    }
                    if input.peek() == Some(&']') {
                        input.next();
                        return Some(Value::Seq(items));
                    }
                    items.push(parse(input)?);
                    while matches!(input.peek(), Some(c) if c.is_whitespace()) {
                        input.next();
                    }
                    match input.next()? {
                        ',' => continue,
                        ']' => return Some(Value::Seq(items)),
                        _ => return None,
                    }
                }
            }
            '"' => {
                input.next();
                let mut out = String::new();
                loop {
                    match input.next()? {
                        '"' => return Some(Value::Str(out)),
                        '\\' => out.push(input.next()?),
                        c => out.push(c),
                    }
                }
            }
            't' | 'f' => {
                let mut word = String::new();
                while matches!(input.peek(), Some(c) if c.is_ascii_alphabetic()) {
                    word.push(input.next().unwrap());
                }
                match word.as_str() {
                    "true" => Some(Value::Bool(true)),
                    "false" => Some(Value::Bool(false)),
                    _ => None,
                }
            }
            _ => {
                let mut num = String::new();
                while matches!(
                    input.peek(),
                    Some(c) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')
                ) {
                    num.push(input.next().unwrap());
                }
                if num.is_empty() {
                    return None;
                }
                if !num.contains(['.', 'e', 'E']) {
                    if let Ok(i) = num.parse::<i64>() {
                        return Some(if i >= 0 {
                            Value::UInt(i as u64)
                        } else {
                            Value::Int(i)
                        });
                    }
                    if let Ok(u) = num.parse::<u64>() {
                        return Some(Value::UInt(u));
                    }
                }
                num.parse::<f64>().ok().map(Value::Float)
            }
        }
    }
    let mut chars = s.chars().peekable();
    let v = parse(&mut chars)?;
    while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
        chars.next();
    }
    chars.peek().is_none().then_some(v)
}

fn map_key_from_value<K: Deserialize>(key: &Value) -> Result<K, de::DeError> {
    match K::from_value(key) {
        Ok(k) => Ok(k),
        Err(e) => {
            if let Value::Str(s) = key {
                if let Some(reparsed) = parse_key_fallback(s) {
                    return K::from_value(&reparsed);
                }
            }
            Err(e)
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize, S> Deserialize for HashMap<K, V, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((map_key_from_value(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(de::DeError::new(format!("expected map, got {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((map_key_from_value(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(de::DeError::new(format!("expected map, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::DeError::new(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::hash::Hash + Eq, S> Deserialize for std::collections::HashSet<T, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::DeError::new(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, de::DeError> {
        T::from_value(value).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, 2.5f32), (3, 4.0)];
        assert_eq!(Vec::<(usize, f32)>::from_value(&v.to_value()).unwrap(), v);
        let m: BTreeMap<String, u32> = [("a".to_string(), 1u32)].into_iter().collect();
        assert_eq!(BTreeMap::from_value(&m.to_value()).unwrap(), m);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn tuple_keyed_map_key_fallback() {
        // Simulates what the JSON parser produces for a tuple-keyed map:
        // the key arrives as a compact-JSON string.
        let value = Value::Map(vec![(
            Value::Str("[1,2]".to_string()),
            Value::Float(0.5),
        )]);
        let m: HashMap<(u32, u32), f64> = HashMap::from_value(&value).unwrap();
        assert_eq!(m.get(&(1, 2)), Some(&0.5));
    }

    #[test]
    fn signed_range_checks() {
        assert!(u8::from_value(&Value::Int(-1)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert_eq!(i8::from_value(&Value::UInt(127)).unwrap(), 127);
    }
}
