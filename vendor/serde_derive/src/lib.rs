//! `#[derive(Serialize, Deserialize)]` for the in-tree serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote — the
//! build environment has no crates.io access). Supports the shapes this
//! workspace uses: structs with named fields, tuple structs, and enums
//! with unit / tuple / struct variants; field attributes
//! `#[serde(skip)]`, `#[serde(default)]`, `#[serde(default = "path")]`,
//! and `#[serde(with = "module")]`.
//!
//! Generated code targets the `Value`-tree model of the vendored `serde`
//! crate: `Serialize::to_value` and `Deserialize::from_value`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default, Clone)]
struct FieldAttrs {
    skip: bool,
    /// `None` = no default; `Some(None)` = `Default::default()`;
    /// `Some(Some(path))` = call `path()`.
    default: Option<Option<String>>,
    with: Option<String>,
}

struct NamedField {
    name: String,
    attrs: FieldAttrs,
}

enum Body {
    NamedStruct(Vec<NamedField>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<NamedField>),
}

/// Derive `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    let code = gen_serialize(&name, &body);
    code.parse().expect("serde_derive: generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    let code = gen_deserialize(&name, &body);
    code.parse().expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Body) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (doc comments, other derives are stripped by
    // rustc, but `#[serde(...)]` container attrs and docs remain).
    while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        i += 2; // '#' + [ ... ]
    }
    // Skip visibility.
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum keyword, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the in-tree derive");
    }

    let body = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::NamedStruct(Vec::new()),
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    };
    (name, body)
}

/// Collect any `#[...]` attribute groups starting at `*i`, advancing past
/// them, and fold recognised `#[serde(...)]` args into `FieldAttrs`.
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            parse_serde_attr(g.stream(), &mut attrs);
        }
        *i += 2;
    }
    attrs
}

fn parse_serde_attr(attr: TokenStream, out: &mut FieldAttrs) {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let args = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return,
    };
    let args: Vec<TokenTree> = args.into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        let key = match &args[j] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                j += 1;
                continue;
            }
        };
        let has_eq = matches!(args.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=');
        let lit = if has_eq {
            match args.get(j + 2) {
                Some(TokenTree::Literal(l)) => Some(strip_quotes(&l.to_string())),
                _ => None,
            }
        } else {
            None
        };
        match (key.as_str(), lit) {
            ("skip", _) | ("skip_serializing", _) | ("skip_deserializing", _) => out.skip = true,
            ("default", Some(path)) => out.default = Some(Some(path)),
            ("default", None) => out.default = Some(None),
            ("with", Some(path)) => out.with = Some(path),
            (other, _) => panic!("serde_derive: unsupported serde attribute `{other}`"),
        }
        j += if has_eq { 3 } else { 1 };
        if matches!(args.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            j += 1;
        }
    }
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_named_fields(stream: TokenStream) -> Vec<NamedField> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = take_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        // Visibility.
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        i += 1;
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(NamedField { name, attrs });
    }
    fields
}

/// Count comma-separated items at angle-depth 0 (tuple-struct arity).
fn count_top_level_items(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut items = 1;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = true;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if idx + 1 == tokens.len() {
                    saw_tokens_since_comma = false; // trailing comma
                } else {
                    items += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_tokens_since_comma;
    items
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let _attrs = take_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_items(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip to (and past) the separating comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn field_to_value_expr(field: &NamedField, access: &str) -> String {
    match &field.attrs.with {
        Some(path) => format!(
            "{path}::serialize({access}, ::serde::value::ValueSerializer)\
             .expect(\"with-module serialization\")"
        ),
        None => format!("::serde::Serialize::to_value({access})"),
    }
}

fn gen_serialize(name: &str, body: &Body) -> String {
    let inner = match body {
        Body::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut __map: ::std::vec::Vec<(::serde::Value, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.attrs.skip) {
                let value = field_to_value_expr(f, &format!("&self.{}", f.name));
                s.push_str(&format!(
                    "__map.push((::serde::Value::Str(\"{n}\".to_string()), {value}));\n",
                    n = f.name
                ));
            }
            s.push_str("::serde::Value::Map(__map)");
            s
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(\
                         ::serde::Value::Str(\"{vn}\".to_string()), \
                         ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Map(vec![(\
                             ::serde::Value::Str(\"{vn}\".to_string()), \
                             ::serde::Value::Seq(vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut entries = String::new();
                        for f in fields.iter().filter(|f| !f.attrs.skip) {
                            let value = field_to_value_expr(f, &f.name);
                            entries.push_str(&format!(
                                "(::serde::Value::Str(\"{n}\".to_string()), {value}), ",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\
                             ::serde::Value::Str(\"{vn}\".to_string()), \
                             ::serde::Value::Map(vec![{entries}]))]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{inner}\n}}\n\
         }}\n"
    )
}

fn named_field_de_expr(type_name: &str, f: &NamedField, source: &str) -> String {
    if f.attrs.skip {
        return "::std::default::Default::default()".to_string();
    }
    let found = match &f.attrs.with {
        Some(path) => format!(
            "{path}::deserialize(::serde::value::ValueDeserializer::new(__fv.clone()))?"
        ),
        None => "::serde::Deserialize::from_value(__fv)?".to_string(),
    };
    let missing = match &f.attrs.default {
        Some(Some(path)) => format!("{path}()"),
        Some(None) => "::std::default::Default::default()".to_string(),
        None => format!(
            "return Err(::serde::de::DeError::new(\
             \"missing field `{n}` for {type_name}\"))",
            n = f.name
        ),
    };
    format!(
        "match {source}.get(\"{n}\") {{ Some(__fv) => {found}, None => {missing} }}",
        n = f.name
    )
}

fn gen_deserialize(name: &str, body: &Body) -> String {
    let inner = match body {
        Body::NamedStruct(fields) => {
            let mut init = String::new();
            for f in fields {
                init.push_str(&format!(
                    "{n}: {expr},\n",
                    n = f.name,
                    expr = named_field_de_expr(name, f, "__value")
                ));
            }
            format!(
                "match __value {{ ::serde::Value::Map(_) => (), __other => \
                 return Err(::serde::de::DeError::new(format!(\
                 \"expected map for struct {name}, got {{:?}}\", __other))) }};\n\
                 Ok({name} {{\n{init}}})"
            )
        }
        Body::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __value {{\n\
                 ::serde::Value::Seq(__items) if __items.len() == {n} => \
                 Ok({name}({items})),\n\
                 __other => Err(::serde::de::DeError::new(format!(\
                 \"expected {n}-element sequence for {name}, got {{:?}}\", __other))),\n\
                 }}",
                items = items.join(", ")
            )
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(__payload)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => match __payload {{\n\
                             ::serde::Value::Seq(__items) if __items.len() == {n} => \
                             Ok({name}::{vn}({items})),\n\
                             __other => Err(::serde::de::DeError::new(format!(\
                             \"expected {n}-element sequence for {name}::{vn}, got {{:?}}\", \
                             __other))),\n}},\n",
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut init = String::new();
                        for f in fields {
                            init.push_str(&format!(
                                "{n}: {expr},\n",
                                n = f.name,
                                expr = named_field_de_expr(&format!("{name}::{vn}"), f, "__payload")
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn} {{\n{init}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "match __value {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::serde::de::DeError::new(format!(\
                 \"unknown unit variant `{{}}` for {name}\", __other))),\n\
                 }},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __payload) = &__entries[0];\n\
                 let __k = match __k {{ ::serde::Value::Str(__s) => __s.as_str(), _ => \
                 return Err(::serde::de::DeError::new(\"enum tag must be a string\")) }};\n\
                 match __k {{\n\
                 {data_arms}\
                 __other => Err(::serde::de::DeError::new(format!(\
                 \"unknown variant `{{}}` for {name}\", __other))),\n\
                 }}\n\
                 }},\n\
                 __other => Err(::serde::de::DeError::new(format!(\
                 \"expected string or single-entry map for enum {name}, got {{:?}}\", \
                 __other))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::de::DeError> {{\n{inner}\n}}\n\
         }}\n"
    )
}
